#!/usr/bin/env python3
"""Fail on dead intra-repo links in README.md and docs/*.md.

Checks every inline markdown link (``[text](target)``) and reference
definition (``[label]: target``) whose target is repo-relative:

* external schemes (http/https/mailto) are skipped;
* bare anchors (``#section``) are checked against the headings of the
  containing file; ``path#anchor`` against the headings of ``path``;
* everything else must exist on disk, resolved relative to the file
  containing the link.

Exit code 0 when clean, 1 with one line per dead link otherwise:

    python tools/check_docs_links.py
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Inline links, skipping images; reference-style definitions.
_INLINE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def _strip_code(text: str) -> str:
    """Remove fenced and inline code spans so example snippets and shell
    lines (e.g. ``awk '[...](...)'``) are not parsed as links."""
    text = re.sub(r"^```.*?^```", "", text, flags=re.MULTILINE | re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def _anchors(path: Path) -> set[str]:
    """GitHub-style heading anchors: lowercase, strip punctuation,
    spaces to dashes. Inline-code spans keep their text (only the
    backticks vanish from the slug), so only fenced blocks are removed."""
    text = re.sub(
        r"^```.*?^```", "", path.read_text(), flags=re.MULTILINE | re.DOTALL
    ).replace("`", "")
    out = set()
    for heading in _HEADING.findall(text):
        slug = re.sub(r"[^\w\- ]", "", heading.strip().lower())
        out.add(slug.replace(" ", "-"))
    return out


def _doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check() -> list[str]:
    errors = []
    for doc in _doc_files():
        text = _strip_code(doc.read_text())
        targets = _INLINE.findall(text) + _REFDEF.findall(text)
        for target in targets:
            if _SCHEME.match(target) or target.startswith("//"):
                continue
            rel = doc.relative_to(REPO)
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-file anchor
                dest = doc
            else:
                dest = (doc.parent / path_part).resolve()
                try:
                    dest.relative_to(REPO)
                except ValueError:
                    errors.append(f"{rel}: link escapes the repo: {target}")
                    continue
                if not dest.exists():
                    errors.append(f"{rel}: dead link: {target}")
                    continue
            if anchor and dest.suffix == ".md":
                if anchor.lower() not in _anchors(dest):
                    errors.append(f"{rel}: dead anchor: {target}")
    return errors


def main() -> int:
    errors = check()
    for line in errors:
        print(line, file=sys.stderr)
    ndocs = len(_doc_files())
    if errors:
        print(f"{len(errors)} dead link(s) across {ndocs} files", file=sys.stderr)
        return 1
    print(f"docs links ok ({ndocs} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
