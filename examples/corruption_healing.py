#!/usr/bin/env python3
"""Silent remote memory corruption: detect, correct, heal, regenerate.

Walks the §4.3 state machine live: a remote machine's memory is silently
corrupted; Hydra's background verification (using the Δ extra reads)
detects it, majority decoding locates and fixes the bad splits, the
per-machine error score crosses ErrorCorrectionLimit (reads become
inline-verified) and then SlabRegenerationLimit (the slab is rebuilt on a
fresh machine).

Run:  python examples/corruption_healing.py
"""

import numpy as np

from repro.cluster import CorruptionInjector
from repro.harness import build_hydra_cluster, run_process
from repro.sim import RandomSource


def main():
    hydra = build_hydra_cluster(
        machines=10, k=4, r=2, delta=1, seed=13,
    )
    rm = hydra.remote_memory(0)
    sim = hydra.sim
    rng = np.random.default_rng(5)
    pages = {
        pid: rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        for pid in range(24)
    }

    def driver():
        for pid, data in pages.items():
            yield rm.write(pid, data)
        victim = rm.space.get(0).handle(1).machine_id
        print(f"== silently corrupting every split on machine {victim} ==")
        CorruptionInjector(sim, RandomSource(9, "inject")).corrupt_machine(
            hydra.cluster.machine(victim), fraction=1.0
        )

        print("== first read pass (detection lags a background check) ==")
        wrong = 0
        for pid, data in pages.items():
            wrong += (yield rm.read(pid)) != data
        print(f"   wrong reads before the error machinery engaged: {wrong}")
        print(f"   corruption detected: {rm.events['corruption_detected']}, "
              f"corrected: {rm.events['corrected_reads']}, "
              f"splits healed in place: {rm.events['healed_splits']}")
        print(f"   error scores: "
              f"{ {m: round(s, 1) for m, s in rm.error_scores.items()} }")

        yield sim.timeout(10_000_000)  # let regeneration finish
        print(f"== slab regenerated ({rm.events['regenerations']}x) ==")

        wrong = 0
        for pid, data in pages.items():
            wrong += (yield rm.read(pid)) != data
        print(f"   wrong reads after healing + regeneration: {wrong}")
        assert wrong == 0
        return "ok"

    run_process(sim, sim.process(driver(), name="demo"), until=1e10)
    print("\nfull event log:", rm.events)


if __name__ == "__main__":
    main()
