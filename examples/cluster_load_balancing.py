#!/usr/bin/env python3
"""Why splitting + batch placement balances cluster memory (paper §5.3).

Two views of the same mechanism:

1. The balls-into-bins analysis behind Figure 9 — compare placement
   policies as the cluster grows.
2. A live mini-cluster: deploy Hydra on 16 machines, drive remote memory
   from four clients, and show how evenly the slabs land compared to a
   coarse single-copy placement.

Run:  python examples/cluster_load_balancing.py
"""

import numpy as np

from repro.analysis import (
    FOUR_CHOICES,
    HYDRA_K2_D4,
    RANDOM,
    TWO_CHOICES,
    imbalance_curve,
)
from repro.baselines import BaselineConfig, DirectRemoteMemory
from repro.cluster import Cluster
from repro.harness import build_hydra_cluster, run_process
from repro.sim import RandomSource


def analytical_view():
    print("== balls-into-bins: max/mean load by placement policy ==")
    sizes = (100, 400, 1600)
    curves = imbalance_curve(
        [RANDOM, TWO_CHOICES, FOUR_CHOICES, HYDRA_K2_D4],
        sizes,
        RandomSource(42),
        trials=3,
        balls_per_machine=8,
    )
    header = f"{'machines':>9} " + " ".join(f"{name:>9}" for name in curves)
    print(header)
    for i, n in enumerate(sizes):
        row = f"{n:>9} " + " ".join(f"{curves[name][i]:>9.3f}" for name in curves)
        print(row)
    print("   (lower is better; k=2,d=4 is Hydra's split + batch placement)\n")


def live_cluster_view():
    print("== live 16-machine cluster: where do the slabs land? ==")
    hydra = build_hydra_cluster(
        machines=16, k=4, r=2, seed=9, payload_mode="phantom",
        slab_size_bytes=64 * 4096 // 4,
    )
    sim = hydra.sim

    def client_driver(client):
        rm = hydra.remote_memory(client)
        for page in range(256):
            yield rm.write(page)

    def all_clients():
        procs = [
            sim.process(client_driver(c), name=f"client{c}") for c in range(4)
        ]
        yield sim.all_of(procs)

    run_process(sim, sim.process(all_clients()), until=1e9)
    hydra_slabs = np.array(
        [len(m.mapped_slabs()) for m in hydra.cluster.machines]
    )

    # The coarse comparison: one whole-slab copy per group, d=2 choices.
    cluster = Cluster(machines=16, memory_per_machine=1 << 30, seed=9)
    pools = [
        DirectRemoteMemory(
            cluster, c, BaselineConfig(slab_size_bytes=64 * 4096),
            payload_mode="phantom",
        )
        for c in range(4)
    ]

    def coarse_driver():
        for pool in pools:
            for page in range(256):
                yield pool.write(page)

    run_process(cluster.sim, cluster.sim.process(coarse_driver()), until=1e9)
    coarse_slabs = np.array([len(m.mapped_slabs()) for m in cluster.machines])

    print("   hydra slabs/machine: ", hydra_slabs.tolist())
    print("   coarse slabs/machine:", coarse_slabs.tolist())

    def spread(arr):
        busy = arr[arr > 0]
        return f"max={arr.max()}, machines used={np.count_nonzero(arr)}/16"

    print(f"   hydra : {spread(hydra_slabs)}")
    print(f"   coarse: {spread(coarse_slabs)}")


if __name__ == "__main__":
    analytical_view()
    live_cluster_view()
