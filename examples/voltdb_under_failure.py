#!/usr/bin/env python3
"""A VoltDB-like TPC-C workload riding out a remote failure (paper Figs 2a/15a).

Runs the transactional workload at the 50 % memory fit on three resilience
schemes — SSD backup (Infiniswap-style), 2x replication, and Hydra — kills
a remote machine mid-run, and prints ASCII throughput timelines. The SSD
scheme collapses to disk speed; replication and Hydra sail through, but
Hydra does it at 1.25x memory overhead instead of 2x.

Run:  python examples/voltdb_under_failure.py
"""

from repro.harness import ascii_timeline, run_uncertainty_scenario


def main():
    series = {}
    print("running the remote-failure scenario on three backends...\n")
    for backend in ("ssd_backup", "replication", "hydra"):
        result = run_uncertainty_scenario(
            backend,
            "failure",
            machines=12,
            duration_us=10_000_000,
            event_us=4_000_000,
            seed=3,
        )
        series[backend] = (result.times_us, result.throughput_ops)
        print(
            f"{backend:>12}: throughput drop after failure = "
            f"{result.throughput_drop() * 100:+.1f}%   "
            f"op p50 = {result.op_latency.p50:.0f} us, "
            f"p99 = {result.op_latency.p99:.0f} us"
        )

    print("\nthroughput timelines (failure strikes ~40% in):")
    print(ascii_timeline(series))


if __name__ == "__main__":
    main()
