#!/usr/bin/env python3
"""A tour of Hydra's page codec: split, encode, decode, detect, correct.

Shows the §5.1 guarantees concretely on a real 4 KB page with the paper's
default RS(8+2) code and a corruption-capable RS(8+3):

* any k of the k+r splits reconstruct the page;
* k+Δ splits *detect* Δ corruptions;
* k+2Δ+1 splits *locate and fix* Δ corruptions.

Run:  python examples/erasure_coding_tour.py
"""

import numpy as np

from repro.ec import CorruptionDetected, PageCodec


def main():
    rng = np.random.default_rng(2024)
    page = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()

    print("== RS(8+2): the paper's default, 1.25x memory overhead ==")
    codec = PageCodec(k=8, r=2)
    splits = codec.encode(page)
    print(f"   page -> {codec.n} splits of {codec.split_size} B "
          f"(overhead {codec.code.storage_overhead:.2f}x)")

    # Lose both parity-bearing machines and one data machine? Any 8 of 10 work.
    survivors = {i: splits[i] for i in (0, 1, 3, 4, 5, 6, 7, 9)}
    assert codec.decode(survivors) == page
    print("   decoded from 8 arbitrary surviving splits: OK")

    # Detection: 9 splits (k + delta) catch a corrupted split.
    tampered = {i: splits[i].copy() for i in range(9)}
    tampered[2][100] ^= 0x5A
    try:
        codec.decode_verified(tampered)
        raise SystemExit("corruption slipped through?!")
    except CorruptionDetected:
        print("   k+1 splits detected the tampered split: OK")

    print("\n== RS(8+3): enough parity to *correct* one corruption ==")
    codec3 = PageCodec(k=8, r=3)
    splits3 = codec3.encode(page)
    received = {i: splits3[i].copy() for i in range(11)}  # k + 2*1 + 1
    received[5][7] ^= 0xFF
    fixed, bad = codec3.correct(received, max_errors=1)
    assert fixed == page and bad == [5]
    print(f"   located corrupted split {bad} and reconstructed the page: OK")

    print("\n== storage overheads across (k, r) choices ==")
    for k, r in ((1, 1), (2, 1), (4, 2), (8, 2), (8, 3), (16, 4)):
        c = PageCodec(k=k, r=r)
        print(f"   RS({k:>2}+{r}): overhead {c.code.storage_overhead:.3f}x, "
              f"split {c.split_size:>4} B, tolerates {r} failures, "
              f"corrects {r // 2} corruption(s)")


if __name__ == "__main__":
    main()
