#!/usr/bin/env python3
"""Quickstart: erasure-coded remote memory surviving a machine failure.

Builds an 8-machine simulated RDMA cluster with Hydra deployed, writes a
working set through the Resilience Manager, kills a machine that holds
one of the slabs, and shows that every page still reads back correctly —
then watches background regeneration restore full redundancy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.harness import build_hydra_cluster, run_process
from repro.sim import RandomSource


def main():
    # An 8-machine cluster, RS(4+2) with one extra late-binding read.
    hydra = build_hydra_cluster(machines=8, k=4, r=2, delta=1, seed=42)
    rm = hydra.remote_memory(client=0)  # machine 0's Resilience Manager
    sim = hydra.sim

    n_pages = 64
    rng = np.random.default_rng(7)
    pages = {
        pid: rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        for pid in range(n_pages)
    }

    def driver():
        print("== writing", n_pages, "pages to remote memory ==")
        for pid, data in pages.items():
            yield rm.write(pid, data)
        print(f"   write p50 = {rm.write_latency.p50:.2f} us, "
              f"p99 = {rm.write_latency.p99:.2f} us")

        print("== reading them back ==")
        for pid, data in pages.items():
            got = yield rm.read(pid)
            assert got == data, f"page {pid} corrupted!"
        print(f"   read  p50 = {rm.read_latency.p50:.2f} us, "
              f"p99 = {rm.read_latency.p99:.2f} us")

        # Kill a machine that hosts one of our slabs.
        victim = rm.space.get(0).handle(0).machine_id
        print(f"== killing machine {victim} (hosts data slab 0) ==")
        hydra.cluster.machine(victim).fail()
        yield sim.timeout(200)  # let the disconnect notification land

        ok = 0
        for pid, data in pages.items():
            got = yield rm.read(pid)
            ok += got == data
        print(f"   {ok}/{n_pages} pages still read correctly (degraded mode)")

        # Give background regeneration time to rebuild the lost slab.
        yield sim.timeout(3_000_000)
        regens = rm.events["regenerations"]
        print(f"== background regeneration: {regens} slab(s) rebuilt ==")
        for pid, data in pages.items():
            got = yield rm.read(pid)
            assert got == data
        print("   full redundancy restored; all pages verified")
        return ok

    proc = sim.process(driver(), name="quickstart")
    run_process(sim, proc, until=60_000_000)
    print("\nevent counters:", rm.events)


if __name__ == "__main__":
    main()
