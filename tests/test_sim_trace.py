"""Tests for measurement primitives."""

import math

import pytest

from repro.sim import (
    Counter,
    LatencyRecorder,
    ThroughputWindow,
    TimeSeries,
    coefficient_of_variation,
    imbalance_ratio,
    summarize,
)


class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder("t")
        recorder.extend(range(1, 101))
        assert recorder.p50 == pytest.approx(50.5)
        assert recorder.p99 == pytest.approx(99.01)
        assert recorder.mean == pytest.approx(50.5)
        assert recorder.max == 100

    def test_negative_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1.0)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder("empty").percentile(50)

    def test_summary_roundtrip(self):
        recorder = LatencyRecorder("s")
        recorder.extend([1.0, 2.0, 3.0])
        summary = recorder.summary()
        assert summary.count == 3
        assert summary.p50 == 2.0
        assert "p99" in str(summary)


class TestSummarize:
    def test_fields(self):
        summary = summarize([10.0] * 10, name="flat")
        assert summary.mean == 10.0
        assert summary.p50 == summary.p99 == summary.max == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTimeSeries:
    def test_record_and_stats(self):
        series = TimeSeries("m")
        series.record(0.0, 10.0)
        series.record(1.0, 30.0)
        assert series.last() == 30.0
        assert series.mean() == 20.0
        assert len(series) == 2

    def test_time_must_not_go_backwards(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_empty_access_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()


class TestThroughputWindow:
    def test_series_buckets(self):
        window = ThroughputWindow(window_us=1_000_000.0)
        for t in (100.0, 200.0, 1_500_000.0):
            window.record(t)
        times, ops = window.series()
        assert list(times) == [0.0, 1_000_000.0]
        # 2 ops in the first second, 1 in the next -> ops/sec
        assert list(ops) == [2.0, 1.0]

    def test_total(self):
        window = ThroughputWindow(1000.0)
        window.record(0, count=5)
        window.record(5000, count=2)
        assert window.total() == 7

    def test_empty(self):
        times, ops = ThroughputWindow(1000.0).series()
        assert len(times) == 0 and len(ops) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ThroughputWindow(0)


class TestCounter:
    def test_incr_and_get(self):
        counter = Counter()
        counter.incr("reads")
        counter.incr("reads", 4)
        assert counter["reads"] == 5
        assert counter["missing"] == 0


class TestClusterMetrics:
    def test_imbalance_ratio(self):
        assert imbalance_ratio([2.0, 4.0, 8.0]) == 4.0

    def test_imbalance_with_zero_is_inf(self):
        assert imbalance_ratio([0.0, 5.0]) == math.inf

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
        assert coefficient_of_variation([0.0, 10.0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            imbalance_ratio([])
        with pytest.raises(ValueError):
            coefficient_of_variation([])
