"""Control-plane RPC and decentralized batch placement."""

import pytest

from repro.cluster import Cluster
from repro.core import (
    BatchPlacer,
    HydraConfig,
    PlacementError,
    RpcEndpoint,
    RpcError,
)
from repro.net import NetworkConfig
from repro.sim import RandomSource

from .conftest import drive


@pytest.fixture
def cluster():
    return Cluster(
        machines=8,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        memory_per_machine=64 << 20,
        seed=1,
    )


def endpoints(cluster, count=None):
    return [
        RpcEndpoint(cluster.fabric, m.id)
        for m in cluster.machines[: count or len(cluster.machines)]
    ]


class TestRpc:
    def test_request_reply(self, cluster):
        a, b = endpoints(cluster, 2)
        b.register("ping", lambda src, body: {"pong": body["x"] + 1, "from": src})

        def proc():
            reply = yield a.call(1, "ping", {"x": 41})
            return reply

        reply = drive(cluster.sim, proc())
        assert reply == {"pong": 42, "from": 0}

    def test_missing_handler_is_error(self, cluster):
        a, _b = endpoints(cluster, 2)

        def proc():
            with pytest.raises(RpcError):
                yield a.call(1, "nothing")
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_handler_exception_propagates(self, cluster):
        a, b = endpoints(cluster, 2)

        def explode(src, body):
            raise RuntimeError("kaboom")

        b.register("explode", explode)

        def proc():
            with pytest.raises(RpcError, match="kaboom"):
                yield a.call(1, "explode")
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_call_to_dead_machine_fails(self, cluster):
        a, _b = endpoints(cluster, 2)
        cluster.machine(1).fail()

        def proc():
            with pytest.raises(RpcError):
                yield a.call(1, "ping")
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_duplicate_handler_rejected(self, cluster):
        a = RpcEndpoint(cluster.fabric, 0)
        a.register("x", lambda s, b: None)
        with pytest.raises(ValueError):
            a.register("x", lambda s, b: None)


class TestBatchPlacement:
    def _placer(self, cluster, k=2, r=1, seed=3):
        config = HydraConfig(
            k=k, r=r, delta=min(1, r), slab_size_bytes=1 << 20, payload_mode="phantom"
        )
        eps = endpoints(cluster)
        # Every machine answers load queries and slab maps.
        for endpoint in eps[1:]:
            machine = cluster.machine(endpoint.machine_id)

            def query(src, body, machine=machine):
                return {
                    "utilization": machine.memory_utilization,
                    "free_bytes": machine.free_bytes,
                    "has_free_slab": False,
                    "rack": machine.rack,
                }

            def map_slab(src, body, machine=machine):
                slab = machine.allocate_slab(1 << 20)
                slab.map_to(src, body["range_id"], body["position"])
                return {"slab_id": slab.slab_id}

            endpoint.register("query_load", query)
            endpoint.register("map_slab", map_slab)
        peers = lambda: [m.id for m in cluster.machines if m.alive and m.id != 0]
        return (
            BatchPlacer(eps[0], peers, config, RandomSource(seed, "placer")),
            config,
        )

    def test_places_k_plus_r_distinct_machines(self, cluster):
        placer, config = self._placer(cluster)

        def proc():
            handles = yield from placer.place_range(0)
            return handles

        handles = drive(cluster.sim, proc())
        assert len(handles) == config.n
        machines = [h.machine_id for h in handles]
        assert len(set(machines)) == config.n
        assert 0 not in machines  # never places on itself

    def test_prefers_least_loaded(self, cluster):
        # Load up every machine except 3 lightly-loaded ones.
        light = {1, 2, 3}
        for machine in cluster.machines[1:]:
            if machine.id not in light:
                machine.set_local_app_bytes(48 << 20)
        placer, config = self._placer(cluster)

        def proc():
            handles = yield from placer.place_range(0)
            return handles

        handles = drive(cluster.sim, proc())
        chosen = {h.machine_id for h in handles}
        # With 2x(k+r)=6 contacts out of 7 peers, the three light machines
        # are almost surely contacted and must win.
        assert light <= chosen

    def test_place_single_excludes(self, cluster):
        placer, _config = self._placer(cluster)

        def proc():
            target = yield from placer.place_single(0, 1, exclude={1, 2, 3, 4, 5})
            return target

        assert drive(cluster.sim, proc()) in (6, 7)

    def test_too_few_machines_raises(self):
        small = Cluster(machines=2, seed=0)
        config = HydraConfig(k=4, r=2, slab_size_bytes=1 << 20, payload_mode="phantom")
        endpoint = RpcEndpoint(small.fabric, 0)
        placer = BatchPlacer(
            endpoint, lambda: [1], config, RandomSource(0)
        )

        def proc():
            with pytest.raises(PlacementError):
                yield from placer.place_range(0)
            return "ok"

        assert drive(small.sim, proc()) == "ok"

    def test_distinct_racks_when_possible(self):
        cluster = Cluster(
            machines=9,
            racks=4,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            memory_per_machine=64 << 20,
            seed=2,
        )
        placer, config = self._placer(cluster, k=2, r=1)

        def proc():
            handles = yield from placer.place_range(0)
            return handles

        handles = drive(cluster.sim, proc())
        racks = [cluster.machine(h.machine_id).rack for h in handles]
        assert len(set(racks)) == 3  # k + r = 3 distinct racks
