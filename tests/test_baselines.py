"""Baseline backends: replication, SSD backup, compression, direct."""

import pytest

from repro.baselines import (
    BackendError,
    BaselineConfig,
    CompressedReplicationBackend,
    DirectRemoteMemory,
    ReplicationBackend,
    SSDBackupBackend,
)
from repro.cluster import Cluster
from repro.net import NetworkConfig

from .conftest import drive, make_page


def build(kind, machines=8, with_ssd=False, seed=4, **kwargs):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        with_ssd=with_ssd,
        seed=seed,
    )
    config = BaselineConfig(slab_size_bytes=1 << 20)
    backend = kind(cluster, 0, config, **kwargs)
    return cluster, backend


class TestReplication:
    def test_roundtrip(self):
        cluster, backend = build(ReplicationBackend)

        def proc():
            for pid in range(8):
                yield backend.write(pid, make_page(pid))
            for pid in range(8):
                assert (yield backend.read(pid)) == make_page(pid)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_memory_overhead_is_copies(self):
        _, two = build(ReplicationBackend)
        assert two.memory_overhead == 2.0
        _, three = build(ReplicationBackend, copies=3)
        assert three.memory_overhead == 3.0

    def test_replicas_on_distinct_machines(self):
        cluster, backend = build(ReplicationBackend)

        def proc():
            yield backend.write(0, make_page(0))

        drive(cluster.sim, proc())
        machines = [h.machine_id for h in backend.groups[0]]
        assert len(set(machines)) == 2 and 0 not in machines

    def test_read_fails_over_on_machine_death(self):
        cluster, backend = build(ReplicationBackend)

        def proc():
            yield backend.write(0, make_page(0))
            cluster.machine(backend.groups[0][0].machine_id).fail()
            yield cluster.sim.timeout(200)
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(0)

    def test_rereplication_restores_redundancy(self):
        cluster, backend = build(ReplicationBackend)

        def proc():
            for pid in range(6):
                yield backend.write(pid, make_page(pid))
            dead = backend.groups[0][0].machine_id
            cluster.machine(dead).fail()
            yield cluster.sim.timeout(5_000_000)
            handles = backend.groups[0]
            assert all(h.available for h in handles)
            assert dead not in [h.machine_id for h in handles]
            # Kill the *other* original replica: data must survive via the
            # freshly copied one.
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert backend.events["rereplications"] >= 1

    def test_corrupt_replica_detected_by_checksum(self):
        import numpy as np

        cluster, backend = build(ReplicationBackend)

        def proc():
            yield backend.write(0, make_page(0))
            handle = backend.groups[0][0]
            slab = cluster.machine(handle.machine_id).hosted_slabs[handle.slab_id]
            stored = slab.pages[0]
            stored[0] ^= 0xFF  # silent remote corruption
            got = yield backend.read(0)
            return got

        assert drive(cluster.sim, proc()) == make_page(0)
        assert backend.events["corrupt_replica_reads"] >= 1

    def test_hedged_reads(self):
        cluster, backend = build(ReplicationBackend, hedged_reads=True)

        def proc():
            yield backend.write(0, make_page(0))
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(0)
        assert backend.events["hedged_reads"] == 1

    def test_total_loss_raises(self):
        cluster, backend = build(ReplicationBackend, machines=3)

        def proc():
            yield backend.write(0, make_page(0))
            for handle in backend.groups[0]:
                cluster.machine(handle.machine_id).fail()
            yield cluster.sim.timeout(200)
            with pytest.raises(BackendError):
                yield backend.read(0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build(ReplicationBackend, copies=0)
        with pytest.raises(ValueError):
            build(ReplicationBackend, write_acks=5)


class TestSSDBackup:
    def test_roundtrip_and_disk_copy(self):
        cluster, backend = build(SSDBackupBackend, with_ssd=True)

        def proc():
            for pid in range(8):
                yield backend.write(pid, make_page(pid))
            yield cluster.sim.timeout(10_000)  # staging drain
            for pid in range(8):
                assert (yield backend.read(pid)) == make_page(pid)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert backend.events["disk_backups"] == 8
        assert backend.memory_overhead == 1.0

    def test_requires_ssd(self):
        with pytest.raises(BackendError):
            build(SSDBackupBackend, with_ssd=False)

    def test_failure_falls_back_to_disk(self):
        cluster, backend = build(SSDBackupBackend, with_ssd=True)
        sim = cluster.sim

        def proc():
            yield backend.write(0, make_page(0))
            yield sim.timeout(10_000)
            fast_start = sim.now
            yield backend.read(0)
            fast = sim.now - fast_start
            cluster.machine(backend.groups[0][0].machine_id).fail()
            yield sim.timeout(200)
            slow_start = sim.now
            got = yield backend.read(0)
            slow = sim.now - slow_start
            return got, fast, slow

        got, fast, slow = drive(sim, proc())
        assert got == make_page(0)
        assert slow > 10 * fast  # disk-bound under failure
        assert backend.events["disk_reads"] >= 1

    def test_corruption_falls_back_to_disk(self):
        cluster, backend = build(SSDBackupBackend, with_ssd=True)

        def proc():
            yield backend.write(0, make_page(0))
            yield cluster.sim.timeout(10_000)
            handle = backend.groups[0][0]
            slab = cluster.machine(handle.machine_id).hosted_slabs[handle.slab_id]
            slab.pages[0][5] ^= 0x10
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(0)
        assert backend.events["corrupt_remote_reads"] == 1

    def test_burst_blocks_on_staging_buffer(self):
        """Fig 2d: when the staging buffer fills, writes slow to disk
        speed."""
        from repro.cluster import SSDConfig

        cluster = Cluster(
            machines=4,
            memory_per_machine=1 << 26,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            with_ssd=True,
            ssd_config=SSDConfig(write_latency_us=200.0, queue_depth=1),
            seed=4,
        )
        backend = SSDBackupBackend(
            cluster, 0, BaselineConfig(slab_size_bytes=1 << 20), staging_pages=4
        )
        sim = cluster.sim

        def proc():
            start = sim.now
            for pid in range(4):
                yield backend.write(pid, make_page(pid))
            unblocked = sim.now - start
            start = sim.now
            for pid in range(4, 24):
                yield backend.write(pid, make_page(pid))
            blocked = sim.now - start
            return unblocked / 4, blocked / 20

        fast_per_op, slow_per_op = drive(sim, proc())
        assert slow_per_op > 5 * fast_per_op

    def test_read_from_staging_buffer_before_drain(self):
        cluster, backend = build(SSDBackupBackend, with_ssd=True)

        def proc():
            yield backend.write(0, make_page(0))
            # Immediately kill the remote before the SSD drain finished.
            cluster.machine(backend.groups[0][0].machine_id).fail()
            yield cluster.sim.timeout(200)
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(0)


class TestCompressed:
    def test_roundtrip(self):
        cluster, backend = build(CompressedReplicationBackend)

        def proc():
            yield backend.write(0, make_page(0))
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(0)

    def test_overhead_below_replication(self):
        _, backend = build(CompressedReplicationBackend)
        assert backend.memory_overhead < 2.0

    def test_latency_above_replication(self):
        _, compressed = build(CompressedReplicationBackend)
        cluster_r, replication = build(ReplicationBackend, seed=5)

        def bench(cluster, backend):
            def proc():
                for pid in range(16):
                    yield backend.write(pid, make_page(pid))
                for pid in range(16):
                    yield backend.read(pid)

            drive(cluster.sim, proc())
            return backend.read_latency.p50

        cluster_c, compressed = build(CompressedReplicationBackend, seed=5)
        assert bench(cluster_c, compressed) > bench(cluster_r, replication)

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            build(CompressedReplicationBackend, compression_ratio=0.0)


class TestDirect:
    def test_roundtrip(self):
        cluster, backend = build(DirectRemoteMemory)

        def proc():
            yield backend.write(0, make_page(0))
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(0)
        assert backend.memory_overhead == 1.0

    def test_no_resilience(self):
        cluster, backend = build(DirectRemoteMemory)

        def proc():
            yield backend.write(0, make_page(0))
            cluster.machine(backend.groups[0][0].machine_id).fail()
            yield cluster.sim.timeout(200)
            with pytest.raises(BackendError):
                yield backend.read(0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_unwritten_read_returns_none(self):
        cluster, backend = build(DirectRemoteMemory)

        def proc():
            return (yield backend.read(7))

        assert drive(cluster.sim, proc()) is None


class TestSwarm:
    def test_roundtrip(self):
        from repro.baselines import SwarmReplicationBackend

        cluster, backend = build(SwarmReplicationBackend)

        def proc():
            for pid in range(8):
                yield backend.write(pid, make_page(pid))
            yield cluster.sim.timeout(1000.0)  # let background acks drain
            for pid in range(8):
                assert (yield backend.read(pid)) == make_page(pid)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert backend.events["sub_rtt_completions"] == 8

    def test_sub_rtt_writes_beat_waiting_for_acks(self):
        from repro.baselines import SwarmReplicationBackend

        def write_p50(kind):
            cluster, backend = build(kind)

            def proc():
                for i in range(40):
                    yield backend.write(i % 10, make_page(i % 10))

            drive(cluster.sim, proc())
            cluster.sim.run(until=cluster.sim.now + 10_000.0)
            return backend.write_latency.percentile(50)

        assert write_p50(SwarmReplicationBackend) < write_p50(ReplicationBackend)

    def test_post_completion_failure_window_is_counted(self):
        from repro.baselines import SwarmReplicationBackend

        cluster, backend = build(SwarmReplicationBackend)

        def proc():
            yield backend.write(0, make_page(0))
            yield cluster.sim.timeout(100.0)
            # Kill a replica, then write: the client completes sub-RTT
            # while the ack from the dead half fails behind its back.
            victims = [h.machine_id for h in backend.groups[0]]
            cluster.machine(victims[0]).fail()
            yield backend.write(0, make_page(1))
            yield cluster.sim.timeout(5_000.0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert backend.events["sub_rtt_completions"] == 2
        assert backend.events["post_completion_failures"] >= 1
