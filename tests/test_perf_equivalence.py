"""Equivalence pins for the wall-clock fast path.

The optimization pass (compiled GF row plans, syndrome-transform verify,
fused RDMA completions, synchronous event delivery, batched EC) must be
*semantics-preserving*: a seeded simulation produces byte-identical pages
and an identical metric trace before and after. The constants pinned here
were recorded on the pre-optimization code and re-verified unchanged at
every optimization checkpoint — if any assertion below starts failing,
a "speedup" changed behavior.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.ec import PageCodec, ReedSolomonCode
from repro.ec.galois import MUL_TABLE, gf_mul
from repro.ec.matrix import (
    gf_apply_row_plan,
    gf_matmul,
    gf_matmul_rows,
    gf_row_plan,
)
from repro.harness import build_hydra_cluster, run_process
from repro.harness.microbench import page_generator
from repro.sim import Simulator
from repro.sim.engine import SimulationError


# ----------------------------------------------------------------------
# GF(2^8) kernels against a definitional reference
# ----------------------------------------------------------------------
def _reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple loop straight from the field axioms — slow but obviously
    correct."""
    m, n = a.shape
    _, p = b.shape
    out = np.zeros((m, p), dtype=np.uint8)
    for i in range(m):
        for j in range(p):
            acc = 0
            for t in range(n):
                acc ^= gf_mul(int(a[i, t]), int(b[t, j]))
            out[i, j] = acc
    return out


def _cases(rng):
    yield rng.integers(0, 256, (4, 4), dtype=np.uint8), rng.integers(
        0, 256, (4, 9), dtype=np.uint8
    )
    # Identity-heavy: what decode matrices actually look like.
    sparse = np.eye(5, dtype=np.uint8)
    sparse[2] = rng.integers(0, 256, 5, dtype=np.uint8)
    yield sparse, rng.integers(0, 256, (5, 16), dtype=np.uint8)
    # A row of zeros and a row of ones exercise both shortcuts.
    a = rng.integers(0, 256, (3, 6), dtype=np.uint8)
    a[0] = 0
    a[1] = 1
    yield a, rng.integers(0, 256, (6, 7), dtype=np.uint8)


def test_gf_kernels_match_reference():
    rng = np.random.default_rng(7)
    for a, b in _cases(rng):
        expected = _reference_matmul(a, b)
        assert np.array_equal(gf_matmul(a, b), expected)
        assert np.array_equal(gf_matmul_rows(a, list(b)), expected)
        assert np.array_equal(gf_apply_row_plan(gf_row_plan(a), list(b)), expected)


def test_row_plan_unit_rows_copy_not_alias():
    plan = gf_row_plan(np.eye(3, dtype=np.uint8))
    rows = [np.arange(4, dtype=np.uint8) + i for i in range(3)]
    out = gf_apply_row_plan(plan, rows)
    out[0] ^= 0xFF
    assert rows[0][0] == 0  # the source row must not be written through


def test_mul_table_row_take_is_gf_mul():
    rng = np.random.default_rng(3)
    c = 0x8E
    b = rng.integers(0, 256, 64, dtype=np.uint8)
    expected = np.array([gf_mul(c, int(x)) for x in b], dtype=np.uint8)
    assert np.array_equal(MUL_TABLE[c].take(b), expected)


# ----------------------------------------------------------------------
# Syndrome verify == decode + re-encode reference
# ----------------------------------------------------------------------
def _reference_verify(code: ReedSolomonCode, splits) -> bool:
    """The pre-optimization check: decode the first k received splits,
    re-encode every received index, compare."""
    if len(splits) <= code.k:
        return True
    decoded = code.decode(splits)
    for index in sorted(splits):
        expected = code.reencode_split(decoded, index)
        if not np.array_equal(expected, np.asarray(splits[index], dtype=np.uint8)):
            return False
    return True


def test_syndrome_verify_matches_reference():
    rng = np.random.default_rng(11)
    code = ReedSolomonCode(k=4, r=3)
    data = rng.integers(0, 256, (4, 32), dtype=np.uint8)
    full = code.encode_page(data)
    import itertools

    for subset in itertools.combinations(range(code.n), 5):
        clean = {i: full[i] for i in subset}
        assert code.verify(clean) is True
        assert _reference_verify(code, clean) is True
        for victim in subset:
            corrupt = {i: full[i].copy() for i in subset}
            corrupt[victim][0] ^= 0x55
            assert code.verify(corrupt) == _reference_verify(code, corrupt), (
                subset,
                victim,
            )


def test_decode_verified_rejects_exactly_like_reference():
    rng = np.random.default_rng(13)
    code = ReedSolomonCode(k=4, r=2)
    data = rng.integers(0, 256, (4, 16), dtype=np.uint8)
    full = code.encode_page(data)
    splits = {i: full[i] for i in (0, 1, 2, 4, 5)}
    assert np.array_equal(code.decode_verified(splits), data)
    bad = {i: full[i].copy() for i in (0, 1, 2, 4, 5)}
    bad[4][3] ^= 1
    from repro.ec import CorruptionDetected

    with pytest.raises(CorruptionDetected):
        code.decode_verified(bad)


# ----------------------------------------------------------------------
# Batched codec paths == per-page paths, byte for byte
# ----------------------------------------------------------------------
def test_batch_codec_paths_match_per_page():
    codec = PageCodec(k=8, r=2)
    make_page = page_generator()
    pages = [make_page(i) for i in range(6)]

    stack = codec.encode_batch(pages)
    for i, page in enumerate(pages):
        assert np.array_equal(stack[i], codec.encode(page))

    indices = [0, 1, 2, 3, 4, 5, 6, 8]  # one erasure, one parity standing in
    payload_stack = np.stack([stack[i][indices] for i in range(len(pages))])
    decoded = codec.decode_batch(indices, payload_stack)
    for i, page in enumerate(pages):
        per_page = codec.decode({j: stack[i][j] for j in indices})
        assert decoded[i] == per_page == page

    split_stack = codec.split_pages(pages)
    for i, page in enumerate(pages):
        assert np.array_equal(split_stack[i], codec.split(page))
    assert codec.join_pages(split_stack) == pages


def test_split_fast_path_returns_writable_copy():
    codec = PageCodec(k=8, r=2)
    page = bytes(range(256)) * 16
    splits = codec.split(page)
    splits[0][0] ^= 0xFF  # must not raise (frombuffer views are read-only)
    assert codec.split(page)[0][0] == 0  # and must not alias the source


# ----------------------------------------------------------------------
# Engine: synchronous delivery keeps Event semantics
# ----------------------------------------------------------------------
def test_succeed_now_runs_callbacks_synchronously():
    sim = Simulator()
    seen = []
    event = sim.event(name="x")
    event.callbacks.append(lambda ev: seen.append(ev.value))
    event.succeed_now(42)
    assert seen == [42]
    assert event.processed and event.ok and event.value == 42
    with pytest.raises(SimulationError):
        event.succeed_now(43)


def test_succeed_now_wakes_waiting_process_in_order():
    sim = Simulator()
    log = []
    gate = sim.event(name="gate")

    def waiter():
        yield gate
        log.append(("waiter", sim.now))

    def firer():
        yield sim.timeout(5.0)
        log.append(("fire", sim.now))
        gate.succeed_now()
        log.append(("after-fire", sim.now))

    sim.process(waiter(), name="w")
    sim.process(firer(), name="f")
    sim.run()
    assert log == [("fire", 5.0), ("waiter", 5.0), ("after-fire", 5.0)]


def test_rdma_completions_keep_post_order():
    """Fused verb delivery must preserve per-QP completion ordering —
    the property §4.3's read-after-write safety rests on."""
    from repro.net import RdmaFabric

    class _Stub:
        def __init__(self, mid, nic):
            self.id = mid
            self.nic = nic
            self.alive = True

        def deliver_message(self, src, msg):
            pass

    sim = Simulator()
    fabric = RdmaFabric(sim)
    from repro.net.rdma import Nic

    for mid in (0, 1):
        fabric.register(_Stub(mid, Nic(fabric.config, machine_id=mid)))
    qp = fabric.qp(0, 1)
    completions = []
    for i in range(50):
        # Alternate sizes so raw latencies would NOT be monotone.
        size = 4096 if i % 2 == 0 else 64
        event = qp.post_write(size, apply=lambda i=i: i)
        event.callbacks.append(lambda ev: completions.append(ev.value))
    sim.run()
    assert completions == list(range(50))


# ----------------------------------------------------------------------
# Pinned end-to-end fingerprints (recorded pre-optimization)
# ----------------------------------------------------------------------
def _metrics_sha(metrics) -> str:
    snap = metrics.snapshot()
    return hashlib.sha256(
        json.dumps(snap, sort_keys=True, default=str).encode()
    ).hexdigest()


def test_seeded_run_fingerprint_unchanged():
    hydra = build_hydra_cluster(machines=10, k=4, r=2, delta=1, seed=7)
    rm = hydra.remote_memory(0)
    sim = hydra.sim
    make_page = page_generator()
    pages = [make_page(pid) for pid in range(32)]
    digest = hashlib.sha256()

    def driver():
        for i in range(200):
            pid = i % 32
            yield rm.write(pid, pages[pid])
            data = yield rm.read(pid)
            digest.update(data)

    run_process(sim, sim.process(driver(), name="fp"), until=1e12)

    assert sim.now == pytest.approx(1722.486783623721, abs=0, rel=0)
    assert digest.hexdigest() == (
        "ebbc2035edb9416b042e621f1efc8b45dfd266d254ff6a1a460c007e26b06b9e"
    )
    assert rm.read_latency.p50 == pytest.approx(5.798503346925713, abs=0, rel=0)
    assert rm.write_latency.p50 == pytest.approx(1.7684307657343084, abs=0, rel=0)
    assert dict(sorted(rm.events.counts.items())) == {
        "decoded_reads": 188,
        "parity_writes": 400,
        "ranges_placed": 1,
        "reads": 200,
        "writes": 200,
    }
    # Re-pinned twice as the snapshot format grew: first for the
    # telemetry PR (p90 + distribution detail, rm.*.ops /
    # monitor.*.free_fraction), then for the EC plan-cache PR which adds
    # one rm.*.ec.plan_evictions counter per machine. Stripping the new
    # counters reproduces the previous hash exactly; the simulated
    # anchors above never moved.
    assert _metrics_sha(hydra.obs.metrics) == (
        "50403b43a756dbe07a5afb52d5386dab0ee9d6dffba70bc800fadb687fc23a8b"
    )


def test_seeded_failure_run_fingerprint_unchanged():
    hydra = build_hydra_cluster(machines=10, k=4, r=2, delta=1, seed=11)
    rm = hydra.remote_memory(0)
    sim = hydra.sim
    make_page = page_generator()
    pages = [make_page(pid) for pid in range(16)]
    digest = hashlib.sha256()

    def driver():
        for pid in range(16):
            yield rm.write(pid, pages[pid])
        victim = rm.space.get(0).handle(0).machine_id
        hydra.cluster.machine(victim).fail()
        yield sim.timeout(200)
        for i in range(64):
            pid = i % 16
            yield rm.write(pid, pages[pid])
            data = yield rm.read(pid)
            digest.update(data)
        yield sim.timeout(5_000_000)

    run_process(sim, sim.process(driver(), name="fp2"), until=1e12)

    assert sim.now == pytest.approx(5000882.758883418, abs=0, rel=0)
    assert digest.hexdigest() == (
        "2787081113f4cd3c8f0c1af600477130c8a6efc524b536d313f461aa65eae550"
    )
    events = dict(sorted(rm.events.counts.items()))
    assert events["regenerations"] == 1
    assert events["disconnects"] == 1
    assert events["reads"] == 64 and events["writes"] == 80
