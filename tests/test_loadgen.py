"""Loadgen suite: knee detection, canonical percentiles, resampling
statistics, open-loop behavior, trace replay, and the CLI."""

import json

import numpy as np
import pytest

from repro.harness.loadgen import (
    LOADGEN_SCHEMA,
    detect_knee,
    loadgen_canonical_json,
    main as loadgen_main,
)
from repro.harness.report import (
    STATISTICS,
    bootstrap_ci,
    format_ci_series,
    percentile,
    permutation_pvalue,
)
from repro.harness.scenarios import run_open_loop_point, run_trace_replay_point
from repro.sim import RandomSource
from repro.workloads import ReplayTrace, TraceEpoch


# ----------------------------------------------------------------------
# knee detection regressions
# ----------------------------------------------------------------------
def test_knee_detected_on_hockey_stick():
    # Synthetic M/M/1-ish curve: flat, flat, turn, explode. The knee must
    # land within one sweep step of the turn (index 3).
    xs = [20e3, 40e3, 60e3, 80e3, 100e3, 120e3]
    ys = [57.0, 70.0, 144.0, 3_895.0, 30_063.0, 55_824.0]
    knee = detect_knee(xs, ys)
    assert knee is not None
    assert knee["index"] in (2, 3, 4)
    assert abs(knee["index"] - 3) <= 1
    assert knee["offered_per_sec"] == xs[knee["index"]]
    assert knee["p99_us"] == ys[knee["index"]]
    assert knee["bulge"] > 0.1


def test_knee_sharper_curve_moves_knee():
    # An earlier explosion moves the knee earlier by the same rule.
    xs = [1, 2, 3, 4, 5]
    ys = [10.0, 12.0, 500.0, 5_000.0, 50_000.0]
    knee = detect_knee(xs, ys)
    assert knee is not None and knee["index"] in (2, 3)


def test_knee_none_when_flat():
    # No saturation inside the sweep: never report a knee.
    assert detect_knee([1, 2, 3, 4], [10.0, 10.5, 10.2, 10.4]) is None
    assert detect_knee([1, 2, 3, 4], [10.0, 11.0, 12.0, 13.0]) is None  # <50% rise


def test_knee_none_when_monotone_degenerate():
    # Linear growth has no turning point — the normalized bulge is ~0.
    assert detect_knee([1, 2, 3, 4, 5], [10.0, 20.0, 30.0, 40.0, 50.0]) is None
    # Concave (decelerating) growth bulges the wrong way.
    assert detect_knee([1, 2, 3, 4, 5], [10.0, 40.0, 55.0, 62.0, 65.0]) is None


def test_knee_degenerate_inputs():
    assert detect_knee([1, 2], [1.0, 100.0]) is None  # too few points
    with pytest.raises(ValueError):
        detect_knee([1, 2, 2, 4], [1.0, 2.0, 3.0, 4.0])  # non-increasing xs
    with pytest.raises(ValueError):
        detect_knee([1, 2, 3], [1.0, 2.0])  # length mismatch


# ----------------------------------------------------------------------
# percentile canon + resampling statistics
# ----------------------------------------------------------------------
def test_percentile_linear_interpolation_pinned():
    # The canonical definition is linear interpolation between closest
    # ranks. [1,2,3,4]: p50 = 2.5 — nearest-rank would report 2 or 3.
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
    assert percentile([1.0, 2.0, 3.0, 4.0], 25) == 1.75
    assert percentile([0.0, 10.0], 50) == 5.0
    assert percentile([7.0], 99) == 7.0
    assert percentile([5.0, 1.0, 3.0], 0) == 1.0  # sorts internally
    assert percentile([5.0, 1.0, 3.0], 100) == 5.0


def test_percentile_matches_numpy_everywhere():
    rng = np.random.default_rng(7)
    for size in (2, 5, 101, 1_000):
        values = rng.exponential(100.0, size=size)
        for pct in (1, 25, 50, 90, 99, 99.9):
            assert percentile(values, pct) == pytest.approx(
                float(np.percentile(values, pct)), rel=1e-12
            )


def test_percentile_differs_from_nearest_rank_histogram():
    # The historical inconsistency this helper resolves: the HDR
    # histogram path reports nearest-rank bucket upper bounds, which on
    # small samples disagrees with linear interpolation. Pin both so the
    # difference stays documented rather than accidental.
    from repro.sim.trace import LatencyRecorder

    recorder = LatencyRecorder("pin", reservoir_limit=2)
    for value in (1.0, 2.0, 3.0, 4.0):
        recorder.record(value)  # beyond the reservoir -> histogram path
    histogram_p50 = recorder.summary().p50
    linear_p50 = percentile([1.0, 2.0, 3.0, 4.0], 50)
    assert linear_p50 == 2.5
    assert histogram_p50 != linear_p50  # bucket upper bound, by design


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


def test_bootstrap_ci_is_deterministic_and_brackets_the_statistic():
    rng = np.random.default_rng(11)
    values = rng.lognormal(3.0, 1.0, size=400)
    for name in STATISTICS:
        lo, hi = bootstrap_ci(values, statistic=name, seed=5)
        again = bootstrap_ci(values, statistic=name, seed=5)
        assert (lo, hi) == again  # seeded -> byte-stable
        point = STATISTICS[name](values)
        assert lo <= point <= hi
        assert lo < hi
    single = bootstrap_ci([42.0], statistic="mean")
    assert single == (42.0, 42.0)
    with pytest.raises(ValueError):
        bootstrap_ci([], statistic="mean")
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], statistic="p75")  # unknown name
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=1.0)


def test_bootstrap_ci_narrows_with_more_samples():
    rng = np.random.default_rng(13)
    small = rng.normal(100.0, 10.0, size=50)
    large = rng.normal(100.0, 10.0, size=5_000)
    lo_s, hi_s = bootstrap_ci(small, statistic="mean", seed=1)
    lo_l, hi_l = bootstrap_ci(large, statistic="mean", seed=1)
    assert (hi_l - lo_l) < (hi_s - lo_s)


def test_permutation_pvalue_separates_real_shifts_from_noise():
    rng = np.random.default_rng(17)
    a = rng.normal(100.0, 5.0, size=200)
    same = rng.normal(100.0, 5.0, size=200)
    shifted = rng.normal(110.0, 5.0, size=200)
    p_same = permutation_pvalue(a, same, seed=3)
    p_shift = permutation_pvalue(a, shifted, seed=3)
    assert p_same > 0.05
    assert p_shift < 0.01
    assert permutation_pvalue(a, same, seed=3) == p_same  # deterministic
    with pytest.raises(ValueError):
        permutation_pvalue([], [1.0])


def test_format_ci_series_renders_bounds():
    text = format_ci_series("p99", [10, 20], [1.0, 2.5], [0.9, 2.0], [1.1, 3.0])
    assert text == "p99: 10=1.0 [0.9, 1.1], 20=2.5 [2.0, 3.0]"


# ----------------------------------------------------------------------
# open-loop + replay behavior (single points; the sweep itself is pinned
# by the determinism gate)
# ----------------------------------------------------------------------
def test_open_loop_keeps_up_below_capacity():
    point = run_open_loop_point(
        rate_per_sec=20_000.0, duration_us=50_000.0, seed=1
    )
    assert point["achieved_per_sec"] == pytest.approx(20_000.0, rel=0.15)
    assert point["dropped"] == 0
    assert point["completed"] == point["issued"]
    assert point["p50_us"] < 100.0
    assert len(point["samples"]) == point["completed"]


def test_open_loop_saturates_above_capacity():
    light = run_open_loop_point(
        rate_per_sec=20_000.0, duration_us=50_000.0, seed=1
    )
    heavy = run_open_loop_point(
        rate_per_sec=120_000.0, duration_us=50_000.0, seed=1
    )
    # Past the knee: completions cap at capacity (~77k/s) while offered
    # load keeps growing, the queue backs up, and latency explodes.
    assert heavy["achieved_per_sec"] < 100_000.0
    assert heavy["queue_peak"] > 20 * light["queue_peak"]
    assert heavy["p99_us"] > 20 * light["p99_us"]
    # Open loop: every admitted request is eventually timed (no
    # coordinated omission).
    assert heavy["completed"] == heavy["issued"]


def test_open_loop_queue_limit_drops():
    point = run_open_loop_point(
        rate_per_sec=120_000.0, duration_us=30_000.0, seed=2,
    )
    from repro.harness.scenarios import build_pool
    from repro.harness.microbench import run_process
    from repro.sim import RandomSource as RS
    from repro.vmm import PagedMemory
    from repro.workloads import OpenLoopWorkload, PoissonArrivals

    cluster, pool = build_pool("hydra", 12, 2)
    pager = PagedMemory(pool, resident_pages=256)
    run_process(cluster.sim, pager.preload(range(512)), until=1e10)
    rng = RS(2, "queue-limit")
    work = OpenLoopWorkload(
        pager, rng.child("ops"),
        PoissonArrivals(rng.child("arrivals"), 120_000.0),
        512, queue_limit=16,
    )
    result = run_process(cluster.sim, work.run(30_000.0), until=1e10)
    assert result.dropped > 0
    assert result.completed + result.dropped == result.issued
    assert result.queue_peak <= 16 + work.concurrency
    # The unbounded run admitted (and timed) strictly more requests.
    assert point["completed"] > result.completed


def test_trace_json_roundtrip():
    trace = ReplayTrace.synthetic(seed=4, epochs=5)
    text = trace.to_json()
    back = ReplayTrace.from_json(text)
    assert back.name == trace.name
    assert back.key_space == trace.key_space
    assert back.epochs == trace.epochs
    assert back.to_json() == text

    with pytest.raises(ValueError):
        ReplayTrace.from_json(json.dumps({"schema": "hydra-trace/0"}))
    with pytest.raises(ValueError):
        ReplayTrace(name="empty", key_space=8, epochs=[]).validate()
    with pytest.raises(ValueError):
        TraceEpoch(duration_us=1.0, rate_per_sec=1.0, key_offset=9).validate(8)
    with pytest.raises(ValueError):
        TraceEpoch(
            duration_us=1.0, rate_per_sec=1.0, size_pages=(1, 2),
            size_weights=(1.0,),
        ).validate(8)


def test_trace_replay_point_tracks_epoch_rates():
    trace = ReplayTrace(
        name="step",
        key_space=256,
        epochs=[
            TraceEpoch(duration_us=40_000.0, rate_per_sec=10_000.0),
            TraceEpoch(duration_us=40_000.0, rate_per_sec=40_000.0,
                       key_offset=128, size_pages=(1, 2),
                       size_weights=(0.8, 0.2)),
        ],
    )
    point = run_trace_replay_point(seed=0, trace_json=trace.to_json())
    assert point["trace"] == "step"
    assert [row["index"] for row in point["epochs"]] == [0, 1]
    low, high = point["epochs"]
    # Issued counts track the epoch rates (Poisson, 4x the rate -> ~4x
    # the arrivals) and every epoch actually completed work.
    assert high["issued"] > 2.5 * low["issued"]
    assert low["completed_in_epoch"] > 0 and high["completed_in_epoch"] > 0
    assert low["p50_us"] > 0 and high["p99_us"] >= high["p50_us"]
    assert point["completed"] == sum(
        row["completed_in_epoch"] for row in point["epochs"]
    )
    assert len(point["samples"]) == point["completed"]


def test_weighted_choice_follows_weights():
    rng = RandomSource(9, "weights")
    counts = {1: 0, 2: 0, 4: 0}
    n = 10_000
    for _ in range(n):
        counts[rng.weighted_choice((1, 2, 4), (0.7, 0.2, 0.1))] += 1
    assert counts[1] / n == pytest.approx(0.7, abs=0.03)
    assert counts[2] / n == pytest.approx(0.2, abs=0.03)
    assert counts[4] / n == pytest.approx(0.1, abs=0.03)
    with pytest.raises(ValueError):
        rng.weighted_choice((1, 2), (1.0,))
    with pytest.raises(ValueError):
        rng.weighted_choice((1, 2), (0.0, 0.0))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_loadgen_cli_sweep_smoke(tmp_path):
    output = tmp_path / "loadgen.json"
    code = loadgen_main([
        "--sweep", "--quick", "--seeds", "1",
        "--rates", "20000,60000,100000",
        "--output", str(output),
    ])
    assert code == 0
    doc = json.loads(output.read_text())
    assert doc["schema"] == LOADGEN_SCHEMA
    assert doc["mode"] == "sweep"
    assert [p["offered_per_sec"] for p in doc["points"]] == [
        20_000.0, 60_000.0, 100_000.0,
    ]
    for point in doc["points"]:
        assert point["p99_ci_us"][0] <= point["p99_us"] <= point["p99_ci_us"][1]
    assert doc["points"][0]["vs_base_pvalue"] is None
    assert doc["points"][-1]["vs_base_pvalue"] is not None
    # 20k -> 100k spans the ~77k/s capacity: the knee must be found.
    assert doc["knee"] is not None
    assert doc["knee"]["offered_per_sec"] in (60_000.0, 100_000.0)
    # Canonicalization strips only host fields.
    canonical = json.loads(loadgen_canonical_json(doc))
    assert "jobs" not in canonical and "platform" not in canonical
    assert canonical["points"] == doc["points"]


def test_loadgen_cli_replay_smoke(tmp_path):
    output = tmp_path / "replay.json"
    trace_path = tmp_path / "trace.json"
    trace_path.write_text(
        ReplayTrace.synthetic(seed=1, epochs=3, key_space=256,
                              epoch_us=30_000.0).to_json()
    )
    code = loadgen_main([
        "--replay", "--seeds", "1", "--trace", str(trace_path),
        "--output", str(output),
    ])
    assert code == 0
    doc = json.loads(output.read_text())
    assert doc["mode"] == "replay"
    assert doc["trace"]["name"] == "synthetic-1"
    assert len(doc["epochs"]) == 3
    assert doc["overall"]["n_samples"] > 0


def test_loadgen_cli_usage_errors(tmp_path):
    assert loadgen_main(["--bogus"]) == 2
    assert loadgen_main(["--arrivals", "weibull"]) == 2
    assert loadgen_main(["--backend", "carp"]) == 2
    assert loadgen_main(["--rates", "1000"]) == 2
    assert loadgen_main(["--rates", "a,b"]) == 2
    assert loadgen_main(["--seeds", "0"]) == 2
    assert loadgen_main(["--seeds"]) == 2
    assert loadgen_main(["--trace", str(tmp_path / "missing.json")]) == 2
