"""Packed slab metadata (SlabTable/RackTopology) and the rack-scale sweep.

The sweep's report text must be a pure function of its config — that is
the contract that makes the ``rack_scale`` bench shard byte-identical
between serial and ``-j N`` runs (docs/SCALING.md).
"""

import numpy as np
import pytest

from repro.cluster.slabtable import (
    STATE_FREE,
    STATE_MAPPED,
    STATE_UNAVAILABLE,
    RackTopology,
    SlabTable,
    place_ranges,
)
from repro.harness.rack_scale import (
    RackScaleConfig,
    format_rack_scale,
    run_rack_scale,
)


class TestRackTopology:
    def test_rack_and_pod_mapping(self):
        topo = RackTopology(machines=24, machines_per_rack=4, racks_per_pod=3)
        assert topo.racks == 6 and topo.pods == 2
        assert topo.rack[0] == topo.rack[3] == 0
        assert topo.rack[4] == 1
        assert topo.pod[11] == 0 and topo.pod[12] == 1
        assert list(topo.machines_in_rack(1)) == [4, 5, 6, 7]

    def test_latency_classes(self):
        topo = RackTopology(machines=24, machines_per_rack=4, racks_per_pod=3)
        src = np.array([0, 0, 0])
        dst = np.array([1, 5, 13])  # same rack, same pod, cross pod
        assert list(topo.latency_class(src, dst)) == [0, 1, 2]
        lat = topo.latency_us(src, dst)
        assert lat[0] < lat[1] < lat[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            RackTopology(machines=0)
        with pytest.raises(ValueError):
            RackTopology(machines=4, machines_per_rack=0)


class TestSlabTable:
    def test_allocate_map_unmap_counters(self):
        table = SlabTable(machines=4, capacity=2)
        ids = table.allocate([0, 0, 1, 3])
        assert len(table) == 4 and table.capacity >= 4  # grew past 2
        assert list(table.free_per_host) == [2, 1, 0, 1]
        table.map(ids[:2], owners=2, ranges=7, positions=[0, 1])
        assert list(table.free_per_host) == [0, 1, 0, 1]
        assert np.all(table.state[ids[:2]] == STATE_MAPPED)
        assert np.all(table.range_id[ids[:2]] == 7)
        table.unmap(ids[0])
        assert table.state[ids[0]] == STATE_FREE
        assert table.owner[ids[0]] == -1
        assert list(table.free_per_host) == [1, 1, 0, 1]

    def test_map_requires_free(self):
        table = SlabTable(machines=2)
        ids = table.allocate([0])
        table.map(ids, 1, 0, 0)
        with pytest.raises(ValueError):
            table.map(ids, 1, 0, 0)

    def test_fail_host_tombstones(self):
        table = SlabTable(machines=3)
        ids = table.allocate([0, 0, 1])
        table.map(ids[0], owners=2, ranges=0, positions=0)
        table.pages[ids[0]] = 99
        lost = table.fail_host(0)
        assert sorted(lost) == sorted(ids[:2])
        assert np.all(table.state[lost] == STATE_UNAVAILABLE)
        assert table.pages[ids[0]] == 0
        assert table.free_per_host[0] == 0 and table.slabs_per_host[0] == 0
        assert table.free_per_host[1] == 1  # untouched host

    def test_range_host_matrix_and_loads(self):
        table = SlabTable(machines=5)
        ids = table.allocate([0, 2, 4])
        table.map(ids, owners=1, ranges=0, positions=[0, 1, 2])
        table.pages[ids] = [10, 20, 30]
        matrix = table.range_host_matrix(n_ranges=1, n_splits=4)
        assert list(matrix[0]) == [0, 2, 4, -1]
        assert list(table.mapped_load()) == [1, 0, 1, 0, 1]
        assert list(table.page_load()) == [10, 0, 20, 0, 30]

    def test_host_id_validation(self):
        table = SlabTable(machines=2)
        with pytest.raises(ValueError):
            table.allocate([2])

    def test_memory_model(self):
        table = SlabTable(machines=10, capacity=100)
        fields = table.field_nbytes()
        per_slab = sum(
            nbytes
            for name, nbytes in fields.items()
            if name not in ("free_per_host", "slabs_per_host")
        )
        assert per_slab == 100 * SlabTable.BYTES_PER_SLAB
        assert table.nbytes == sum(fields.values())


class TestPlaceRanges:
    def _setup(self, machines=40, per_rack=4):
        topo = RackTopology(machines, machines_per_rack=per_rack, racks_per_pod=2)
        table = SlabTable(machines)
        return table, topo

    def test_hydra_is_rack_distinct(self):
        table, topo = self._setup()
        hosts = place_ranges(
            table, topo, owners=np.arange(8), n_splits=5, choices=20,
            rng=np.random.default_rng(1), policy="hydra",
        )
        assert hosts.shape == (8, 5)
        for row in hosts:
            assert len(set(topo.rack[row])) == 5  # one slab per rack
        assert len(table) == 40 and len(table.mapped_ids()) == 40

    def test_same_seed_same_placement(self):
        a_table, topo = self._setup()
        b_table, _ = self._setup()
        kwargs = dict(owners=np.arange(6), n_splits=4, choices=12, policy="hydra")
        a = place_ranges(a_table, topo, rng=np.random.default_rng(9), **kwargs)
        b = place_ranges(b_table, topo, rng=np.random.default_rng(9), **kwargs)
        assert np.array_equal(a, b)

    def test_unknown_policy_rejected(self):
        table, topo = self._setup()
        with pytest.raises(ValueError):
            place_ranges(table, topo, [0], 2, 4, np.random.default_rng(0), policy="x")


# 60 machines in 12 racks: with only 12 racks for 10 splits, the sample
# must be wide (choices=40) or the rack-distinct walk falls back.
_TINY = RackScaleConfig(
    machines=60,
    machines_per_rack=5,
    racks_per_pod=4,
    pages_per_range=64,
    choices=40,
    failure_trials=20,
    engine_events=5_000,
)


class TestRackScaleSweep:
    def test_report_is_pure_function_of_config(self):
        first = run_rack_scale(_TINY)
        second = run_rack_scale(_TINY)
        assert format_rack_scale(first) == format_rack_scale(second)

    def test_sweep_outputs(self):
        result = run_rack_scale(_TINY)
        assert result["config"]["racks"] == 12
        assert result["config"]["logical_pages"] == 60 * 64
        assert result["placement"]["hydra"]["rack_distinct"] == 1.0
        assert result["data_loss"]["rack_blast"]["hydra"]["1"] == 0.0
        assert result["memory"]["table_bytes"] > 0
        assert result["engine"]["events"] >= _TINY.engine_events

    def test_bench_shard_serial_matches_j2_bytes(self, tmp_path, monkeypatch):
        from repro.parallel.bench import bench_report_digest, run_bench

        monkeypatch.setenv("REPRO_RACK_SCALE", "smoke")
        dirs = {1: tmp_path / "j1", 2: tmp_path / "j2"}
        docs = {
            jobs: run_bench(jobs=jobs, substring="rack_scale", results_dir=str(path))
            for jobs, path in dirs.items()
        }
        assert all(doc["ok"] for doc in docs.values())
        assert bench_report_digest(docs[1]) == bench_report_digest(docs[2])
        serial = (dirs[1] / "rack_scale.txt").read_bytes()
        parallel = (dirs[2] / "rack_scale.txt").read_bytes()
        assert serial == parallel
        assert b"Rack-scale sweep" in serial
