"""Machine, slab, SSD, and failure-injector tests."""

import pytest

from repro.cluster import (
    Cluster,
    CorruptionInjector,
    FailureInjector,
    LocalMemoryPressure,
    PhantomSplit,
    SlabState,
    SSDConfig,
    corrupt_payload,
    payloads_equal,
)
from repro.net import RemoteAccessError
from repro.sim import RandomSource

from .conftest import drive


class TestMachineMemory:
    def test_allocation_accounting(self):
        cluster = Cluster(machines=2, memory_per_machine=10 << 20, seed=0)
        machine = cluster.machine(0)
        slab = machine.allocate_slab(4 << 20)
        assert machine.slab_bytes == 4 << 20
        assert machine.free_bytes == 6 << 20
        machine.release_slab(slab.slab_id)
        assert machine.free_bytes == 10 << 20

    def test_over_allocation_rejected(self):
        cluster = Cluster(machines=1, memory_per_machine=1 << 20, seed=0)
        with pytest.raises(MemoryError):
            cluster.machine(0).allocate_slab(2 << 20)

    def test_local_app_memory_counts(self):
        cluster = Cluster(machines=1, memory_per_machine=10 << 20, seed=0)
        machine = cluster.machine(0)
        machine.set_local_app_bytes(8 << 20)
        with pytest.raises(MemoryError):
            machine.allocate_slab(4 << 20)

    def test_negative_local_usage_rejected(self):
        cluster = Cluster(machines=1, seed=0)
        with pytest.raises(ValueError):
            cluster.machine(0).set_local_app_bytes(-1)

    def test_utilization(self):
        cluster = Cluster(machines=1, memory_per_machine=10 << 20, seed=0)
        machine = cluster.machine(0)
        machine.set_local_app_bytes(5 << 20)
        assert machine.memory_utilization == pytest.approx(0.5)


class TestSlabLifecycle:
    def _slab(self):
        cluster = Cluster(machines=1, seed=0)
        return cluster.machine(0), cluster.machine(0).allocate_slab(1 << 20)

    def test_map_unmap(self):
        machine, slab = self._slab()
        slab.map_to(owner_id=9, range_id=3, split_index=2)
        assert slab.state == SlabState.MAPPED
        assert slab.owner_id == 9 and slab.split_index == 2
        slab.unmap()
        assert slab.state == SlabState.FREE
        assert slab.pages == {}

    def test_double_map_rejected(self):
        _machine, slab = self._slab()
        slab.map_to(1, 1, 0)
        with pytest.raises(ValueError):
            slab.map_to(2, 2, 1)

    def test_regeneration_disables_writes(self):
        machine, slab = self._slab()
        slab.map_to(1, 1, 0)
        slab.begin_regeneration()
        with pytest.raises(RemoteAccessError):
            machine.write_split(slab.slab_id, 0, b"x")
        # Reads still served during regeneration (§4.4).
        machine.read_split(slab.slab_id, 0)
        slab.finish_regeneration()
        machine.write_split(slab.slab_id, 0, b"x")

    def test_access_to_free_slab_faults(self):
        machine, slab = self._slab()
        with pytest.raises(RemoteAccessError):
            machine.read_split(slab.slab_id, 0)

    def test_access_counters(self):
        machine, slab = self._slab()
        slab.map_to(1, 1, 0)
        machine.write_split(slab.slab_id, 0, b"x")
        machine.read_split(slab.slab_id, 0)
        assert slab.access_count == 2
        assert slab.touched_pages == 1


class TestPayloads:
    def test_phantom_corruption(self):
        rng = RandomSource(0)
        split = PhantomSplit(version=3)
        corrupted = corrupt_payload(split, rng)
        assert corrupted.corrupt and corrupted.version == 3
        assert not payloads_equal(split, corrupted)

    def test_real_corruption_changes_bytes(self):
        import numpy as np

        rng = RandomSource(1)
        payload = np.zeros(64, dtype=np.uint8)
        corrupted = corrupt_payload(payload, rng)
        assert not np.array_equal(payload, corrupted)
        assert payloads_equal(payload, payload.copy())

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            corrupt_payload("not a payload", RandomSource(2))


class TestSSD:
    def test_read_write_latency(self):
        cluster = Cluster(machines=1, with_ssd=True, seed=0)
        sim = cluster.sim
        ssd = cluster.machine(0).ssd

        def proc():
            start = sim.now
            yield ssd.write(4096)
            write_time = sim.now - start
            start = sim.now
            yield ssd.read(4096)
            read_time = sim.now - start
            return write_time, read_time

        write_time, read_time = drive(sim, proc())
        config = ssd.config
        assert write_time == pytest.approx(
            config.write_latency_us + 4096 / config.bandwidth_bytes_per_us
        )
        assert read_time > write_time  # reads slower on this profile

    def test_queue_saturation_slows_requests(self):
        """Beyond queue depth, requests wait — the §2.2 burst bottleneck."""
        config = SSDConfig(queue_depth=2, write_latency_us=100.0)
        cluster = Cluster(machines=1, with_ssd=True, ssd_config=config, seed=0)
        sim = cluster.sim
        ssd = cluster.machine(0).ssd

        def proc():
            events = [ssd.write(4096) for _ in range(6)]
            yield sim.all_of(events)
            return sim.now

        finish = drive(sim, proc())
        # 6 writes, 2 channels -> 3 serialized rounds.
        assert finish >= 3 * config.write_latency_us

    def test_stats(self):
        cluster = Cluster(machines=1, with_ssd=True, seed=0)
        ssd = cluster.machine(0).ssd

        def proc():
            yield ssd.write(100)
            yield ssd.read(50)

        drive(cluster.sim, proc())
        assert ssd.writes == 1 and ssd.reads == 1
        assert ssd.bytes_written == 100 and ssd.bytes_read == 50


class TestInjectors:
    def test_scheduled_crash_and_recovery(self):
        cluster = Cluster(machines=2, seed=0)
        sim = cluster.sim
        injector = FailureInjector(sim)
        injector.crash_at(cluster.machine(1), at_us=100.0, recover_after_us=50.0)

        def proc():
            yield sim.timeout(120)
            down = cluster.machine(1).alive
            yield sim.timeout(50)
            up = cluster.machine(1).alive
            return down, up

        down, up = drive(sim, proc())
        assert down is False and up is True

    def test_crash_in_past_rejected(self):
        cluster = Cluster(machines=1, seed=0)
        cluster.sim.now = 100.0
        with pytest.raises(ValueError):
            FailureInjector(cluster.sim).crash_at(cluster.machine(0), at_us=50.0)

    def test_correlated_crash_fraction(self):
        cluster = Cluster(machines=20, seed=0)
        injector = FailureInjector(cluster.sim)
        victims = injector.crash_fraction_at(
            cluster.machines, fraction=0.25, at_us=10.0, rng=RandomSource(5)
        )
        assert len(victims) == 5
        cluster.sim.run(until=20)
        assert sum(not m.alive for m in cluster.machines) == 5

    def test_corruption_injector_marks_pages(self):
        cluster = Cluster(machines=1, seed=0)
        machine = cluster.machine(0)
        slab = machine.allocate_slab(1 << 20)
        slab.map_to(1, 0, 0)
        for page in range(10):
            slab.pages[page] = PhantomSplit(version=1)
        injector = CorruptionInjector(cluster.sim, RandomSource(3))
        injector.corrupt_machine(machine, fraction=1.0)
        assert all(p.corrupt for p in slab.pages.values())
        assert injector.corrupted_splits == 10

    def test_memory_pressure_ramp(self):
        cluster = Cluster(machines=1, memory_per_machine=100 << 20, seed=0)
        sim = cluster.sim
        machine = cluster.machine(0)
        pressure = LocalMemoryPressure(sim, machine)
        pressure.ramp(target_bytes=50 << 20, over_us=1000.0, steps=10)
        sim.run(until=500)
        halfway = machine.local_app_bytes
        sim.run(until=2000)
        assert 0 < halfway < 50 << 20
        assert machine.local_app_bytes == 50 << 20
