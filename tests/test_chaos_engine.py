"""The chaos engine: determinism, soak invariants, and checker self-test."""

import json
import os

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosSchedule,
    run_chaos,
    sample_schedule,
    shrink_schedule,
    write_bundle,
)
from repro.sim import RandomSource


class TestScheduleSampling:
    def test_sampling_is_deterministic(self):
        a = sample_schedule(
            RandomSource(9, "s"), list(range(1, 12)), tolerance=2,
            horizon_us=5e6, events=10,
        )
        b = sample_schedule(
            RandomSource(9, "s"), list(range(1, 12)), tolerance=2,
            horizon_us=5e6, events=10,
        )
        assert a.to_json() == b.to_json()

    def test_roundtrips_through_json(self):
        schedule = sample_schedule(
            RandomSource(3, "s"), list(range(1, 10)), tolerance=2,
            horizon_us=4e6, events=8,
        )
        again = ChaosSchedule.from_json(schedule.to_json())
        assert again.to_json() == schedule.to_json()

    def test_never_exceeds_tolerance_budget(self):
        # At no instant may more than r machines sit in an unsafe window
        # (crash/outage: until recovery + slack; corrupt/pressure: per
        # the sampler's conservative occupancy rules).
        slack = 2_000_000.0
        for seed in range(12):
            schedule = sample_schedule(
                RandomSource(seed, "s"), list(range(1, 13)), tolerance=2,
                horizon_us=8e6, events=16, regen_slack_us=slack,
            )
            windows = []
            for event in schedule.events:
                if event.kind in ("crash", "outage", "pressure"):
                    for machine in event.machines:
                        windows.append(
                            (event.at_us, event.at_us + event.duration_us + slack)
                        )
                elif event.kind == "corrupt":
                    for machine in event.machines:
                        windows.append((event.at_us, schedule.horizon_us))
            for start, _end in windows:
                overlap = sum(
                    1 for (s, e) in windows if s <= start < e
                )
                assert overlap <= 2, f"seed {seed}: budget exceeded at {start}"

    def test_victims_are_explicit_and_exclude_client(self):
        schedule = sample_schedule(
            RandomSource(5, "s"), list(range(1, 12)), tolerance=2,
            horizon_us=6e6, events=12,
        )
        for event in schedule.events:
            assert 0 not in event.machines
            if event.kind in ("crash", "outage", "corrupt", "flow", "pressure"):
                assert event.machines

    def test_without_removes_events(self):
        schedule = sample_schedule(
            RandomSource(5, "s"), list(range(1, 12)), tolerance=2,
            horizon_us=6e6, events=10,
        )
        smaller = schedule.without([0, 2])
        assert len(smaller) == len(schedule) - 2


class TestChaosRuns:
    def test_same_seed_is_byte_identical(self):
        a = run_chaos(7, config=ChaosConfig.quick())
        b = run_chaos(7, config=ChaosConfig.quick())
        assert a.schedule.to_json() == b.schedule.to_json()
        assert a.report_json() == b.report_json()

    @pytest.mark.parametrize("seed", [2, 11, 23])
    def test_soak_invariants_hold_on_unmodified_system(self, seed):
        result = run_chaos(seed, config=ChaosConfig.quick())
        assert result.ok, "\n".join(v.detail for v in result.violations)
        assert result.report["workload"]["writes"] > 0
        assert result.report["workload"]["reads"] > 0
        # The checkers actually looked at something.
        counters = result.report["invariants"]["counters"]
        assert counters["writes_acked"] > 0
        assert counters["durability_checks"] > 0

    def test_replaying_a_schedule_reproduces_the_report(self):
        first = run_chaos(5, config=ChaosConfig.quick())
        again = run_chaos(
            5,
            config=ChaosConfig.quick(),
            schedule=ChaosSchedule.from_json(first.schedule.to_json()),
        )
        assert again.report_json() == first.report_json()


class TestCheckerSelfTest:
    def test_injected_parity_drop_is_caught_and_shrinks(self):
        # Plant a real durability bug (parity writes silently dropped):
        # the invariant checkers must catch it and the shrinker must
        # reduce the schedule to a handful of events.
        config = ChaosConfig.quick()
        result = run_chaos(7, config=config, inject_bug="drop_parity")
        assert not result.ok
        invariants = {v.invariant for v in result.violations}
        assert "durability" in invariants

        shrunk, failing, runs = shrink_schedule(
            7, result.schedule, config=config, inject_bug="drop_parity"
        )
        assert len(shrunk) <= 5
        assert not failing.ok
        assert runs >= 2

    def test_unknown_bug_name_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(1, config=ChaosConfig.quick(), inject_bug="nope")


class TestBundle:
    def test_bundle_has_schedule_report_and_readme(self, tmp_path):
        result = run_chaos(3, config=ChaosConfig.quick(), trace=True)
        files = write_bundle(result, str(tmp_path / "bundle"))
        names = sorted(os.path.basename(f) for f in files)
        assert "schedule.json" in names
        assert "report.json" in names
        assert "README.txt" in names
        assert "trace.json" in names
        report = json.loads((tmp_path / "bundle" / "report.json").read_text())
        assert report["ok"] is True
        replay = ChaosSchedule.from_json(
            (tmp_path / "bundle" / "schedule.json").read_text()
        )
        assert replay.to_json() == result.schedule.to_json()


class TestControlPlaneScenarios:
    def _scenario_config(self, scenario):
        return ChaosConfig(
            machines=10,
            pages=16,
            events=0,
            horizon_us=2_000_000.0,
            settle_us=4_000_000.0,
            op_gap_us=10_000.0,
            burst_ops=20,
            scenario=scenario,
        )

    def test_scenario_schedule_shapes(self):
        from repro.chaos import SCENARIOS, scenario_schedule

        for name in SCENARIOS:
            schedule = scenario_schedule(
                name, machines=10, horizon_us=2e6, burst_ops=20
            )
            assert len(schedule) >= 2
            kinds = [e.kind for e in schedule.events]
            assert "burst" in kinds
            if name != "rm_partition":
                assert "rm_crash" in kinds or "crash" in kinds
        with pytest.raises(ValueError):
            scenario_schedule("nope", machines=10, horizon_us=2e6, burst_ops=20)

    def test_rm_crash_scenario_fails_over_without_violations(self):
        result = run_chaos(3, config=self._scenario_config("rm_crash"))
        assert result.ok, "\n".join(v.detail for v in result.violations)
        control = result.report["control_plane"]
        assert control["replicas"] == 2  # auto-enabled for the scenario
        assert len(control["failovers"]) == 1
        assert control["failovers"][0]["domain"] == 0
        assert result.report["invariants"]["counters"].get("failovers") == 1

    def test_rm_partition_scenario_fences_the_stale_leader(self):
        result = run_chaos(3, config=self._scenario_config("rm_partition"))
        assert result.ok, "\n".join(v.detail for v in result.violations)
        store_0 = result.report["control_plane"]["stores"][0]
        assert store_0["fenced"]

    def test_rm_failover_scenario_reconstructs_while_degraded(self):
        result = run_chaos(3, config=self._scenario_config("rm_failover"))
        assert result.ok, "\n".join(v.detail for v in result.violations)
        control = result.report["control_plane"]
        assert len(control["failovers"]) == 1
        assert control["failovers"][0]["ranges"] >= 1

    def test_scenario_runs_are_byte_identical(self):
        a = run_chaos(5, config=self._scenario_config("rm_crash"))
        b = run_chaos(5, config=self._scenario_config("rm_crash"))
        assert a.report_json() == b.report_json()

    def test_default_runs_ship_no_control_plane_section(self):
        result = run_chaos(7, config=ChaosConfig.quick())
        assert "control_plane" not in result.report


class TestCliExitCodes:
    def test_replay_of_missing_bundle_exits_two(self, tmp_path, capsys):
        from repro.chaos.cli import main

        missing = str(tmp_path / "gone" / "schedule.json")
        assert main(["--replay", missing, "--quick"]) == 2
        out = capsys.readouterr().out
        assert "cannot replay" in out and "gone" in out

    def test_replay_of_truncated_bundle_exits_two(self, tmp_path, capsys):
        from repro.chaos.cli import main

        path = tmp_path / "schedule.json"
        path.write_text('{"horizon_us": 100.0, "events": [{"kind"')
        assert main(["--replay", str(path), "--quick"]) == 2
        assert "cannot replay" in capsys.readouterr().out

    def test_replay_of_wrong_schema_exits_two(self, tmp_path, capsys):
        from repro.chaos.cli import main

        path = tmp_path / "schedule.json"
        path.write_text('{"not_a_schedule": true}')
        assert main(["--replay", str(path), "--quick"]) == 2
        assert "cannot replay" in capsys.readouterr().out

    def test_scenario_with_replay_exits_two(self, tmp_path, capsys):
        from repro.chaos.cli import main

        path = tmp_path / "schedule.json"
        path.write_text('{"horizon_us": 100.0, "events": []}')
        assert (
            main(["--scenario", "rm_crash", "--replay", str(path), "--quick"])
            == 2
        )
        assert "incompatible" in capsys.readouterr().out
