"""The batch-coded ablation backend (the design §4 argues against)."""

import pytest

from repro.baselines import BaselineConfig, BatchCodedBackend
from repro.cluster import Cluster
from repro.net import NetworkConfig
from repro.sim import RandomSource

from .conftest import drive, make_page


def build(batch_pages=4, k=4, r=2, machines=14, timeout_us=30.0):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        seed=4,
    )
    backend = BatchCodedBackend(
        cluster, 0, BaselineConfig(slab_size_bytes=1 << 20),
        rng=RandomSource(4, "batch"),
        k=k, r=r, batch_pages=batch_pages, batch_timeout_us=timeout_us,
    )
    return cluster, backend


class TestBatchCoded:
    def test_roundtrip(self):
        cluster, backend = build()
        pages = {pid: make_page(pid) for pid in range(10)}

        def proc():
            for pid, data in pages.items():
                yield backend.write(pid, data)
            good = 0
            for pid, data in pages.items():
                good += (yield backend.read(pid)) == data
            return good

        assert drive(cluster.sim, proc()) == 10

    def test_concurrent_writes_share_a_stripe(self):
        cluster, backend = build(batch_pages=4)
        sim = cluster.sim

        def proc():
            writes = [backend.write(pid, make_page(pid)) for pid in range(4)]
            yield sim.all_of(writes)
            return backend.events["stripes_written"]

        assert drive(sim, proc()) == 1  # one stripe for the whole batch

    def test_batch_waiting_dominates_solo_writes(self):
        """A lone writer pays the flush timeout — §4's 'batch waiting'."""
        cluster, backend = build(batch_pages=8, timeout_us=40.0)
        sim = cluster.sim

        def proc():
            start = sim.now
            yield backend.write(0, make_page(0))
            return sim.now - start

        latency = drive(sim, proc())
        assert latency >= 40.0

    def test_update_goes_to_new_stripe_leaving_garbage(self):
        cluster, backend = build(batch_pages=1, timeout_us=1.0)

        def proc():
            yield backend.write(0, make_page(1))
            yield backend.write(0, make_page(2))
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(2)
        assert backend.events["garbage_pages"] == 1
        assert backend.events["stripes_written"] == 2

    def test_read_survives_r_failures(self):
        cluster, backend = build(batch_pages=2, timeout_us=1.0)

        def proc():
            yield backend.write(0, make_page(0))
            yield backend.write(1, make_page(1))
            stripe_handles = backend.groups[-1]
            for handle in stripe_handles[-2:]:  # kill two parity hosts
                cluster.machine(handle.machine_id).fail()
            yield cluster.sim.timeout(200)
            return (yield backend.read(0))

        assert drive(cluster.sim, proc()) == make_page(0)

    def test_read_moves_stripe_sized_bytes(self):
        """Reading one 4 KB page costs ~batch_pages x 4 KB of traffic."""
        def traffic(batch_pages):
            cluster, backend = build(batch_pages=batch_pages, timeout_us=1.0)

            def proc():
                yield backend.write(0, make_page(0))
                before = sum(m.nic.bytes_sent for m in cluster.machines)
                yield backend.read(0)
                return sum(m.nic.bytes_sent for m in cluster.machines) - before

            return drive(cluster.sim, proc())

        assert traffic(8) > 3 * traffic(1)

    def test_overhead_property(self):
        _, backend = build(k=8, r=2)
        assert backend.memory_overhead == 1.25

    def test_invalid_batch_pages(self):
        with pytest.raises(ValueError):
            build(batch_pages=0)

    def test_unwritten_page_reads_none(self):
        cluster, backend = build()

        def proc():
            return (yield backend.read(99))

        assert drive(cluster.sim, proc()) is None
