"""Matrix algebra over GF(2^8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ec.matrix import (
    SingularMatrixError,
    cauchy_parity_matrix,
    gf_mat_inverse,
    gf_matmul,
    systematic_generator,
)


class TestMatmul:
    def test_identity(self):
        identity = np.eye(4, dtype=np.uint8)
        matrix = np.arange(16, dtype=np.uint8).reshape(4, 4)
        assert np.array_equal(gf_matmul(identity, matrix), matrix)

    def test_shape_mismatch(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        b = np.zeros((4, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            gf_matmul(a, b)

    def test_needs_2d(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros(3, dtype=np.uint8), np.zeros((3, 1), dtype=np.uint8))

    @given(
        arrays(np.uint8, (3, 3)),
        arrays(np.uint8, (3, 3)),
        arrays(np.uint8, (3, 2)),
    )
    @settings(max_examples=30)
    def test_associativity(self, a, b, c):
        left = gf_matmul(gf_matmul(a, b), c)
        right = gf_matmul(a, gf_matmul(b, c))
        assert np.array_equal(left, right)


class TestInverse:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_inverse_roundtrip_on_cauchy_squares(self, seed):
        # Square submatrices of the systematic generator are the exact
        # matrices decode inverts; they are always invertible.
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 8))
        r = int(rng.integers(1, 5))
        generator = systematic_generator(k, r)
        rows = rng.choice(k + r, size=k, replace=False)
        square = generator[np.sort(rows)]
        inverse = gf_mat_inverse(square)
        assert np.array_equal(gf_matmul(inverse, square), np.eye(k, dtype=np.uint8))
        assert np.array_equal(gf_matmul(square, inverse), np.eye(k, dtype=np.uint8))

    def test_singular_rejected(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            gf_mat_inverse(singular)

    def test_zero_matrix_rejected(self):
        with pytest.raises(SingularMatrixError):
            gf_mat_inverse(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            gf_mat_inverse(np.zeros((2, 3), dtype=np.uint8))

    def test_identity_is_self_inverse(self):
        identity = np.eye(5, dtype=np.uint8)
        assert np.array_equal(gf_mat_inverse(identity), identity)


class TestGeneratorConstruction:
    def test_systematic_top_is_identity(self):
        generator = systematic_generator(4, 2)
        assert np.array_equal(generator[:4], np.eye(4, dtype=np.uint8))

    def test_cauchy_entries_nonzero(self):
        block = cauchy_parity_matrix(8, 3)
        assert (block != 0).all()

    def test_every_k_subset_invertible(self):
        """The MDS property: any k rows of the generator decode."""
        from itertools import combinations

        k, r = 4, 3
        generator = systematic_generator(k, r)
        for rows in combinations(range(k + r), k):
            gf_mat_inverse(generator[list(rows)])  # must not raise

    def test_r_zero_gives_identity_only(self):
        generator = systematic_generator(5, 0)
        assert generator.shape == (5, 5)

    def test_too_large_field_rejected(self):
        with pytest.raises(ValueError):
            cauchy_parity_matrix(200, 100)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            cauchy_parity_matrix(0, 1)
