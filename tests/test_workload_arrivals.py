"""Statistical property tests for the arrival processes.

Each process is checked against its analytic law at 20 fixed seeds
(property-test style, like ``test_ec_properties.py``):

* Poisson — inter-arrival gaps pass a Kolmogorov-Smirnov test against
  the exponential CDF at the offered rate;
* diurnal — the generated arrival count lands inside a CI around the
  rate integral ∫λ(t)dt, and the "day" half of each cycle really does
  carry more traffic than the "night" half;
* bursty (MMPP) — the realized burst duty cycle matches the stationary
  value, and the per-state arrival rates match their multipliers.

All draws come from seeded :class:`~repro.sim.RandomSource` streams, so
these are deterministic regressions, not flaky statistics: the
thresholds were chosen with margin over the observed worst case across
the seed set.
"""

import math

import pytest

from repro.sim import RandomSource
from repro.workloads import (
    ARRIVAL_KINDS,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrivals,
)

SEEDS = range(20)


def _ks_statistic_exponential(gaps, mean):
    """Two-sided KS distance between the empirical CDF of ``gaps`` and
    Exponential(mean)."""
    ordered = sorted(gaps)
    n = len(ordered)
    worst = 0.0
    for i, gap in enumerate(ordered):
        cdf = 1.0 - math.exp(-gap / mean)
        worst = max(worst, abs((i + 1) / n - cdf), abs(cdf - i / n))
    return worst


@pytest.mark.parametrize("seed", SEEDS)
def test_poisson_gaps_are_exponential(seed):
    rate_per_sec = 10_000.0
    process = PoissonArrivals(
        RandomSource(seed, "arrivals/poisson"), rate_per_sec
    )
    n = 2_000
    gaps = [process.next_gap() for _ in range(n)]
    assert all(gap > 0 for gap in gaps)
    # Mean gap = 1/λ = 100 us at 10k/s.
    statistic = _ks_statistic_exponential(gaps, 1e6 / rate_per_sec)
    # 1.63/sqrt(n) is the α=0.01 asymptotic critical value; the worst
    # observed value across the seed set is well under it.
    assert statistic < 1.63 / math.sqrt(n)


@pytest.mark.parametrize("seed", SEEDS)
def test_diurnal_count_matches_rate_integral(seed):
    process = DiurnalArrivals(
        RandomSource(seed, "arrivals/diurnal"), rate_per_sec=20_000.0,
        amplitude=0.6, period_us=100_000.0,
    )
    duration_us = 1_000_000.0  # ten full "days"
    times = process.arrival_times(duration_us)
    expected = process.expected_count(0.0, duration_us)
    assert expected == pytest.approx(20_000.0 * duration_us / 1e6, rel=1e-6)
    # Poisson count: sd = sqrt(m); 4 sigma leaves no room for flakes at
    # fixed seeds while still catching a rate integral that is off.
    assert abs(len(times) - expected) < 4.0 * math.sqrt(expected)

    # The modulation must be visible, not just the average: the rising
    # half of each sine cycle (λ > rate) must carry more arrivals than
    # the falling half (λ < rate).
    period = process.period_us
    day = sum(1 for t in times if (t % period) < period / 2)
    night = len(times) - day
    assert day > night * 1.5


@pytest.mark.parametrize("seed", SEEDS)
def test_mmpp_duty_cycle_and_state_rates(seed):
    rate_per_sec = 10_000.0
    process = MMPPArrivals(
        RandomSource(seed, "arrivals/bursty"), rate_per_sec
    )
    # Defaults: 2 ms bursts at 4x rate, 8 ms idle at 0.25x -> the
    # long-run mean rate equals the nominal rate exactly.
    assert process.duty_cycle == pytest.approx(0.2)
    assert process.mean_rate_per_us() == pytest.approx(process.rate_per_us)

    duration_us = 2_000_000.0  # ~200 burst/idle cycles
    process.arrival_times(duration_us)

    observed_time = process.time_in_burst_us + process.time_in_idle_us
    assert observed_time > 0.9 * duration_us
    duty = process.time_in_burst_us / observed_time
    # Across 20 seeds the realized duty cycle stays within ~0.05 of the
    # stationary 0.2 (sd of ~200 exponential cycles).
    assert abs(duty - process.duty_cycle) < 0.06

    burst_rate = process.burst_arrivals / process.time_in_burst_us
    idle_rate = process.idle_arrivals / process.time_in_idle_us
    assert burst_rate == pytest.approx(process.burst_rate_per_us, rel=0.15)
    assert idle_rate == pytest.approx(process.idle_rate_per_us, rel=0.15)
    # The defining contrast: bursts are an order denser than idle.
    assert burst_rate > 10 * idle_rate


def test_expected_count_closed_forms():
    rng = RandomSource(0, "arrivals/forms")
    poisson = PoissonArrivals(rng.child("p"), 5_000.0)
    assert poisson.expected_count(0.0, 200_000.0) == pytest.approx(1_000.0)

    diurnal = DiurnalArrivals(
        rng.child("d"), 5_000.0, amplitude=0.5, period_us=50_000.0
    )
    # Whole periods: the sine integrates to zero.
    assert diurnal.expected_count(0.0, 100_000.0) == pytest.approx(500.0)
    # Half a period starting at the trough-to-peak rise: above average.
    assert diurnal.expected_count(0.0, 25_000.0) > 5_000.0 / 1e6 * 25_000.0


def test_make_arrivals_dispatch():
    rng = RandomSource(3, "arrivals/make")
    for kind in ARRIVAL_KINDS:
        process = make_arrivals(kind, rng.child(kind), 1_000.0)
        assert process.kind == kind
        assert process.next_gap() > 0
    custom = make_arrivals("diurnal", rng.child("custom"), 1_000.0,
                           period_us=12_345.0)
    assert custom.period_us == 12_345.0
    with pytest.raises(ValueError):
        make_arrivals("weibull", rng, 1_000.0)
    with pytest.raises(ValueError):
        PoissonArrivals(rng, 0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(rng, 1_000.0, amplitude=1.5)
    with pytest.raises(ValueError):
        MMPPArrivals(rng, 1_000.0, burst_multiplier=0.2, idle_multiplier=0.5)
