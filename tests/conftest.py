"""Shared fixtures and helpers for the test suite.

``make_page`` and ``drive`` live in :mod:`repro.harness.fixtures` (one
definition shared with ``benchmarks/conftest.py``); they are re-exported
here so tests keep importing them from ``.conftest``.
"""

import pytest

from repro.harness.fixtures import drive, make_page  # noqa: F401  (re-export)
from repro.sim import Simulator


@pytest.fixture
def sim():
    """A fresh simulator per test."""
    return Simulator()
