"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest

from repro.sim import Simulator


@pytest.fixture
def sim():
    """A fresh simulator per test."""
    return Simulator()


def make_page(page_id: int = 0, size: int = 4096) -> bytes:
    """Deterministic pseudo-random page content."""
    rng = np.random.default_rng((1234, page_id))
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


def drive(sim, generator, until=None, name="test-driver"):
    """Run a generator as a process to completion and return its value."""
    process = sim.process(generator, name=name)
    sim.run_until_triggered(process, until=until)
    assert process.triggered, f"{name} did not finish by t={sim.now}"
    return process.value
