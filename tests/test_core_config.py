"""HydraConfig / DatapathConfig validation and derived quantities."""

import pytest

from repro.core import DatapathConfig, HydraConfig
from repro.core.datapath import (
    completion_overhead_us,
    decode_latency_us,
    encode_latency_us,
    issue_overhead_us,
)


class TestHydraConfig:
    def test_paper_defaults(self):
        config = HydraConfig()
        assert (config.k, config.r, config.delta) == (8, 2, 1)
        assert config.memory_overhead == 1.25
        assert config.split_size == 512
        assert config.slab_size_bytes == 1 << 30
        assert config.headroom_fraction == 0.25

    def test_fanouts(self):
        config = HydraConfig(k=8, r=2, delta=1)
        assert config.read_fanout() == 9  # k + delta
        assert config.correction_fanout() == 10  # k + 2d + 1 = 11, capped at n

    def test_fanout_without_late_binding(self):
        config = HydraConfig(datapath=DatapathConfig(late_binding=False))
        assert config.read_fanout() == config.k

    def test_pages_per_range(self):
        config = HydraConfig(k=4, r=2, slab_size_bytes=1 << 20, page_size=4096)
        assert config.pages_per_range == (1 << 20) // 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            HydraConfig(k=0)
        with pytest.raises(ValueError):
            HydraConfig(r=-1)
        with pytest.raises(ValueError):
            HydraConfig(delta=3, r=2)  # delta cannot exceed r
        with pytest.raises(ValueError):
            HydraConfig(payload_mode="imaginary")
        with pytest.raises(ValueError):
            HydraConfig(headroom_fraction=1.5)

    def test_split_size_rounds_up(self):
        config = HydraConfig(k=3, r=1, page_size=100)
        assert config.split_size == 34


class TestDatapathCosts:
    def test_all_off_toggles(self):
        off = DatapathConfig().all_off()
        assert not off.run_to_completion
        assert not off.in_place_coding
        assert not off.late_binding
        assert not off.async_encoding

    def test_issue_overhead_in_place_vs_copies(self):
        on = DatapathConfig()
        off = on.all_off()
        base = on.request_setup_us + 10 * on.post_per_split_us
        assert issue_overhead_us(on, 10) == pytest.approx(base)
        assert issue_overhead_us(off, 10) == pytest.approx(
            base + off.buffer_alloc_us + 10 * off.copy_per_split_us
        )

    def test_issue_overhead_scales_with_splits(self):
        on = DatapathConfig()
        assert issue_overhead_us(on, 17) > issue_overhead_us(on, 3)

    def test_issue_overhead_validates(self):
        with pytest.raises(ValueError):
            issue_overhead_us(DatapathConfig(), 0)

    def test_completion_overhead_run_to_completion_free(self):
        on = DatapathConfig()
        assert completion_overhead_us(on, 8) == 0.0

    def test_completion_overhead_context_switches(self):
        off = DatapathConfig().all_off()
        # 8 completions, batches of 4 -> 2 wakeups.
        assert completion_overhead_us(off, 8) == pytest.approx(
            2 * off.context_switch_us
        )
        assert completion_overhead_us(off, 0) == 0.0

    def test_coding_latency_scales(self):
        base = HydraConfig(k=8, r=2)
        assert encode_latency_us(base) == pytest.approx(0.7)
        assert decode_latency_us(base) == pytest.approx(1.5)
        double_parity = HydraConfig(k=8, r=4, delta=1)
        assert encode_latency_us(double_parity) == pytest.approx(1.4)
        no_parity = HydraConfig(k=8, r=0, delta=0)
        assert encode_latency_us(no_parity) == 0.0
