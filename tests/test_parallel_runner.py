"""Unit tests for the deterministic process-pool runner (repro.parallel).

The crash-path tests must run with ``jobs >= 2`` (or
``serial_in_process=False``): a shard that calls ``os._exit`` in the
in-process serial path would take pytest down with it.
"""

import os
import time

import pytest

from repro.obs import MetricsRegistry
from repro.parallel import (
    ShardFailure,
    ShardTask,
    require_ok,
    resolve_jobs,
    run_shards,
)


# Shard functions must be top-level (picklable under any start method).
def _square(x):
    return x * x


def _sleepy_square(x, delay):
    time.sleep(delay)
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _crash_once(marker_path, x):
    """Die without reporting on the first attempt, succeed on the second."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("attempted")
        os._exit(17)
    return x + 100


def _crash_always(x):
    os._exit(23)


def _tasks(fn, values, **kwargs):
    return [
        ShardTask(key=(v,), fn=fn, args=(v,), label=f"t{v}", **kwargs)
        for v in values
    ]


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs("3") == 3

    def test_auto_is_core_count(self):
        auto = resolve_jobs("auto")
        assert auto >= 1
        assert resolve_jobs(None) == auto
        assert resolve_jobs(0) == auto

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestSerial:
    def test_values_in_key_order(self):
        results = run_shards(_tasks(_square, [3, 1, 2]), jobs=1)
        assert [r.key for r in results] == [(1,), (2,), (3,)]
        assert [r.value for r in results] == [1, 4, 9]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_exception_recorded_not_raised(self):
        results = run_shards(_tasks(_boom, [5]), jobs=1)
        assert not results[0].ok
        assert "boom 5" in results[0].error
        assert "boom 5" in results[0].failure_summary()

    def test_duplicate_keys_rejected(self):
        tasks = _tasks(_square, [1]) + _tasks(_square, [1])
        with pytest.raises(ValueError, match="unique"):
            run_shards(tasks, jobs=1)


class TestParallel:
    def test_matches_serial_values(self):
        tasks = _tasks(_square, list(range(7)))
        serial = run_shards(tasks, jobs=1)
        parallel = run_shards(tasks, jobs=3)
        assert [r.value for r in parallel] == [r.value for r in serial]
        assert [r.key for r in parallel] == [r.key for r in serial]

    def test_merge_order_is_key_order_not_completion_order(self):
        # Key (1,) sleeps longest so it completes *last*; it must still
        # come back first.
        tasks = [
            ShardTask(key=(1,), fn=_sleepy_square, args=(1, 0.4), label="slow"),
            ShardTask(key=(2,), fn=_sleepy_square, args=(2, 0.0), label="fast"),
            ShardTask(key=(3,), fn=_sleepy_square, args=(3, 0.0), label="fast2"),
        ]
        results = run_shards(tasks, jobs=3)
        assert [r.key for r in results] == [(1,), (2,), (3,)]
        assert [r.value for r in results] == [1, 4, 9]

    def test_exception_fails_immediately_without_retry(self):
        metrics = MetricsRegistry()
        tasks = _tasks(_square, [1]) + _tasks(_boom, [9])
        results = run_shards(tasks, jobs=2, max_retries=3, metrics=metrics)
        by_key = {r.key: r for r in results}
        assert by_key[(1,)].ok and by_key[(1,)].value == 1
        failed = by_key[(9,)]
        assert not failed.ok and not failed.crashed
        assert failed.attempts == 1  # deterministic failure: no retry
        assert "boom 9" in failed.error
        snap = metrics.snapshot()
        assert snap["parallel.shards_done"] == 1
        assert snap["parallel.shards_failed"] == 1
        assert snap["parallel.worker_retries"] == 0

    def test_worker_crash_retried_on_fresh_worker(self, tmp_path):
        marker = str(tmp_path / "crash-once-marker")
        metrics = MetricsRegistry()
        lines = []
        task = ShardTask(
            key=(0,), fn=_crash_once, args=(marker, 1), label="flaky"
        )
        results = run_shards(
            [task], jobs=2, metrics=metrics, progress=lines.append
        )
        assert results[0].ok
        assert results[0].value == 101
        assert results[0].attempts == 2
        assert metrics.snapshot()["parallel.worker_retries"] == 1
        assert any("crashed" in line and "retrying" in line for line in lines)

    def test_crash_exhausts_retries(self):
        metrics = MetricsRegistry()
        results = run_shards(
            _tasks(_crash_always, [1]), jobs=2, max_retries=1, metrics=metrics
        )
        result = results[0]
        assert not result.ok
        assert result.crashed
        assert result.exitcode == 23
        assert result.attempts == 2  # first try + one retry
        assert "crashed" in result.failure_summary()
        assert metrics.snapshot()["parallel.worker_retries"] == 1

    def test_serial_in_process_false_uses_workers_at_jobs_1(self):
        # Same crash semantics as jobs >= 2 — the calling process survives.
        results = run_shards(
            _tasks(_crash_always, [1]),
            jobs=1,
            max_retries=0,
            serial_in_process=False,
        )
        assert results[0].crashed


class TestProgressAndRequireOk:
    def test_progress_lines_and_counters(self):
        metrics = MetricsRegistry()
        lines = []
        run_shards(
            _tasks(_square, [1, 2, 3]),
            jobs=1,
            metrics=metrics,
            progress=lines.append,
            name="demo",
        )
        assert len(lines) == 3
        assert lines[-1].startswith("[demo 3/3]")
        assert "done=3 failed=0" in lines[-1]
        snap = metrics.snapshot()
        assert snap["demo.shards_done"] == 3
        assert snap["demo.shards_failed"] == 0

    def test_require_ok_passes_through_success(self):
        results = run_shards(_tasks(_square, [1, 2]), jobs=1)
        assert require_ok(results, "demo") == results

    def test_require_ok_raises_listing_failures(self):
        results = run_shards(_tasks(_boom, [1, 2]) + _tasks(_square, [3]), jobs=1)
        with pytest.raises(ShardFailure, match="2/3 demo shards failed"):
            require_ok(results, "demo")
        try:
            require_ok(results, "demo")
        except ShardFailure as exc:
            assert len(exc.results) == 3
