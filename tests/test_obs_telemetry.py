"""Telemetry subsystem: HDR histograms, sampler, SLO health, flight ring.

The load-bearing properties:

* **Histogram determinism** — percentiles come from bucket upper bounds,
  so merging shard histograms in any order reproduces the serial
  buckets and percentiles byte for byte (the ``-j N`` contract);
* **Outcome neutrality** — enabling the sampler + health monitor on a
  seeded run adds telemetry without changing a single simulated
  outcome (``repro top --once`` is byte-identical run to run);
* **Black-box capture** — the flight ring is bounded, and the chaos
  bundle ships it exactly when an invariant or SLO went wrong.
"""

import json
import math

import pytest

from repro.chaos import ChaosConfig, run_chaos, write_bundle
from repro.harness import build_hydra_cluster
from repro.obs import (
    FlightRecorder,
    HealthMonitor,
    Histogram,
    MetricsRegistry,
    SloRule,
    counter_events,
    default_slo_rules,
    prometheus_text,
)
from repro.obs.top import fixture_config, render_dashboard
from repro.parallel import merge_histogram_dicts
from repro.sim.trace import LatencyRecorder

from .conftest import drive, make_page


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_basic_stats_and_percentiles(self):
        hist = Histogram("lat")
        for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
            hist.record(v)
        assert hist.count == 5
        assert hist.min == 1.0 and hist.max == 100.0
        assert hist.mean == pytest.approx(22.0)
        # Bucketed percentiles land within one sub-bucket (~1.6%) of the
        # exact rank statistic.
        assert hist.percentile(50) == pytest.approx(3.0, rel=0.05)
        assert hist.percentile(99) == pytest.approx(100.0, rel=0.05)

    def test_zero_and_negative(self):
        hist = Histogram("z")
        hist.record(0.0)
        hist.record(0.0)
        hist.record(5.0)
        assert hist.zero == 2
        assert hist.percentile(50) == 0.0
        with pytest.raises(ValueError, match="negative"):
            hist.record(-1.0)

    def test_percentile_of_empty_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            Histogram("e").percentile(50)

    def test_merge_order_independent(self):
        import numpy as np

        rng = np.random.default_rng(7)
        values = rng.exponential(50.0, 3000)
        serial = Histogram("all")
        shards = [Histogram(f"s{i}") for i in range(4)]
        for i, v in enumerate(values):
            serial.record(float(v))
            shards[i % 4].record(float(v))
        forward = Histogram("f")
        for shard in shards:
            forward.merge(shard)
        backward = Histogram("b")
        for shard in reversed(shards):
            backward.merge(shard)
        assert forward.buckets == serial.buckets == backward.buckets
        assert forward.zero == serial.zero
        for pct in (50, 90, 99, 99.9):
            assert forward.percentile(pct) == serial.percentile(pct)
            assert backward.percentile(pct) == serial.percentile(pct)

    def test_merge_resolution_mismatch_raises(self):
        with pytest.raises(ValueError, match="resolutions"):
            Histogram("a", subbuckets=32).merge(Histogram("b", subbuckets=16))

    def test_dict_round_trip_and_helper(self):
        hist = Histogram("rt")
        for v in [0.0, 1.5, 3.0, 1e6]:
            hist.record(v)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.buckets == hist.buckets
        assert clone.to_dict() == hist.to_dict()
        merged = merge_histogram_dicts([hist.to_dict(), hist.to_dict()])
        assert merged.count == 2 * hist.count
        assert merged.percentile(50) == hist.percentile(50)
        with pytest.raises(ValueError, match="at least one"):
            merge_histogram_dicts([])

    def test_bucket_bounds_bracket_every_value(self):
        hist = Histogram("bounds", subbuckets=32)
        for exp in range(-8, 24):
            value = math.ldexp(0.7, exp)
            index = hist._index(value)
            assert hist.bucket_lower(index) <= value <= hist.bucket_upper(index)


class TestLatencyRecorderBacking:
    def test_small_runs_stay_exact(self):
        recorder = LatencyRecorder("r")
        for v in [10.0, 20.0, 30.0]:
            recorder.record(v)
        assert recorder.exact
        assert recorder.p50 == pytest.approx(20.0)

    def test_overflow_switches_to_histogram(self):
        recorder = LatencyRecorder("big", reservoir_limit=100)
        for i in range(1000):
            recorder.record(float(i % 97) + 1.0)
        assert not recorder.exact
        assert len(recorder.samples) == 100  # bounded storage
        assert recorder.hist.count == 1000
        # Histogram percentile within one bucket of the true median (~49).
        assert recorder.p50 == pytest.approx(49.0, rel=0.05)
        assert recorder.max == 97.0  # max is tracked exactly


# ---------------------------------------------------------------------------
# FlightRecorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_overwrites_and_counts_drops(self):
        flight = FlightRecorder(capacity=3)
        for i in range(5):
            flight.note("tick", float(i), n=i)
        assert len(flight) == 3
        assert flight.total == 5
        assert flight.dropped == 2
        assert [r["n"] for r in flight.records()] == [2, 3, 4]

    def test_kind_filter_and_clear(self):
        flight = FlightRecorder()
        flight.note("a", 1.0)
        flight.note("b", 2.0)
        assert [r["kind"] for r in flight.records("b")] == ["b"]
        payload = flight.to_dict()
        assert payload["total"] == 2 and payload["dropped"] == 0
        flight.clear()
        assert len(flight) == 0 and flight.total == 0


# ---------------------------------------------------------------------------
# ClusterSampler + HealthMonitor on a live cluster
# ---------------------------------------------------------------------------


def _monitored_cluster(ops=40, period_us=100.0):
    hydra = build_hydra_cluster(machines=10, k=4, r=2, delta=1, seed=5)
    rm = hydra.remote_memory(0)
    sampler = hydra.cluster.obs.enable_monitoring(
        hydra.cluster, rms=[rm], period_us=period_us
    )

    def workload():
        for i in range(ops):
            pid = i % 8
            yield rm.write(pid, make_page(pid))
            yield rm.read(pid)

    drive(hydra.sim, workload())
    return hydra, rm, sampler


class TestClusterSampler:
    def test_frames_have_gauges_rates_and_latency(self):
        hydra, rm, sampler = _monitored_cluster()
        assert sampler.frames > 0
        frame = sampler.sample()  # snapshot after the workload finished
        assert set(frame["machines"]) == {m.id for m in hydra.cluster.machines}
        row = frame["machines"][0]
        assert 0.0 <= row["free_frac"] <= 1.0
        assert row["alive"] is True
        assert frame["read"]["count"] == 40
        assert frame["read"]["p50_us"] > 0
        assert frame["open_regens"] == 0
        assert frame["healing_backlog"] == 0
        # Rates observed at least once while the workload ran.
        registry = hydra.cluster.obs.metrics
        series = registry.get("sample.machine.0.free_frac")
        assert len(series.values) == sampler.frames

    def test_enable_monitoring_is_idempotent(self):
        hydra, _rm, sampler = _monitored_cluster(ops=4)
        again = hydra.cluster.obs.enable_monitoring(hydra.cluster)
        assert again is sampler

    def test_sampler_never_perturbs_outcomes(self):
        """The outcome-neutrality contract: same seed, with and without
        telemetry, produces identical simulated results."""

        def run(monitored):
            hydra = build_hydra_cluster(machines=10, k=4, r=2, delta=1, seed=9)
            rm = hydra.remote_memory(0)
            if monitored:
                hydra.cluster.obs.enable_monitoring(
                    hydra.cluster, rms=[rm], period_us=50.0
                )

            def workload():
                data = []
                for i in range(30):
                    pid = i % 6
                    yield rm.write(pid, make_page(pid))
                    data.append((yield rm.read(pid)))
                return data

            result = drive(hydra.sim, workload())
            return result, hydra.sim.now, dict(rm.events.counts)

        bare = run(False)
        monitored = run(True)
        assert monitored == bare

    def test_window_percentiles_reset_each_period(self):
        hydra, rm, sampler = _monitored_cluster(ops=40, period_us=100.0)
        # The first post-run frame drains the tail of the workload; the
        # next window is idle and must carry no samples.
        sampler.sample()
        frame = sampler.sample()
        assert frame["read"]["window_count"] == 0
        assert "window_p99_us" not in frame["read"]
        assert frame["read"]["count"] == 40  # cumulative side still full


class TestHealthMonitor:
    def _frame(self, p99=None, regens=0, machines=None, at_us=1000.0):
        frame = {
            "at_us": at_us,
            "machines": machines or {0: {"alive": True, "free_frac": 0.5}},
            "rates": {},
            "open_regens": regens,
            "healing_backlog": 0,
        }
        if p99 is not None:
            frame["read"] = {"window_p99_us": p99}
        return frame

    def test_transitions_fire_only_on_state_change(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor(registry=registry)
        monitor.observe(self._frame(p99=100.0))
        assert monitor.transitions == [] and not monitor.breached
        monitor.observe(self._frame(p99=50_000.0, at_us=2000.0))
        monitor.observe(self._frame(p99=60_000.0, at_us=3000.0))  # still bad
        assert len(monitor.transitions) == 1
        assert monitor.breached and monitor.ever_breached
        assert registry.counter("health.breaches.read_p99").value == 1
        monitor.observe(self._frame(p99=10.0, at_us=4000.0))
        assert not monitor.breached
        assert [t["to"] for t in monitor.transitions] == ["breach", "ok"]
        assert monitor.breach_counts() == {"read_p99": 1}

    def test_missing_value_keeps_previous_state(self):
        monitor = HealthMonitor()
        monitor.observe(self._frame(p99=50_000.0))
        monitor.observe(self._frame(p99=None, at_us=2000.0))  # no window data
        assert monitor.breached  # breach state persists until data says ok

    def test_machine_scope_and_state_rollup(self):
        monitor = HealthMonitor()
        machines = {
            0: {"alive": True, "free_frac": 0.5},
            1: {"alive": True, "free_frac": 0.01},  # below watermark
            2: {"alive": False, "free_frac": 0.0},  # dead: rule skipped
        }
        monitor.observe(self._frame(machines=machines))
        assert monitor.machine_state(1) == "breach"
        assert monitor.machine_state(0) == "ok"
        assert monitor.machine_state(2) == "ok"
        report = monitor.report()
        assert report["currently_breached"] == ["free_slab_watermark@1"]
        assert report["frames_evaluated"] == 1

    def test_duplicate_rule_names_rejected(self):
        rule = default_slo_rules()[0]
        with pytest.raises(ValueError, match="duplicate"):
            HealthMonitor([rule, rule])

    def test_custom_rule_floor_semantics(self):
        rule = SloRule(
            name="floor",
            description="resource must stay high",
            threshold=10.0,
            value=lambda frame: frame.get("open_regens"),
            op=">=",
        )
        assert rule.healthy(10.0) and not rule.healthy(9.0)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_prometheus_text_families(self):
        hydra, rm, _sampler = _monitored_cluster()
        registry = hydra.cluster.obs.metrics
        hist = registry.histogram("custom.lat_us")
        hist.record(12.0)
        hist.record(700.0)
        text = prometheus_text(registry)
        assert "# TYPE repro_counter_total counter" in text
        assert 'repro_latency_us{name="rm.0.read",quantile="0.99"}' in text
        assert 'repro_histogram_bucket{name="custom.lat_us",le="+Inf"} 2' in text
        assert 'repro_histogram_count{name="custom.lat_us"} 2' in text
        assert "repro_gauge" in text
        # Every line is either a comment or `name{labels} value`.
        for line in text.strip().split("\n"):
            assert line.startswith("#") or " " in line

    def test_counter_events_make_perfetto_tracks(self):
        hydra, _rm, sampler = _monitored_cluster()
        events = counter_events(hydra.cluster.obs.metrics)
        assert events, "sampler series should export counter tracks"
        machine_events = [e for e in events if e["pid"] == 0]
        assert machine_events
        sample = machine_events[0]
        assert sample["ph"] == "C"
        assert json.dumps(events)  # JSON-serializable end to end


# ---------------------------------------------------------------------------
# repro top + chaos integration
# ---------------------------------------------------------------------------


class TestTopAndBundles:
    def test_dashboard_is_deterministic(self):
        config = fixture_config(machines=12)
        first = render_dashboard(run_chaos(0, config=config), 0)
        second = render_dashboard(run_chaos(0, config=config), 0)
        assert first == second
        assert "repro top — seed 0, 12 machines" in first
        assert "free_history" in first

    def test_chaos_report_ships_health_and_latency(self):
        result = run_chaos(1, config=ChaosConfig.quick())
        health = result.report["health"]
        assert health["frames_evaluated"] > 0
        assert {rule["name"] for rule in health["rules"]} >= {
            "read_p99", "regen_backlog", "healing_lag", "free_slab_watermark",
        }
        latency = result.report["latency"]
        assert latency["read"]["count"] > 0
        assert json.loads(result.report_json())  # stays canonical JSON

    def test_bundle_dumps_flight_ring_on_violation(self, tmp_path):
        violating = run_chaos(
            2, config=ChaosConfig.quick(), inject_bug="drop_parity"
        )
        assert not violating.ok
        written = write_bundle(violating, str(tmp_path / "bundle"))
        names = {p.split("/")[-1] for p in written}
        assert "flight.json" in names
        payload = json.loads((tmp_path / "bundle" / "flight.json").read_text())
        kinds = {record["kind"] for record in payload["records"]}
        assert "violation" in kinds
        assert "sample" in kinds

    def test_bundle_omits_flight_ring_when_healthy(self, tmp_path):
        healthy = run_chaos(0, config=ChaosConfig.quick())
        assert healthy.ok and not healthy.report["health"]["breaches"]
        written = write_bundle(healthy, str(tmp_path / "bundle"))
        assert not any(p.endswith("flight.json") for p in written)
