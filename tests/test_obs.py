"""Observability layer: tracer, metrics registry, exporters, datapath spans.

The load-bearing property under test is *tiling*: a request's PhaseClock
phases must sum exactly to its end-to-end span, so the span-derived
Fig 11-style breakdown agrees with the latency recorders it replaces.
"""

import json

import pytest

from repro.harness import build_hydra_cluster, span_phase_breakdown
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    read_jsonl,
    write_jsonl,
)
from repro.sim import RandomSource, Simulator

from .conftest import drive, make_page


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self, sim):
        registry = MetricsRegistry()
        counter = registry.counter("nic.0.bytes_tx")
        assert registry.counter("nic.0.bytes_tx") is counter

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("rm.0.read")
        with pytest.raises(ValueError, match="rm.0.read"):
            registry.latency("rm.0.read")

    def test_counter_group_preserves_bag_api(self):
        registry = MetricsRegistry()
        events = registry.counter_group("rm.0.events")
        events.incr("writes")
        events.incr("writes", 2)
        assert events["writes"] == 3
        assert events["never_touched"] == 0
        assert dict(events.counts)["writes"] == 3
        # Group members live in the shared namespace.
        assert registry.counter("rm.0.events.writes").value == 3

    def test_snapshot_covers_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a.ops").incr(5)
        recorder = registry.latency("a.lat")
        recorder.record(10.0)
        recorder.record(20.0)
        snap = registry.snapshot()
        assert snap["a.ops"] == 5
        assert snap["a.lat"]["count"] == 2
        assert snap["a.lat"]["p50"] == pytest.approx(15.0)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_returns_none_and_records_nothing(self, sim):
        tracer = Tracer(sim, sample_every=0)
        assert tracer.start_trace("rm.read") is None
        assert tracer.start_span("rm.regen") is None
        assert tracer.phases(None).mark("anything") is None
        assert tracer.finished_spans() == []

    def test_span_tree_shares_trace_id(self, sim):
        tracer = Tracer(sim)
        root = tracer.start_trace("rm.read", machine_id=3)
        child = root.child("rdma.read", cat="verb")
        assert child.trace_id == root.trace_id == root.span_id
        assert child.parent_id == root.span_id
        assert child.machine_id == 3  # inherited
        child.finish()
        root.finish()
        assert [s.name for s in tracer.finished_spans()] == ["rdma.read", "rm.read"]

    def test_finish_is_idempotent(self, sim):
        tracer = Tracer(sim)
        span = tracer.start_trace("rm.write")
        span.finish()
        end = span.end_us
        span.finish()
        assert span.end_us == end
        assert len(tracer.finished_spans()) == 1

    def test_interleaved_processes_keep_parenting_straight(self, sim):
        """Two concurrent request processes must not cross span trees."""
        tracer = Tracer(sim)

        def request(name, delay):
            span = tracer.start_trace(name)
            phases = tracer.phases(span)
            yield sim.timeout(delay)
            phases.mark("first")
            yield sim.timeout(delay)
            phases.mark("second")
            span.finish()

        a = sim.process(request("req.a", 3.0), name="a")
        b = sim.process(request("req.b", 5.0), name="b")
        sim.run_until_triggered(a)
        sim.run_until_triggered(b)

        spans = tracer.finished_spans()
        roots = {s.name: s for s in spans if s.parent_id is None}
        for name, delay in (("req.a", 3.0), ("req.b", 5.0)):
            root = roots[name]
            phases = [s for s in spans if s.parent_id == root.span_id]
            assert [p.name for p in phases] == ["first", "second"]
            for phase in phases:
                assert phase.trace_id == root.trace_id
                assert phase.duration_us == pytest.approx(delay)
            # Tiling: phases cover the root exactly.
            assert sum(p.duration_us for p in phases) == pytest.approx(
                root.duration_us
            )

    def test_sampling_is_deterministic_under_seed(self, sim):
        def sampled_indices(seed):
            tracer = Tracer(sim, sample_every=4, rng=RandomSource(seed, "tracer"))
            picks = []
            for index in range(200):
                span = tracer.start_trace("req")
                if span is not None:
                    picks.append(index)
                    span.finish()
            return picks

        first = sampled_indices(7)
        assert first == sampled_indices(7)
        assert first != sampled_indices(8)
        # Roughly 1-in-4, not all and not none.
        assert 20 <= len(first) <= 90

    def test_phase_clock_created_mid_request_does_not_overlap(self, sim):
        """A second clock on the same span only covers time after its birth
        (the subclass-instrumentation case, e.g. compression)."""
        tracer = Tracer(sim)

        def request():
            span = tracer.start_trace("req")
            outer = tracer.phases(span)
            yield sim.timeout(2.0)
            outer.mark("prelude")
            inner = tracer.phases(span)  # fresh clock, 2 us in
            yield sim.timeout(3.0)
            inner.mark("body")
            span.finish()

        drive(sim, request())
        spans = tracer.finished_spans()
        root = next(s for s in spans if s.name == "req")
        phases = [s for s in spans if s.parent_id == root.span_id]
        assert sum(p.duration_us for p in phases) == pytest.approx(
            root.duration_us
        )


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _sample_spans(sim):
    tracer = Tracer(sim)

    def work():
        span = tracer.start_trace("rm.read", machine_id=2, tags={"page": 9})
        yield sim.timeout(4.0)
        child = span.child("rdma.read", cat="verb", machine_id=5)
        yield sim.timeout(1.5)
        child.finish()
        span.finish()

    drive(sim, work())
    return tracer.finished_spans()


class TestExport:
    def test_jsonl_round_trip(self, sim, tmp_path):
        spans = _sample_spans(sim)
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(spans, str(path)) == len(spans)
        loaded = read_jsonl(str(path))
        assert len(loaded) == len(spans)
        for original, copy in zip(
            sorted(spans, key=lambda s: s.span_id),
            sorted(loaded, key=lambda s: s.span_id),
        ):
            for field in (
                "span_id", "trace_id", "parent_id", "name", "cat",
                "machine_id", "start_us", "end_us", "tags",
            ):
                assert getattr(copy, field) == getattr(original, field)

    def test_chrome_trace_structure(self, sim, tmp_path):
        spans = _sample_spans(sim)
        document = chrome_trace(spans)
        # Must be plain-JSON serialisable as Perfetto expects.
        json.loads(json.dumps(document))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"rm.read", "rdma.read"}
        read = next(e for e in complete if e["name"] == "rm.read")
        assert read["pid"] == 2  # machine -> process track
        assert read["dur"] == pytest.approx(5.5)
        assert read["args"]["page"] == 9
        verb = next(e for e in complete if e["name"] == "rdma.read")
        assert verb["pid"] == 5
        assert verb["args"]["parent_id"] == read["args"]["span_id"]
        assert any(e["name"] == "process_name" for e in metadata)


# ---------------------------------------------------------------------------
# Instrumented data path
# ---------------------------------------------------------------------------


def _traced_hydra(machines=10, pages=24, reads=60, seed=3):
    hydra = build_hydra_cluster(machines=machines, k=4, r=2, delta=1, seed=seed)
    hydra.obs.tracer.set_sampling(1)
    rm = hydra.remote_memory(0)
    sim = hydra.sim

    def workload():
        for pid in range(pages):
            yield rm.write(pid, make_page(pid))
        for op in range(reads):
            yield rm.read(op % pages)

    drive(sim, workload(), until=1e10)
    return hydra, rm


class TestDatapathSpans:
    def test_read_breakdown_tiles_and_matches_recorder(self):
        hydra, rm = _traced_hydra()
        spans = hydra.obs.tracer.finished_spans()
        by_parent = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)

        reads = [s for s in spans if s.name == "rm.read"]
        assert len(reads) == 60
        for root in reads:
            phases = [s for s in by_parent.get(root.span_id, ()) if s.cat == "phase"]
            assert phases, "read span has no phase children"
            # Tiling: per-request phase durations sum to the e2e latency.
            assert sum(p.duration_us for p in phases) == pytest.approx(
                root.duration_us, rel=1e-9
            )
        phase_names = {
            p.name
            for root in reads
            for p in by_parent.get(root.span_id, ())
            if p.cat == "phase"
        }
        assert "wait_k" in phase_names  # the k-th-ack wait of §4.2

        # The span-derived decomposition agrees with the latency recorder.
        breakdown = span_phase_breakdown(spans, "rm.read")
        assert breakdown["count"] == 60
        assert breakdown["unattributed_us"] == pytest.approx(0.0, abs=1e-6)
        assert breakdown["total"]["p50_us"] == pytest.approx(
            rm.read_latency.p50, rel=0.05
        )

    def test_read_spans_contain_rdma_verbs(self):
        hydra, _rm = _traced_hydra(pages=8, reads=8)
        spans = hydra.obs.tracer.finished_spans()
        reads = {s.span_id: s for s in spans if s.name == "rm.read"}
        verbs = [s for s in spans if s.name == "rdma.read" and s.parent_id in reads]
        assert verbs, "no rdma.read verb spans parented to read requests"
        verb = verbs[0]
        assert verb.cat == "verb"
        assert verb.trace_id == reads[verb.parent_id].trace_id
        # The verb carries its latency decomposition as tags.
        assert "wire_us" in verb.tags
        assert verb.tags["bytes"] > 0

    def test_write_spawns_async_parity_span(self):
        hydra, _rm = _traced_hydra(pages=8, reads=0)
        spans = hydra.obs.tracer.finished_spans()
        writes = {s.span_id: s for s in spans if s.name == "rm.write"}
        parity = [s for s in spans if s.name == "rm.parity" and s.parent_id in writes]
        assert parity, "no async parity spans parented to writes"
        # Asynchronous coding: parity may finish after the write root.
        root = writes[parity[0].parent_id]
        assert parity[0].end_us >= root.end_us

    def test_metrics_migrated_onto_registry(self):
        hydra, rm = _traced_hydra(pages=8, reads=8)
        snap = hydra.obs.metrics.snapshot()
        assert snap["rm.0.events.writes"] == 8
        assert snap["rm.0.events.reads"] == 8
        assert snap["rm.0.read"]["count"] == 8
        assert rm.events["writes"] == 8  # old bag API still works
        tx = [k for k in snap if k.startswith("nic.") and k.endswith(".bytes_tx")]
        assert tx and any(snap[k] > 0 for k in tx)

    def test_disabled_tracing_records_no_spans(self):
        hydra = build_hydra_cluster(machines=10, k=4, r=2, delta=1, seed=3)
        assert not hydra.obs.tracer.enabled  # default off
        rm = hydra.remote_memory(0)

        def workload():
            for pid in range(8):
                yield rm.write(pid, make_page(pid))
            for pid in range(8):
                yield rm.read(pid)

        drive(hydra.sim, workload(), until=1e10)
        assert hydra.obs.tracer.finished_spans() == []

    def test_regeneration_emits_spans_after_failure(self):
        hydra, rm = _traced_hydra(machines=10, pages=16, reads=0)
        sim = hydra.sim
        victim = rm.space.get(0).handle(0).machine_id
        hydra.cluster.machine(victim).fail()

        def wait():
            yield sim.timeout(20_000_000.0)

        drive(sim, wait(), until=1e12)
        names = {s.name for s in hydra.obs.tracer.finished_spans()}
        assert "rm.regen" in names or "monitor.regen" in names


class TestPagerSpans:
    def test_fault_span_parents_backend_request(self):
        from repro.vmm import PagedMemory

        hydra, rm = _traced_hydra(pages=0, reads=0)
        sim = hydra.sim
        memory = PagedMemory(rm, resident_pages=4, verify_contents=True)

        def workload():
            for pid in range(8):  # 8 pages through a 4-page resident set
                yield memory.access(pid, write=True, data=make_page(pid))
            for pid in range(8):
                yield memory.access(pid)

        drive(sim, workload(), until=1e10)
        spans = hydra.obs.tracer.finished_spans()
        faults = {s.span_id: s for s in spans if s.name == "vmm.fault"}
        assert faults, "no fault spans recorded"
        nested = [
            s for s in spans
            if s.name in ("rm.read", "rm.write") and s.parent_id in faults
        ]
        assert nested, "backend requests not parented under fault spans"
        for request in nested:
            assert request.trace_id == faults[request.parent_id].trace_id
        snap = hydra.obs.metrics.snapshot()
        assert snap["vmm.0.stats.faults"] > 0
