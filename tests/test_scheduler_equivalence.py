"""Property test: the calendar scheduler is a drop-in for the heap.

The dispatch-order contract (docs/SCALING.md) says both schedulers
process entries in exact ``(time, seq)`` order — same-timestamp batches
in FIFO schedule order, cancelled entries silently skipped, fused
``call_later_batch`` records expanded in sequence order. These tests
interpret the same randomly generated schedule program under both
schedulers and require the full dispatch logs to match, across 20 seeds
and across pathological calendar geometries (a 4-bucket ring forces
constant year wrap-around and overflow-heap traffic).

The program interpreter is deterministic *given the dispatch order*:
each fired node issues the next scripted node, so any ordering
divergence between schedulers cascades into visibly different logs.
"""

import random

import pytest

from repro.sim import Simulator

# Delays are chosen to collide (same-timestamp batches), to straddle
# bucket boundaries, and to overshoot the default calendar year
# (2048 buckets x 2.0 us = 4096 us) into the overflow heap.
_DELAYS = (0.0, 0.0, 0.5, 1.0, 1.0, 2.5, 3.0, 7.5, 64.0, 4095.5, 4096.0, 9999.0)
_KINDS = ("call", "call", "batch", "timeout", "timeout", "event_now", "cancel", "noop")


def _run_schedule(make_sim, seed: int):
    rng = random.Random(seed)
    n = 160
    script = [
        (rng.choice(_KINDS), rng.choice(_DELAYS), rng.randrange(2, 5), rng.randrange(1, 8))
        for _ in range(n)
    ]
    sim = make_sim()
    log = []
    cancellable = []
    cursor = [0]

    def fire(i: int, j: int = 0) -> None:
        log.append((i, j, sim.now))
        issue()

    def issue() -> None:
        i = cursor[0]
        if i >= n:
            return
        cursor[0] += 1
        kind, delay, width, pick = script[i]
        if kind == "call":
            sim.call_later(delay, lambda: fire(i))
        elif kind == "batch":
            sim.call_later_batch(delay, [(lambda j=j: fire(i, j)) for j in range(width)])
        elif kind == "timeout":
            timeout = sim.timeout(delay)
            timeout.callbacks.append(lambda ev: fire(i))
            cancellable.append(timeout)
        elif kind == "event_now":
            event = sim.event()
            event.callbacks.append(lambda ev: fire(i))
            event.succeed_now(i)
        elif kind == "cancel":
            live = [t for t in cancellable if not t.triggered and not t.cancelled]
            if live:
                live[-(pick % len(live)) - 1].cancel()
            issue()  # a cancel consumes no dispatch; keep the program flowing
        else:
            issue()

    for _ in range(8):  # several roots so cancelled chains don't starve the run
        issue()
    sim.run()
    log.append(("end", sim.now, sim._active))
    return log


@pytest.mark.parametrize("seed", range(20))
def test_calendar_matches_heap_reference(seed):
    reference = _run_schedule(lambda: Simulator(scheduler="heap"), seed)
    calendar = _run_schedule(lambda: Simulator(), seed)
    assert calendar == reference


@pytest.mark.parametrize("seed", range(20))
def test_tiny_ring_matches_heap_reference(seed):
    """A 4-bucket, 0.5 us ring: every schedule spills or wraps, so the
    year-advance, refill and residue-deferral paths all run constantly."""
    reference = _run_schedule(lambda: Simulator(scheduler="heap"), seed)
    calendar = _run_schedule(
        lambda: Simulator(scheduler="calendar", bucket_width=0.5, buckets=4), seed
    )
    assert calendar == reference
