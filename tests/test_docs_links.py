"""The docs link checker (tools/check_docs_links.py) stays green.

CI runs the script directly; this test keeps it honest for local
``pytest`` runs and pins the checker's own behavior on a known-dead
link.
"""
import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_docs_links", REPO / "tools" / "check_docs_links.py"
)
check_docs_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs_links)


class TestDocsLinks:
    def test_no_dead_links(self):
        assert check_docs_links.check() == []

    def test_checker_catches_dead_link(self, tmp_path, monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[ok](docs/REAL.md) [bad](docs/GONE.md) "
            "[skip](https://example.com) ![img](missing.png)\n"
            "[anchor](docs/REAL.md#real-heading) "
            "[bad-anchor](docs/REAL.md#nope)\n"
        )
        (tmp_path / "docs" / "REAL.md").write_text("# Real heading\n")
        monkeypatch.setattr(check_docs_links, "REPO", tmp_path)
        errors = check_docs_links.check()
        assert any("GONE.md" in e for e in errors)
        assert any("nope" in e for e in errors)
        assert len(errors) == 2  # https skipped, image skipped, anchor ok
