"""Resilience Manager: the paper's §4 mechanisms, end to end.

These tests run small real clusters (4-10 machines, MiB-scale slabs) with
deterministic networks and push actual bytes through the codec.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, CorruptionInjector, PhantomSplit
from repro.core import (
    DatapathConfig,
    HydraConfig,
    HydraDeployment,
    RemoteMemoryUnavailable,
)
from repro.net import NetworkConfig
from repro.sim import RandomSource

from .conftest import drive, make_page


def quiet_net():
    return NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0)


def deploy(
    machines=8,
    k=4,
    r=2,
    delta=1,
    payload_mode="real",
    seed=5,
    network=None,
    datapath=None,
    **config_kwargs,
):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 26,
        network=network or quiet_net(),
        seed=3,
    )
    config = HydraConfig(
        k=k,
        r=r,
        delta=delta,
        slab_size_bytes=1 << 20,
        payload_mode=payload_mode,
        control_period_us=50_000,
        datapath=datapath or DatapathConfig(),
        **config_kwargs,
    )
    deployment = HydraDeployment(cluster, config, seed=seed)
    return cluster, deployment.manager(0)


class TestReadWrite:
    def test_roundtrip_real_bytes(self):
        cluster, rm = deploy()
        pages = {pid: make_page(pid) for pid in range(16)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            for pid, data in pages.items():
                got = yield rm.read(pid)
                assert got == data
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert rm.events["writes"] == 16
        assert rm.events["reads"] == 16

    def test_overwrite_returns_latest(self):
        cluster, rm = deploy()
        first, second = make_page(1), make_page(2)

        def proc():
            yield rm.write(0, first)
            yield rm.write(0, second)
            return (yield rm.read(0))

        assert drive(cluster.sim, proc()) == second

    def test_read_never_written_returns_none(self):
        cluster, rm = deploy()

        def proc():
            return (yield rm.read(123))

        assert drive(cluster.sim, proc()) is None

    def test_write_requires_full_page_in_real_mode(self):
        cluster, rm = deploy()

        def proc():
            with pytest.raises(Exception):
                yield rm.write(0, b"short")
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_phantom_mode_roundtrip(self):
        cluster, rm = deploy(payload_mode="phantom")

        def proc():
            for pid in range(10):
                yield rm.write(pid)
            for pid in range(10):
                got = yield rm.read(pid)
                assert got is None  # phantom carries no bytes
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_single_us_scale_latency(self):
        """The headline claim: remote page access in single-digit µs."""
        cluster, rm = deploy(k=8, r=2, machines=12)

        def proc():
            for pid in range(32):
                yield rm.write(pid, make_page(pid))
            for pid in range(32):
                yield rm.read(pid)

        drive(cluster.sim, proc())
        assert rm.read_latency.p50 < 10.0
        assert rm.write_latency.p50 < 10.0

    def test_slabs_placed_on_distinct_machines(self):
        cluster, rm = deploy()

        def proc():
            yield rm.write(0, make_page(0))

        drive(cluster.sim, proc())
        address_range = rm.space.get(0)
        machines = address_range.machine_ids()
        assert len(set(machines)) == rm.config.n
        assert 0 not in machines

    def test_pages_span_multiple_ranges(self):
        cluster, rm = deploy(machines=10)
        per_range = rm.config.pages_per_range

        def proc():
            yield rm.write(0, make_page(0))
            yield rm.write(per_range, make_page(1))
            a = yield rm.read(0)
            b = yield rm.read(per_range)
            return a, b

        a, b = drive(cluster.sim, proc())
        assert a == make_page(0) and b == make_page(1)
        assert len(rm.space.all_ranges()) == 2


class TestFailureHandling:
    def test_reads_survive_r_failures(self):
        cluster, rm = deploy(k=4, r=2, machines=10)
        pages = {pid: make_page(pid) for pid in range(12)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            address_range = rm.space.get(0)
            victims = [address_range.handle(0).machine_id,
                       address_range.handle(5).machine_id]
            for victim in victims:
                cluster.machine(victim).fail()
            yield cluster.sim.timeout(200)
            for pid, data in pages.items():
                got = yield rm.read(pid)
                assert got == data, f"page {pid} lost"
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_writes_continue_after_failure(self):
        # Exactly k + r peers: after one failure there is no spare machine,
        # so regeneration cannot replace the slab and writes must keep
        # using the degraded path (encode-sync, k acks from survivors).
        cluster, rm = deploy(k=4, r=2, machines=7)

        def proc():
            yield rm.write(0, make_page(0))
            victim = rm.space.get(0).handle(1).machine_id
            cluster.machine(victim).fail()
            yield cluster.sim.timeout(200)
            yield rm.write(1, make_page(1))  # degraded write
            got = yield rm.read(1)
            return got

        assert drive(cluster.sim, proc()) == make_page(1)
        assert rm.events["degraded_writes"] >= 1

    def test_background_regeneration_restores_slab(self):
        cluster, rm = deploy(k=4, r=2, machines=10)

        def proc():
            for pid in range(8):
                yield rm.write(pid, make_page(pid))
            address_range = rm.space.get(0)
            old = address_range.handle(0).machine_id
            cluster.machine(old).fail()
            yield cluster.sim.timeout(5_000_000)  # regeneration window
            new_handle = rm.space.get(0).handle(0)
            assert new_handle.available
            assert new_handle.machine_id != old
            for pid in range(8):
                got = yield rm.read(pid)
                assert got == make_page(pid)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert rm.events["regenerations"] >= 1

    def test_too_many_failures_is_data_loss(self):
        cluster, rm = deploy(k=4, r=1, delta=1, machines=10)

        def proc():
            yield rm.write(0, make_page(0))
            address_range = rm.space.get(0)
            # Kill k+r-k+1 = r+1 = 2 machines fast: below k survivors.
            for position in (0, 1):
                cluster.machine(address_range.handle(position).machine_id).fail()
            yield cluster.sim.timeout(200)
            with pytest.raises(RemoteMemoryUnavailable):
                yield rm.read(0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_eviction_notice_triggers_failover(self):
        cluster, rm = deploy(k=4, r=2, machines=10)

        def proc():
            for pid in range(6):
                yield rm.write(pid, make_page(pid))
            # Simulate a Resource Monitor eviction notice for slot 2.
            address_range = rm.space.get(0)
            handle = address_range.handle(2)
            host = cluster.machine(handle.machine_id)
            host.release_slab(handle.slab_id)
            rm._on_evict_notice(
                handle.machine_id,
                {"range_id": 0, "position": 2, "slab_id": handle.slab_id},
            )
            yield cluster.sim.timeout(200)
            for pid in range(6):
                got = yield rm.read(pid)
                assert got == make_page(pid)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert rm.events["evictions"] == 1


class TestCorruptionHandling:
    def test_detection_and_healing(self):
        cluster, rm = deploy(k=4, r=2, machines=10)
        pages = {pid: make_page(pid) for pid in range(20)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            victim = rm.space.get(0).handle(1).machine_id
            CorruptionInjector(cluster.sim, RandomSource(9)).corrupt_machine(
                cluster.machine(victim), fraction=1.0
            )
            for pid in pages:
                yield rm.read(pid)
            yield cluster.sim.timeout(10_000_000)
            wrong = 0
            for pid, data in pages.items():
                got = yield rm.read(pid)
                wrong += got != data
            return wrong

        wrong = drive(cluster.sim, proc())
        assert wrong == 0  # healed / regenerated by the second pass
        assert rm.events["corruption_detected"] >= 1
        assert rm.events["corrected_reads"] >= 1

    def test_corruption_correctable_inline_with_r3(self):
        """§7.3.2: the corruption scenario runs with r=3 so that
        k + 2Δ + 1 splits exist and reads can correct inline."""
        cluster, rm = deploy(k=4, r=3, machines=12,
                             error_correction_limit=1)
        pages = {pid: make_page(pid) for pid in range(10)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            victim = rm.space.get(0).handle(0).machine_id
            CorruptionInjector(cluster.sim, RandomSource(4)).corrupt_machine(
                cluster.machine(victim), fraction=1.0
            )
            # Warm the suspicion state with a few reads.
            for pid in list(pages)[:4]:
                yield rm.read(pid)
            yield cluster.sim.timeout(1000)
            wrong = 0
            for pid, data in pages.items():
                got = yield rm.read(pid)
                wrong += got != data
            return wrong

        wrong = drive(cluster.sim, proc())
        # Once suspicion is active every read verifies inline: no wrong data.
        assert wrong == 0
        assert rm.events["suspicious_reads"] >= 1

    def test_phantom_corruption_is_detectable_on_arrival(self):
        cluster, rm = deploy(payload_mode="phantom", k=4, r=2, machines=10)

        def proc():
            for pid in range(8):
                yield rm.write(pid)
            victim = rm.space.get(0).handle(0).machine_id
            CorruptionInjector(cluster.sim, RandomSource(2)).corrupt_machine(
                cluster.machine(victim), fraction=1.0
            )
            for pid in range(8):
                yield rm.read(pid)  # must not raise: extra splits cover it
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"


class TestDatapathSemantics:
    def test_late_binding_cuts_tail(self):
        """Δ=1 extra read absorbs stragglers (Fig 11's tail claim)."""
        straggler_net = NetworkConfig(
            jitter_sigma=0.0, straggler_prob=0.08, straggler_scale_us=80.0
        )

        def p99_with(delta, datapath):
            cluster, rm = deploy(
                k=4, r=2, delta=delta, machines=10,
                network=straggler_net, datapath=datapath,
                verify_reads=False,
            )

            def proc():
                for pid in range(24):
                    yield rm.write(pid, make_page(pid))
                for _ in range(400):
                    pid = _ % 24
                    yield rm.read(pid)

            drive(cluster.sim, proc())
            return rm.read_latency.p99

        with_late_binding = p99_with(1, DatapathConfig())
        without = p99_with(0, DatapathConfig(late_binding=False))
        assert with_late_binding < without

    def test_async_encoding_cuts_write_latency(self):
        def p50_with(datapath):
            cluster, rm = deploy(k=8, r=2, machines=12, datapath=datapath)

            def proc():
                for pid in range(64):
                    yield rm.write(pid, make_page(pid))

            drive(cluster.sim, proc())
            return rm.write_latency.p50

        fast = p50_with(DatapathConfig())
        slow = p50_with(DatapathConfig(async_encoding=False))
        assert fast < slow

    def test_all_optimizations_off_is_much_slower(self):
        def p50_with(datapath):
            cluster, rm = deploy(k=8, r=2, machines=12, datapath=datapath)

            def proc():
                for pid in range(32):
                    yield rm.write(pid, make_page(pid))
                for pid in range(32):
                    yield rm.read(pid)

            drive(cluster.sim, proc())
            return rm.read_latency.p50

        optimized = p50_with(DatapathConfig())
        naive = p50_with(DatapathConfig().all_off())
        assert naive > 2 * optimized

    def test_read_waits_for_inflight_write(self):
        """Read-after-write of the same page orders behind the full
        (k + r) durability point, never mixing versions."""
        cluster, rm = deploy(k=4, r=2, machines=10)

        def proc():
            first, second = make_page(10), make_page(11)
            yield rm.write(0, first)
            write = rm.write(0, second)  # do not await: parity in flight
            got = yield rm.read(0)
            yield write
            return got

        assert drive(cluster.sim, proc()) == make_page(11)


class TestRegenerationScheduling:
    def test_regen_deadline_cancelled_after_success(self):
        """When the regeneration RPC wins the race, the 5 s give-up timer
        must be revoked, not left live in the engine heap."""
        from repro.sim import Event

        cluster, rm = deploy(k=4, r=2, machines=10)

        def proc():
            for pid in range(4):
                yield rm.write(pid, make_page(pid))
            victim = rm.space.get(0).handle(0).machine_id
            cluster.machine(victim).fail()
            yield cluster.sim.timeout(2_000_000)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert rm.events["regenerations"] >= 1
        sim = cluster.sim
        stale_timers = [
            when
            for (when, _seq, entry) in sim._queue
            if isinstance(entry, Event)
            and not entry.cancelled
            and not entry.processed
            and when > sim.now + 1_000_000
        ]
        assert stale_timers == []

    def test_regen_retry_backs_off_a_control_period(self):
        """A timed-out regeneration must retry after a control period,
        not spin with a microsecond delay."""
        cluster, rm = deploy(k=4, r=2, machines=10)
        sim = cluster.sim

        def proc():
            yield rm.write(0, make_page(0))
            return "ok"

        assert drive(sim, proc()) == "ok"
        address_range = rm.space.get(0)
        address_range.handle(0).available = False
        fired = []
        rm._start_regeneration = lambda ar, pos: fired.append(sim.now)
        start = sim.now
        rm._retry_regeneration_later(address_range, 0)
        sim.run(until=start + rm.config.control_period_us / 2)
        assert fired == []  # a 1 us hot retry would already have fired
        sim.run(until=start + 2 * rm.config.control_period_us)
        assert fired and fired[0] >= start + rm.config.control_period_us

    def test_observer_hooks_fire_on_write_read_and_regen(self):
        cluster, rm = deploy(k=4, r=2, machines=10)
        calls = []

        class Observer:
            def on_write_acked(self, page_id, version, data):
                calls.append(("acked", page_id, version))

            def on_write_durable(self, page_id, version):
                calls.append(("durable", page_id, version))

            def on_read_done(self, page_id, version, data, start_us):
                calls.append(("read", page_id, version))

            def on_regen_start(self, range_id, position):
                calls.append(("regen_start", range_id, position))

            def on_regen_end(self, range_id, position, outcome):
                calls.append(("regen_end", range_id, position, outcome))

        rm.add_observer(Observer())

        def proc():
            yield rm.write(0, make_page(0))
            yield rm.read(0)
            victim = rm.space.get(0).handle(0).machine_id
            cluster.machine(victim).fail()
            yield cluster.sim.timeout(2_000_000)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        kinds = [c[0] for c in calls]
        assert ("acked", 0, 1) in calls
        assert ("durable", 0, 1) in calls
        assert ("read", 0, 1) in calls
        assert "regen_start" in kinds
        regen_ends = [c for c in calls if c[0] == "regen_end"]
        assert regen_ends and regen_ends[-1][3] == "regenerated"

    def test_observer_hooks_cost_nothing_when_unused(self):
        """No observers registered: the happy path must not notify."""
        cluster, rm = deploy(k=4, r=2, machines=8)
        rm._notify = None  # would crash if any hook site ran unguarded

        def proc():
            yield rm.write(0, make_page(0))
            got = yield rm.read(0)
            return got

        assert drive(cluster.sim, proc()) == make_page(0)


class TestRegenRetryDedupe:
    def test_concurrent_retry_requests_schedule_one_timer(self):
        """Two triggers for the same failed slot (e.g. an eviction notice
        racing a machine-down notification) while a retry timer is already
        pending must not stack a second timer — the slot would otherwise
        regenerate twice, wasting a slab and a full rebuild."""
        cluster, rm = deploy(k=4, r=2, machines=10)
        sim = cluster.sim

        def proc():
            yield rm.write(0, make_page(0))
            return "ok"

        assert drive(sim, proc()) == "ok"
        address_range = rm.space.get(0)
        address_range.handle(0).available = False
        fired = []
        rm._start_regeneration = lambda ar, pos: fired.append(sim.now)
        rm._retry_regeneration_later(address_range, 0)
        rm._retry_regeneration_later(address_range, 0)  # racing trigger
        assert rm._regen_retry_pending == {(0, 0)}
        sim.run(until=sim.now + 3 * rm.config.control_period_us)
        assert len(fired) == 1
        assert rm._regen_retry_pending == set()

    def test_retry_can_rearm_after_the_timer_fires(self):
        cluster, rm = deploy(k=4, r=2, machines=10)
        sim = cluster.sim

        def proc():
            yield rm.write(0, make_page(0))
            return "ok"

        assert drive(sim, proc()) == "ok"
        address_range = rm.space.get(0)
        address_range.handle(0).available = False
        fired = []
        rm._start_regeneration = lambda ar, pos: fired.append(sim.now)
        rm._retry_regeneration_later(address_range, 0)
        sim.run(until=sim.now + 2 * rm.config.control_period_us)
        rm._retry_regeneration_later(address_range, 0)
        sim.run(until=sim.now + 2 * rm.config.control_period_us)
        assert len(fired) == 2
