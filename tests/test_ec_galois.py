"""GF(2^8) field arithmetic tests, including field-axiom properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.galois import (
    EXP_TABLE,
    LOG_TABLE,
    MUL_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_slice,
    gf_pow,
    gf_sub,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_log_inverse_relation(self):
        for value in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[value]] == value

    def test_exp_table_duplicated(self):
        assert np.array_equal(EXP_TABLE[0:255], EXP_TABLE[255:510])

    def test_mul_table_against_scalar(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            assert MUL_TABLE[a][b] == gf_mul(a, b)


class TestAxioms:
    @given(elements, elements)
    def test_addition_commutative(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    @given(elements)
    def test_addition_self_inverse(self, a):
        assert gf_add(a, a) == 0
        assert gf_sub(a, a) == 0

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(elements, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))

    @given(nonzero, st.integers(min_value=0, max_value=300))
    def test_pow_matches_repeated_mul(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = gf_mul(expected, a)
        assert gf_pow(a, exponent) == expected


class TestEdgeCases:
    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_pow_negative_rejected(self):
        with pytest.raises(ValueError):
            gf_pow(2, -1)

    def test_pow_zero_base(self):
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1  # convention


class TestMulSlice:
    def test_matches_scalar(self):
        data = np.arange(256, dtype=np.uint8)
        for coefficient in (0, 1, 2, 37, 255):
            out = gf_mul_slice(coefficient, data)
            expected = np.array(
                [gf_mul(coefficient, int(x)) for x in data], dtype=np.uint8
            )
            assert np.array_equal(out, expected)

    def test_requires_uint8(self):
        with pytest.raises(TypeError):
            gf_mul_slice(3, np.arange(4, dtype=np.int32))

    def test_returns_copy_for_identity(self):
        data = np.zeros(8, dtype=np.uint8)
        out = gf_mul_slice(1, data)
        out[0] = 1
        assert data[0] == 0
