"""Resource Monitor: headroom defense, batch eviction, proactive
allocation, slab map/unmap service, regeneration hand-off."""

import pytest

from repro.cluster import Cluster, SlabState
from repro.core import HydraConfig, HydraDeployment
from repro.net import NetworkConfig
from repro.sim import RandomSource

from .conftest import drive, make_page


def deploy(machines=8, memory=1 << 24, headroom=0.25, **kwargs):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=memory,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        seed=3,
    )
    config = HydraConfig(
        k=2,
        r=1,
        delta=1,
        slab_size_bytes=1 << 20,
        payload_mode="phantom",
        control_period_us=10_000,
        headroom_fraction=headroom,
        **kwargs,
    )
    deployment = HydraDeployment(cluster, config, seed=7)
    return cluster, deployment


class TestProactiveAllocation:
    def test_free_slabs_appear_when_memory_plentiful(self):
        cluster, deployment = deploy(free_slab_target=2)
        cluster.sim.run(until=100_000)
        for machine in cluster.machines:
            assert len(machine.free_slabs()) == 2

    def test_no_allocation_when_it_would_break_headroom(self):
        cluster, deployment = deploy(memory=1 << 21, headroom=0.5)
        # 2 MiB machines, 50% headroom: a 1 MiB slab would leave exactly
        # the headroom, so one allocation at most.
        cluster.sim.run(until=100_000)
        for machine in cluster.machines:
            assert machine.free_bytes / machine.total_memory_bytes >= 0.5


class TestHeadroomDefense:
    def test_free_slabs_dropped_under_pressure(self):
        cluster, deployment = deploy(free_slab_target=2)
        sim = cluster.sim
        sim.run(until=100_000)
        machine = cluster.machine(1)
        assert machine.free_slabs()
        # Local apps suddenly take most of the memory.
        machine.set_local_app_bytes(int(machine.total_memory_bytes * 0.85))
        sim.run(until=200_000)
        assert not machine.free_slabs()

    def test_mapped_slab_evicted_with_owner_notice(self):
        cluster, deployment = deploy(free_slab_target=0)
        sim = cluster.sim
        rm = deployment.manager(0)

        def proc():
            for pid in range(4):
                yield rm.write(pid)

        drive(sim, proc())
        # Find a machine hosting one of RM-0's slabs; apply pressure.
        host_id = rm.space.get(0).handle(0).machine_id
        host = cluster.machine(host_id)
        host.set_local_app_bytes(int(host.total_memory_bytes * 0.9))
        sim.run(until=400_000)
        monitor = deployment.monitor(host_id)
        assert monitor.events["slabs_evicted"] >= 1
        assert rm.events["evictions"] >= 1
        # The RM replaced the evicted slab via regeneration.
        assert rm.space.get(0).handle(0).available

    def test_batch_eviction_prefers_cold_slabs(self):
        cluster, deployment = deploy(
            machines=4, eviction_batch=1, eviction_extra=2, free_slab_target=0
        )
        machine = cluster.machine(1)
        hot = machine.allocate_slab(1 << 20)
        hot.map_to(0, 0, 0)
        hot.access_count = 1000
        cold = machine.allocate_slab(1 << 20)
        cold.map_to(0, 1, 0)
        cold.access_count = 1
        monitor = deployment.monitor(1)

        def proc():
            yield from monitor._batch_evict()

        drive(cluster.sim, proc())
        assert cold.slab_id not in machine.hosted_slabs
        assert hot.slab_id in machine.hosted_slabs


class TestControlPlane:
    def test_map_slab_reuses_free_slab(self):
        cluster, deployment = deploy(free_slab_target=1)
        sim = cluster.sim
        sim.run(until=50_000)
        machine = cluster.machine(2)
        free_before = len(machine.free_slabs())
        monitor = deployment.monitor(2)
        reply = monitor._on_map_slab(0, {"range_id": 5, "position": 1})
        assert "slab_id" in reply
        assert len(machine.free_slabs()) == free_before - 1
        slab = machine.hosted_slabs[reply["slab_id"]]
        assert slab.state == SlabState.MAPPED
        assert slab.owner_id == 0

    def test_map_slab_refuses_when_headroom_would_break(self):
        cluster, deployment = deploy(memory=1 << 21, headroom=0.9)
        monitor = deployment.monitor(1)
        with pytest.raises(MemoryError):
            monitor._on_map_slab(0, {"range_id": 0, "position": 0})

    def test_unmap_slab_requires_owner(self):
        cluster, deployment = deploy()
        monitor = deployment.monitor(1)
        reply = monitor._on_map_slab(0, {"range_id": 0, "position": 0})
        # Wrong owner: refused.
        assert monitor._on_unmap_slab(3, {"slab_id": reply["slab_id"]}) == {
            "ok": False
        }
        assert monitor._on_unmap_slab(0, {"slab_id": reply["slab_id"]}) == {"ok": True}
        assert reply["slab_id"] not in cluster.machine(1).hosted_slabs

    def test_query_load_reports_utilization(self):
        cluster, deployment = deploy()
        machine = cluster.machine(1)
        machine.set_local_app_bytes(machine.total_memory_bytes // 2)
        body = deployment.monitor(1)._on_query_load(0, {})
        assert body["utilization"] == pytest.approx(0.5)
        assert body["rack"] == machine.rack


class TestRegenerationHandoff:
    def test_real_mode_rebuild_produces_correct_split(self):
        """End-to-end §4.4 regeneration with real bytes: the rebuilt slab
        must serve reads that decode to the original pages."""
        cluster = Cluster(
            machines=10,
            memory_per_machine=1 << 26,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            seed=3,
        )
        config = HydraConfig(
            k=4, r=2, delta=1, slab_size_bytes=1 << 20,
            payload_mode="real", control_period_us=10_000,
        )
        deployment = HydraDeployment(cluster, config, seed=7)
        rm = deployment.manager(0)
        sim = cluster.sim
        pages = {pid: make_page(pid) for pid in range(10)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            old_handle = rm.space.get(0).handle(3)
            cluster.machine(old_handle.machine_id).fail()
            yield sim.timeout(5_000_000)
            new_handle = rm.space.get(0).handle(3)
            assert new_handle.machine_id != old_handle.machine_id
            # Kill every *other* data-carrying possibility for split 3 by
            # reading through it explicitly: force decode paths that use
            # the regenerated slab.
            host = cluster.machine(new_handle.machine_id)
            slab = host.hosted_slabs[new_handle.slab_id]
            assert slab.state == SlabState.MAPPED
            assert slab.touched_pages == len(pages)
            for pid, data in pages.items():
                got = yield rm.read(pid)
                assert got == data
            return "ok"

        assert drive(sim, proc()) == "ok"
