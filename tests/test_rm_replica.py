"""Survivable control plane: replicated RM metadata and failover.

These tests run real clusters with ``metadata_replicas=2`` and exercise
the one-sided-RDMA agreement protocol end to end: majority commits,
lease fencing, deterministic takeover, slab-map reconstruction from the
replicated log, and the crash matrix at every write-path phase boundary.
"""

import pytest

from repro.cluster import Cluster
from repro.core import (
    HydraConfig,
    HydraDeployment,
    RemoteMemoryUnavailable,
)
from repro.core.rm_replica import MetadataQuorumError, StaleTermError
from repro.net import NetworkConfig

from .conftest import drive, make_page

LEASE_US = 60_000.0


def quiet_net():
    return NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0)


def deploy(machines=8, k=4, r=2, replicas=2, seed=5, **config_kwargs):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 26,
        network=quiet_net(),
        seed=3,
    )
    config = HydraConfig(
        k=k,
        r=r,
        delta=1,
        slab_size_bytes=1 << 20,
        payload_mode="real",
        control_period_us=20_000,
        metadata_replicas=replicas,
        metadata_lease_timeout_us=LEASE_US,
        **config_kwargs,
    )
    deployment = HydraDeployment(cluster, config, seed=seed)
    return cluster, deployment


class TestReplication:
    def test_control_plane_off_by_default(self):
        cluster = Cluster(machines=4, memory_per_machine=1 << 26, seed=3)
        deployment = HydraDeployment(cluster, HydraConfig(k=2, r=1, delta=0))
        assert deployment.control_plane is None
        assert deployment.manager(0)._meta is None

    def test_writes_replicate_metadata_to_a_majority(self):
        cluster, deployment = deploy()
        rm = deployment.manager(0)
        control = deployment.control_plane
        store = control.stores[0]

        def proc():
            for pid in range(8):
                yield rm.write(pid, make_page(pid))
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert store.commits > 0
        assert store.committed_lsn > 0
        # Every committed record sits on at least a majority of replicas
        # (the leader's copy plus at least one peer).
        prefix = store.log[: store.committed_lsn]
        holders = 1 + sum(
            1
            for peer in control.peers_of_domain[0]
            if control.replica_hosts[peer][0].log[: store.committed_lsn]
            == prefix
        )
        assert holders >= store.majority
        kinds = {rec["kind"] for rec in prefix}
        assert {"range_installed", "write_intent", "write_acked"} <= kinds

    def test_heartbeat_keeps_the_lease_alive(self):
        cluster, deployment = deploy()
        rm = deployment.manager(0)
        store = deployment.control_plane.stores[0]

        def proc():
            yield rm.write(0, make_page(0))
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        # Idle for several lease windows: heartbeat commits must renew.
        cluster.sim.run(until=cluster.sim.now + 5 * LEASE_US)
        assert store.lease_valid()
        assert not store.fenced

    def test_replica_count_clamped_to_cluster_size(self):
        cluster, deployment = deploy(machines=2, k=1, r=1, replicas=4)
        assert deployment.control_plane.replicas == 1


class TestFencing:
    def test_partition_from_all_peers_fences_the_leader(self):
        cluster, deployment = deploy()
        rm = deployment.manager(0)
        control = deployment.control_plane
        store = control.stores[0]

        def proc():
            for pid in range(4):
                yield rm.write(pid, make_page(pid))
            for peer in control.peers_of_domain[0]:
                cluster.fabric.partition(0, peer)
            # Within one heartbeat period the empty-delta probe fails to
            # reach a majority and the leader fences itself.
            yield cluster.sim.timeout(3 * 20_000.0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert store.fenced
        assert rm.fenced

        def blocked():
            with pytest.raises(RemoteMemoryUnavailable):
                yield rm.write(9, make_page(9))
            with pytest.raises(RemoteMemoryUnavailable):
                yield rm.read(0)
            return "ok"

        assert drive(cluster.sim, blocked()) == "ok"
        assert rm.events["fenced_writes"] >= 1
        assert rm.events["fenced_reads"] >= 1

    def test_stale_term_append_fences_a_deposed_leader(self):
        cluster, deployment = deploy()
        rm = deployment.manager(0)
        control = deployment.control_plane
        store = control.stores[0]

        def proc():
            yield rm.write(0, make_page(0))
            # A successor bumped the term words behind our back.
            for peer in control.peers_of_domain[0]:
                control.replica_hosts[peer][0].apply_term(store.term + 1)
            with pytest.raises(MetadataQuorumError):
                yield from store.commit()
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert store.fenced
        assert "superseded" in store.fence_reason

    def test_term_word_survives_a_wipe(self):
        cluster, deployment = deploy()
        replica = deployment.control_plane.replica_hosts[1][0]
        replica.apply_term(7)
        replica.log.append({"kind": "x"})
        replica.wipe()
        assert replica.term == 7
        assert replica.log == []
        with pytest.raises(StaleTermError):
            replica.apply_term(7)


class TestFailover:
    def test_failover_rebuilds_map_and_serves_reads(self):
        cluster, deployment = deploy(machines=10)
        rm = deployment.manager(0)
        control = deployment.control_plane
        pages = {pid: make_page(pid) for pid in range(12)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            yield cluster.sim.timeout(100_000.0)  # settle parity + durables
            cluster.machine(0).fail()
            yield cluster.sim.timeout(LEASE_US + 1_000_000.0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert len(control.failovers) == 1
        entry = control.failovers[0]
        alive_peers = [
            p for p in control.peers_of_domain[0] if cluster.machine(p).alive
        ]
        assert entry["domain"] == 0
        assert entry["successor"] == alive_peers[0]
        assert entry["term"] >= 2
        assert entry["pages"] == len(pages)
        assert entry["lost"] == 0

        successor = deployment.manager(entry["successor"])

        def readback():
            got = {}
            for pid in pages:
                got[pid] = yield successor.read(pid)
            return got

        got = drive(cluster.sim, readback())
        assert got == pages

    def test_failover_resumes_inflight_regeneration(self):
        cluster, deployment = deploy(machines=10)
        rm = deployment.manager(0)
        control = deployment.control_plane
        pages = {pid: make_page(pid) for pid in range(8)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            yield cluster.sim.timeout(100_000.0)
            # Kill a data host, then the leader before the regeneration
            # completes: the successor must pick the repair back up.
            victim = rm.space.get(0).handle(2).machine_id
            cluster.machine(victim).fail()
            yield cluster.sim.timeout(200.0)
            cluster.machine(0).fail()
            yield cluster.sim.timeout(LEASE_US + 3_000_000.0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert len(control.failovers) == 1
        entry = control.failovers[0]
        assert entry["regens_restarted"] >= 1
        successor = deployment.manager(entry["successor"])

        def readback():
            got = {}
            for pid in pages:
                got[pid] = yield successor.read(pid)
            return got

        assert drive(cluster.sim, readback()) == pages

    def test_deposed_leader_cannot_commit_after_failover(self):
        cluster, deployment = deploy(machines=10)
        rm = deployment.manager(0)
        control = deployment.control_plane

        def proc():
            for pid in range(6):
                yield rm.write(pid, make_page(pid))
            yield cluster.sim.timeout(100_000.0)
            cluster.machine(0).fail()
            yield cluster.sim.timeout(LEASE_US + 1_000_000.0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert control.failovers
        old_store = control.stores[0]
        assert old_store.fenced
        # Even if the old leader's host resurrected its store, the bumped
        # term words on the replicas refuse its appends.
        successor = control.failovers[0]["successor"]
        replica = control.replica_hosts[successor][0]
        with pytest.raises(StaleTermError):
            replica.apply_append(old_store.term, 0, [], 0)


class TestWritePathCrashMatrix:
    """Satellite: crash the RM at every ``_write_process`` phase boundary
    and assert zero durability violations after failover.

    The boundaries, in log order: the write-intent append (pre commit),
    the client-visible ack (post majority ack of ``write_acked``), and
    the window after the client ack while parity is still in flight
    (post client ack, pre durable). Timing is probed on an identical
    crash-free run — the deterministic engine reproduces it exactly.
    """

    PAGE = 0

    def _run(self, crash_at=None):
        cluster, deployment = deploy(machines=10)
        sim = cluster.sim
        rm = deployment.manager(0)
        control = deployment.control_plane
        store = control.stores[0]
        old, new = make_page(100), make_page(200)

        times = {}
        orig_append = store.append

        def spy_append(kind, **fields):
            if fields.get("page_id") == self.PAGE and fields.get("version") == 2:
                times.setdefault(kind, sim.now)
            orig_append(kind, **fields)

        store.append = spy_append

        outcome = {"acked": None}

        def setup():
            yield rm.write(self.PAGE, old)
            for pid in range(1, 6):
                yield rm.write(pid, make_page(pid))
            yield sim.timeout(50_000.0)

        def overwrite():
            try:
                yield rm.write(self.PAGE, new)
                outcome["acked"] = True
                times.setdefault("client_ack", sim.now)
            except Exception:
                outcome["acked"] = False

        drive(sim, setup())
        if crash_at is not None:
            sim.call_later(max(0.0, crash_at - sim.now), cluster.machine(0).fail)
        sim.process(overwrite(), name="overwrite")
        sim.run(until=sim.now + LEASE_US + 3_000_000.0)
        return cluster, deployment, control, times, outcome, old, new

    def _boundaries(self):
        _c, _d, _control, times, outcome, _old, _new = self._run(crash_at=None)
        assert outcome["acked"] is True
        assert "write_intent" in times and "client_ack" in times
        durable = times.get("write_durable", times["client_ack"] + 20.0)
        return {
            "pre_intent_commit": times["write_intent"] + 0.3,
            "post_majority_ack": times["client_ack"] + 0.2,
            "post_client_ack": (times["client_ack"] + durable) / 2.0,
        }

    def test_crash_at_every_phase_boundary_preserves_durability(self):
        for name, crash_at in sorted(self._boundaries().items()):
            cluster, deployment, control, times, outcome, old, new = self._run(
                crash_at=crash_at
            )
            assert len(control.failovers) == 1, f"{name}: no failover"
            entry = control.failovers[0]
            assert entry["lost"] == 0, f"{name}: page lost in failover"
            successor = deployment.manager(entry["successor"])

            def readback():
                return (yield successor.read(self.PAGE))

            got = drive(cluster.sim, readback())
            # Never garbage, never a mix: one of the two committed states.
            assert got in (old, new), f"{name}: inconsistent page content"
            if outcome["acked"]:
                # The client saw the ack: the overwrite is a promise.
                assert got == new, f"{name}: acked write rolled back"
            # All the setup pages carried through untouched.
            for pid in range(1, 6):
                def read_pid(pid=pid):
                    return (yield successor.read(pid))

                assert drive(cluster.sim, read_pid()) == make_page(pid), (
                    f"{name}: settled page {pid} damaged"
                )
