"""Address-space bookkeeping: ranges, slots, failure marking."""

import pytest

from repro.core import AddressRange, RemoteAddressSpace, SlabHandle


def make_range(range_id=0, n=6):
    return AddressRange(
        range_id, [SlabHandle(machine_id=i + 1, slab_id=100 + i) for i in range(n)]
    )


class TestAddressRange:
    def test_available_positions(self):
        rng = make_range()
        assert rng.available_positions() == list(range(6))
        rng.mark_failed(2)
        assert rng.available_positions() == [0, 1, 3, 4, 5]

    def test_positions_on_machine(self):
        rng = make_range()
        assert rng.positions_on_machine(3) == [2]
        assert rng.positions_on_machine(99) == []

    def test_replace_restores_availability(self):
        rng = make_range()
        rng.mark_failed(1)
        rng.replace(1, SlabHandle(machine_id=9, slab_id=900))
        assert rng.available_positions() == list(range(6))
        assert rng.handle(1).machine_id == 9

    def test_machine_ids(self):
        assert make_range().machine_ids() == [1, 2, 3, 4, 5, 6]


class TestRemoteAddressSpace:
    def test_locate(self):
        space = RemoteAddressSpace(pages_per_range=100)
        assert space.locate(0) == (0, 0)
        assert space.locate(99) == (0, 99)
        assert space.locate(100) == (1, 0)
        assert space.locate(250) == (2, 50)

    def test_negative_page_rejected(self):
        with pytest.raises(ValueError):
            RemoteAddressSpace(10).locate(-1)

    def test_invalid_pages_per_range(self):
        with pytest.raises(ValueError):
            RemoteAddressSpace(0)

    def test_install_and_drop(self):
        space = RemoteAddressSpace(10)
        rng = make_range(range_id=3)
        space.install(rng)
        assert space.get(3) is rng
        with pytest.raises(ValueError):
            space.install(make_range(range_id=3))
        assert space.drop(3) is rng
        assert space.get(3) is None

    def test_ranges_using_machine(self):
        space = RemoteAddressSpace(10)
        space.install(make_range(0))
        other = AddressRange(1, [SlabHandle(machine_id=42, slab_id=7)])
        space.install(other)
        assert space.ranges_using_machine(42) == [other]
        assert len(space.ranges_using_machine(1)) == 1
