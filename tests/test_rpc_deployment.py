"""Deployment wiring, RPC under churn, and monitor-RM cooperation."""

import pytest

from repro.cluster import Cluster
from repro.core import HydraConfig, HydraDeployment, RpcEndpoint, RpcError
from repro.net import NetworkConfig

from .conftest import drive, make_page


def quiet():
    return NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0)


class TestDeployment:
    def test_every_machine_gets_both_roles(self):
        cluster = Cluster(machines=5, network=quiet(), seed=1)
        deployment = HydraDeployment(
            cluster, HydraConfig(k=2, r=1, slab_size_bytes=1 << 20,
                                 payload_mode="phantom"),
        )
        for machine in cluster.machines:
            assert deployment.manager(machine.id) is not None
            assert deployment.monitor(machine.id) is not None

    def test_peer_provider_excludes_dead_and_self(self):
        cluster = Cluster(machines=5, network=quiet(), seed=1)
        deployment = HydraDeployment(
            cluster, HydraConfig(k=2, r=1, slab_size_bytes=1 << 20,
                                 payload_mode="phantom"),
        )
        provider = deployment._peer_provider(0)
        assert provider() == [1, 2, 3, 4]
        cluster.machine(3).fail()
        assert provider() == [1, 2, 4]

    def test_monitors_can_be_left_stopped(self):
        cluster = Cluster(machines=4, network=quiet(), seed=1)
        deployment = HydraDeployment(
            cluster,
            HydraConfig(k=2, r=1, slab_size_bytes=1 << 20,
                        payload_mode="phantom",
                        control_period_us=1000.0),
            start_monitors=False,
        )
        cluster.sim.run(until=50_000)
        # No proactive allocation happened anywhere.
        assert all(not m.free_slabs() for m in cluster.machines)


class TestRpcChurn:
    def test_concurrent_calls_correlate_correctly(self):
        cluster = Cluster(machines=3, network=quiet(), seed=2)
        a = RpcEndpoint(cluster.fabric, 0)
        b = RpcEndpoint(cluster.fabric, 1)
        c = RpcEndpoint(cluster.fabric, 2)
        b.register("echo", lambda src, body: {"from": 1, "x": body["x"]})
        c.register("echo", lambda src, body: {"from": 2, "x": body["x"]})

        def proc():
            calls = [
                a.call(1, "echo", {"x": 10}),
                a.call(2, "echo", {"x": 20}),
                a.call(1, "echo", {"x": 30}),
            ]
            results = []
            for call in calls:
                results.append((yield call))
            return results

        results = drive(cluster.sim, proc())
        assert results == [
            {"from": 1, "x": 10},
            {"from": 2, "x": 20},
            {"from": 1, "x": 30},
        ]

    def test_reply_to_dead_requester_is_dropped(self):
        cluster = Cluster(machines=3, network=quiet(), seed=2)
        a = RpcEndpoint(cluster.fabric, 0)
        b = RpcEndpoint(cluster.fabric, 1)
        b.register("slow_echo", lambda src, body: {"ok": True})

        def proc():
            call = a.call(1, "slow_echo")
            cluster.machine(0).fail()  # requester dies mid-flight
            yield cluster.sim.timeout(500)
            return call.triggered

        # Must not crash the handler side.
        drive(cluster.sim, proc())

    def test_non_rpc_messages_ignored(self):
        cluster = Cluster(machines=2, network=quiet(), seed=2)
        RpcEndpoint(cluster.fabric, 1)
        qp = cluster.fabric.qp(0, 1)

        def proc():
            yield qp.post_send("just a string")
            yield qp.post_send({"no": "kind"})
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"


class TestMonitorManagerCooperation:
    def test_eviction_veto_protects_degraded_range(self):
        cluster = Cluster(
            machines=10, memory_per_machine=1 << 26, network=quiet(), seed=3
        )
        config = HydraConfig(
            k=4, r=2, slab_size_bytes=1 << 20, payload_mode="real",
            control_period_us=1e9,
        )
        deployment = HydraDeployment(cluster, config, seed=3)
        rm = deployment.manager(0)

        def proc():
            for pid in range(6):
                yield rm.write(pid, make_page(pid))
            address_range = rm.space.get(0)
            address_range.mark_failed(0)  # pretend position 0 is down
            # A monitor asks to evict another slab of the same range.
            victim = address_range.handle(1)
            reply = rm._on_evict_notice(
                victim.machine_id,
                {
                    "range_id": 0,
                    "position": 1,
                    "slab_id": victim.slab_id,
                },
            )
            return reply

        reply = drive(cluster.sim, proc())
        assert reply == {"ok": False}  # vetoed
        assert rm.events["evictions_vetoed"] == 1
        # The healthy-range case is approved (exercised in
        # test_core_resource_monitor via the live pressure path).
