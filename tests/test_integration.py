"""Cross-module integration tests: the full stack under combined stress."""

import numpy as np
import pytest

from repro.cluster import Cluster, CorruptionInjector, FailureInjector
from repro.core import HydraConfig, HydraDeployment
from repro.net import NetworkConfig, start_background_load
from repro.sim import RandomSource
from repro.vmm import PagedMemory
from repro.workloads import TpccWorkload

from .conftest import drive, make_page


def build(machines=12, k=4, r=2, payload_mode="real", seed=21, **kwargs):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.02, straggler_prob=0.002),
        seed=seed,
    )
    config = HydraConfig(
        k=k, r=r, delta=1, slab_size_bytes=1 << 20,
        payload_mode=payload_mode, control_period_us=100_000, **kwargs,
    )
    return cluster, HydraDeployment(cluster, config, seed=seed)


class TestMultiTenant:
    def test_many_resilience_managers_share_the_cluster(self):
        """Every machine acts as client and server simultaneously (Fig 3)."""
        cluster, deployment = build(machines=10, payload_mode="phantom")
        sim = cluster.sim

        def client(machine_id):
            rm = deployment.manager(machine_id)
            for page in range(40):
                yield rm.write(page)
            for page in range(40):
                yield rm.read(page)
            return rm.events["read_failures"]

        def everyone():
            procs = [
                sim.process(client(m.id), name=f"client{m.id}")
                for m in cluster.machines
            ]
            results = yield sim.all_of(procs)
            return sum(results.values())

        failures = drive(sim, everyone(), until=1e9)
        assert failures == 0
        # Slabs must be spread over many machines, not piled on a few.
        hosting = [len(m.mapped_slabs()) for m in cluster.machines]
        assert min(hosting) >= 1

    def test_workload_through_vmm_over_hydra_survives_chaos(self):
        """TPC-C over the pager over Hydra with a failure AND corruption
        AND background flows, all at once — no lost pages, no stalls."""
        cluster, deployment = build(machines=12, payload_mode="phantom")
        sim = cluster.sim
        rm = deployment.manager(0)
        pager = PagedMemory(rm, resident_pages=300)
        drive(sim, _as_gen(pager.preload(range(600))), until=1e9)

        work = TpccWorkload(
            pager, RandomSource(5), 600, clients=2, compute_us=20.0
        )

        def chaos():
            yield sim.timeout(30_000)
            hosts = [
                h.machine_id
                for rng_ in rm.space.all_ranges()
                for h in rng_.slots
                if h.available
            ]
            cluster.machine(hosts[0]).fail()
            CorruptionInjector(sim, RandomSource(6)).corrupt_machine(
                cluster.machine(hosts[1]), fraction=0.5
            )
            start_background_load(cluster.fabric, [hosts[2]], flows_per_target=2,
                                  duration_us=50_000)

        sim.process(chaos(), name="chaos")
        proc = work.run(total_ops=1000)
        drive(sim, _as_gen(proc), until=1e10)
        assert work.stats["ops"] == 1000
        assert rm.events["read_failures"] == 0

    def test_correlated_failure_within_tolerance(self):
        """r=2 tolerates two *specific* machine losses; §5.2's correlated
        event stays safe when it kills at most r of a range's hosts."""
        cluster, deployment = build(machines=14, k=4, r=2)
        sim = cluster.sim
        rm = deployment.manager(0)
        pages = {pid: make_page(pid) for pid in range(10)}

        def driver():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            hosts = rm.space.get(0).machine_ids()
            cluster.machine(hosts[0]).fail()
            cluster.machine(hosts[-1]).fail()  # one data, one parity host
            yield sim.timeout(500)
            for pid, data in pages.items():
                got = yield rm.read(pid)
                assert got == data
            return "ok"

        assert drive(sim, driver(), until=1e9) == "ok"


class TestRecoveryDynamics:
    def test_regeneration_time_scales_with_slab_fill(self):
        """§7.1.2 measures 274 ms to regenerate a 1 GB slab; the rebuild
        time must scale with the amount of data in the slab."""

        def regen_time(pages):
            cluster, deployment = build(machines=12, seed=33)
            sim = cluster.sim
            rm = deployment.manager(0)

            def run():
                for pid in range(pages):
                    yield rm.write(pid, make_page(pid))
                victim = rm.space.get(0).handle(0).machine_id
                start = sim.now
                cluster.machine(victim).fail()
                while rm.events["regenerations"] == 0:
                    yield sim.timeout(5.0)  # fine-grained poll
                return sim.now - start

            return drive(sim, run(), until=1e10)

        fast = regen_time(4)
        slow = regen_time(512)  # a fuller slab: more bytes to move+decode
        assert slow > fast

    def test_phantom_and_real_agree_on_resilience_outcomes(self):
        """The phantom fast path must preserve control-flow outcomes:
        same number of regenerations for the same failure schedule."""

        def run(payload_mode):
            cluster, deployment = build(machines=12, payload_mode=payload_mode)
            sim = cluster.sim
            rm = deployment.manager(0)

            def driver():
                for pid in range(20):
                    data = make_page(pid) if payload_mode == "real" else None
                    yield rm.write(pid, data)
                victim = rm.space.get(0).handle(2).machine_id
                cluster.machine(victim).fail()
                yield sim.timeout(5_000_000)
                for pid in range(20):
                    yield rm.read(pid)
                return rm.events["regenerations"], rm.events["read_failures"]

            return drive(sim, driver(), until=1e10)

        assert run("real") == run("phantom") == (1, 0)


def _as_gen(process):
    def wait():
        yield process
    return wait()
