"""Remote block device and file abstraction (Remote Regions front-end)."""

import pytest

from repro.baselines import BaselineConfig, ReplicationBackend
from repro.cluster import Cluster
from repro.net import NetworkConfig
from repro.vfs import RemoteBlockDevice, RemoteFile

from .conftest import drive, make_page


def build_device(machines=6):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        seed=2,
    )
    backend = ReplicationBackend(cluster, 0, BaselineConfig(slab_size_bytes=1 << 20))
    return cluster, RemoteBlockDevice(backend)


class TestBlockDevice:
    def test_write_read_block(self):
        cluster, device = build_device()

        def proc():
            yield device.write_block(3, make_page(3))
            return (yield device.read_block(3))

        assert drive(cluster.sim, proc()) == make_page(3)
        assert device.stats["writes"] == 1 and device.stats["reads"] == 1

    def test_latency_recorded(self):
        cluster, device = build_device()

        def proc():
            for block in range(5):
                yield device.write_block(block, make_page(block))
            for block in range(5):
                yield device.read_block(block)

        drive(cluster.sim, proc())
        assert len(device.read_latency) == 5
        assert device.read_latency.p50 > 0

    def test_unwritten_block_reads_none(self):
        cluster, device = build_device()

        def proc():
            return (yield device.read_block(9))

        assert drive(cluster.sim, proc()) is None


class TestRemoteFile:
    def test_aligned_write_read(self):
        cluster, device = build_device()
        data = make_page(0) + make_page(1)  # two blocks

        def proc():
            handle = RemoteFile(device)
            yield handle.write(0, data)
            got = yield handle.read(0, len(data))
            return got, handle.size

        got, size = drive(cluster.sim, proc())
        assert got == data and size == len(data)

    def test_unaligned_write_does_read_modify_write(self):
        cluster, device = build_device()

        def proc():
            handle = RemoteFile(device)
            yield handle.write(0, make_page(7))
            yield handle.write(100, b"HELLO")
            got = yield handle.read(95, 15)
            return got

        expected = make_page(7)[95:100] + b"HELLO" + make_page(7)[105:110]
        assert drive(cluster.sim, proc()) == expected

    def test_write_into_hole_zero_fills(self):
        cluster, device = build_device()

        def proc():
            handle = RemoteFile(device)
            yield handle.write(10, b"xyz")
            return (yield handle.read(0, 16))

        got = drive(cluster.sim, proc())
        assert got == b"\x00" * 10 + b"xyz" + b"\x00" * 3

    def test_cross_block_read(self):
        cluster, device = build_device()
        data = make_page(1) + make_page(2)

        def proc():
            handle = RemoteFile(device)
            yield handle.write(0, data)
            return (yield handle.read(4000, 200))

        assert drive(cluster.sim, proc()) == data[4000:4200]

    def test_invalid_ranges(self):
        cluster, device = build_device()
        handle = RemoteFile(device)

        def proc_write():
            with pytest.raises(ValueError):
                yield from handle._write(-1, b"x")
            with pytest.raises(ValueError):
                yield from handle._read(0, -5)
            return "ok"

        assert drive(cluster.sim, proc_write()) == "ok"
