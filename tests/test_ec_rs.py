"""Reed-Solomon codec: reconstruction, detection, correction properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import CorruptionDetected, DecodeError, ReedSolomonCode


def _splits(code, seed=0, length=64):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (code.k, length), dtype=np.uint8)
    return data, code.encode_page(data)


class TestEncode:
    def test_parity_shape(self):
        code = ReedSolomonCode(4, 2)
        data, _all = _splits(code)
        parity = code.encode(data)
        assert parity.shape == (2, 64)

    def test_systematic_layout(self):
        code = ReedSolomonCode(4, 2)
        data, everything = _splits(code)
        assert np.array_equal(everything[:4], data)

    def test_r_zero(self):
        code = ReedSolomonCode(3, 0)
        data, _ = _splits(code)
        assert code.encode(data).shape == (0, 64)

    def test_wrong_row_count_rejected(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(DecodeError):
            code.encode(np.zeros((3, 10), dtype=np.uint8))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 1)
        with pytest.raises(ValueError):
            ReedSolomonCode(1, -1)
        with pytest.raises(ValueError):
            ReedSolomonCode(200, 100)

    def test_storage_overhead(self):
        assert ReedSolomonCode(8, 2).storage_overhead == 1.25


class TestDecode:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60)
    def test_any_k_subset_reconstructs(self, k, r, seed):
        """The MDS property exercised with random subsets and payloads."""
        code = ReedSolomonCode(k, r)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (k, 16), dtype=np.uint8)
        everything = code.encode_page(data)
        chosen = rng.choice(k + r, size=k, replace=False)
        subset = {int(i): everything[int(i)] for i in chosen}
        assert np.array_equal(code.decode(subset), data)

    def test_too_few_splits(self):
        code = ReedSolomonCode(4, 2)
        _, everything = _splits(code)
        with pytest.raises(DecodeError):
            code.decode({0: everything[0], 1: everything[1]})

    def test_extra_splits_ignored(self):
        code = ReedSolomonCode(3, 2)
        data, everything = _splits(code)
        full = {i: everything[i] for i in range(5)}
        assert np.array_equal(code.decode(full), data)

    def test_parity_only_decode(self):
        code = ReedSolomonCode(2, 2)
        data, everything = _splits(code)
        assert np.array_equal(code.decode({2: everything[2], 3: everything[3]}), data)

    def test_reencode_split_matches(self):
        code = ReedSolomonCode(4, 3)
        data, everything = _splits(code)
        for index in range(7):
            assert np.array_equal(code.reencode_split(data, index), everything[index])

    def test_reencode_bad_index(self):
        code = ReedSolomonCode(2, 1)
        data, _ = _splits(code)
        with pytest.raises(DecodeError):
            code.reencode_split(data, 5)


class TestDetection:
    def test_verify_consistent(self):
        code = ReedSolomonCode(4, 2)
        _, everything = _splits(code)
        assert code.verify({i: everything[i] for i in range(6)})

    def test_verify_catches_corruption(self):
        code = ReedSolomonCode(4, 2)
        _, everything = _splits(code)
        tampered = {i: everything[i].copy() for i in range(5)}  # k + 1
        tampered[1][3] ^= 0x40
        assert not code.verify(tampered)

    def test_verify_with_k_splits_trivially_true(self):
        """Table 1: detection needs k + delta splits; k alone cannot see."""
        code = ReedSolomonCode(4, 2)
        _, everything = _splits(code)
        tampered = {i: everything[i].copy() for i in range(4)}
        tampered[0][0] ^= 0xFF
        assert code.verify(tampered)  # undetectable

    def test_decode_verified_raises(self):
        code = ReedSolomonCode(4, 2)
        _, everything = _splits(code)
        tampered = {i: everything[i].copy() for i in range(5)}
        tampered[4][0] ^= 0x01
        with pytest.raises(CorruptionDetected):
            code.decode_verified(tampered)

    def test_decode_verified_clean(self):
        code = ReedSolomonCode(4, 2)
        data, everything = _splits(code)
        out = code.decode_verified({i: everything[i] for i in range(5)})
        assert np.array_equal(out, data)


class TestCorrection:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30)
    def test_corrects_single_error_with_guarantee(self, k, seed):
        """With k + 3 splits (k + 2*1 + 1), one corruption is always fixed."""
        code = ReedSolomonCode(k, 3)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, (k, 16), dtype=np.uint8)
        everything = code.encode_page(data)
        received = {i: everything[i].copy() for i in range(k + 3)}
        victim = int(rng.integers(0, k + 3))
        received[victim][int(rng.integers(16))] ^= int(rng.integers(1, 256))
        fixed, corrupted = code.correct(received, max_errors=1)
        assert np.array_equal(fixed, data)
        assert corrupted == [victim]

    def test_corrects_two_errors(self):
        code = ReedSolomonCode(3, 5)  # k + 2*2 + 1 = 8 = n
        data, everything = _splits(code)
        received = {i: everything[i].copy() for i in range(8)}
        received[0][0] ^= 0xAA
        received[5][1] ^= 0x55
        fixed, corrupted = code.correct(received, max_errors=2)
        assert np.array_equal(fixed, data)
        assert sorted(corrupted) == [0, 5]

    def test_no_corruption_fast_path(self):
        code = ReedSolomonCode(4, 3)
        data, everything = _splits(code)
        received = {i: everything[i] for i in range(7)}
        fixed, corrupted = code.correct(received, max_errors=1)
        assert np.array_equal(fixed, data)
        assert corrupted == []

    def test_insufficient_splits_rejected_without_best_effort(self):
        code = ReedSolomonCode(4, 2)
        _, everything = _splits(code)
        received = {i: everything[i] for i in range(6)}  # < k + 2 + 1
        with pytest.raises(DecodeError):
            code.correct(received, max_errors=1)

    def test_best_effort_localizes_from_k_plus_2(self):
        """Best-effort mode: unique max-agreement codeword wins."""
        code = ReedSolomonCode(4, 2)
        data, everything = _splits(code)
        received = {i: everything[i].copy() for i in range(6)}  # k + 2
        received[2][7] ^= 0x3C
        fixed, corrupted = code.correct(received, max_errors=1, best_effort=True)
        assert np.array_equal(fixed, data)
        assert corrupted == [2]

    def test_too_many_errors_raise(self):
        code = ReedSolomonCode(4, 3)
        _, everything = _splits(code)
        received = {i: everything[i].copy() for i in range(7)}
        for i in (0, 2, 4):  # 3 errors, only 1 correctable
            received[i][0] ^= 0xFF
        with pytest.raises(DecodeError):
            code.correct(received, max_errors=1)

    def test_correct_needs_more_than_k(self):
        code = ReedSolomonCode(4, 2)
        _, everything = _splits(code)
        with pytest.raises(DecodeError):
            code.correct(
                {i: everything[i] for i in range(4)}, max_errors=0, best_effort=True
            )
