"""The determinism gate: parallel output is byte-identical to serial.

This is the contract every ``-j`` flag in the repository is held to
(``docs/PERFORMANCE.md``): sharding an experiment across worker
processes may change only wall-clock time, never a single byte of the
deterministic outputs. Each test runs the same seeded workload twice —
once on the in-process serial reference path (``jobs=1``) and once
sharded across two workers — and compares canonical artifacts:

* perf suite — :func:`repro.harness.perf.deterministic_anchors`;
* chaos soak — :func:`repro.chaos.soak_json` (the ``soak.json`` bytes);
* figure suite — :func:`repro.parallel.bench.bench_report_digest` plus
  the raw ``results/*.txt`` bytes the benchmark wrote.
"""

from pathlib import Path

from repro.chaos import ChaosConfig, run_soak, soak_json
from repro.harness.perf import deterministic_anchors, run_perf_suite
from repro.parallel.bench import bench_report_digest, run_bench


def test_perf_suite_parallel_matches_serial_anchors():
    serial = run_perf_suite(quick=True, repeats=1, jobs=1)
    parallel = run_perf_suite(quick=True, repeats=1, jobs=2)
    assert serial["jobs"] == 1 and parallel["jobs"] == 2
    assert deterministic_anchors(parallel) == deterministic_anchors(serial)


def test_chaos_soak_parallel_matches_serial_bytes():
    config = ChaosConfig.quick()
    serial = run_soak(3, 2, config=config, jobs=1)
    parallel = run_soak(3, 2, config=config, jobs=2)
    assert soak_json(parallel) == soak_json(serial)
    assert [entry["seed"] for entry in serial["seeds"]] == [3, 4]
    assert all("report_sha256" in entry for entry in serial["seeds"])


def test_figure_benchmark_parallel_matches_serial_bytes(tmp_path):
    dirs = {1: tmp_path / "j1", 2: tmp_path / "j2"}
    docs = {
        jobs: run_bench(jobs=jobs, substring="fig01", results_dir=str(path))
        for jobs, path in dirs.items()
    }
    assert all(doc["ok"] for doc in docs.values())
    assert bench_report_digest(docs[1]) == bench_report_digest(docs[2])

    serial_report = (dirs[1] / "fig01_tradeoff.txt").read_bytes()
    parallel_report = (dirs[2] / "fig01_tradeoff.txt").read_bytes()
    assert serial_report == parallel_report
    assert b"Figure 1" in serial_report
