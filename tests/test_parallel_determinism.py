"""The determinism gate: parallel output is byte-identical to serial.

This is the contract every ``-j`` flag in the repository is held to
(``docs/PERFORMANCE.md``): sharding an experiment across worker
processes may change only wall-clock time, never a single byte of the
deterministic outputs. Each test runs the same seeded workload twice —
once on the in-process serial reference path (``jobs=1``) and once
sharded across two workers — and compares canonical artifacts:

* perf suite — :func:`repro.harness.perf.deterministic_anchors`;
* chaos soak — :func:`repro.chaos.soak_json` (the ``soak.json`` bytes);
* figure suite — :func:`repro.parallel.bench.bench_report_digest` plus
  the raw ``results/*.txt`` bytes the benchmark wrote.
"""

import json
from pathlib import Path

from repro.chaos import ChaosConfig, run_soak, soak_json
from repro.harness.perf import deterministic_anchors, run_perf_suite
from repro.parallel.bench import bench_report_digest, run_bench


def test_perf_suite_parallel_matches_serial_anchors():
    serial = run_perf_suite(quick=True, repeats=1, jobs=1)
    parallel = run_perf_suite(quick=True, repeats=1, jobs=2)
    assert serial["jobs"] == 1 and parallel["jobs"] == 2
    assert deterministic_anchors(parallel) == deterministic_anchors(serial)

    # The end-to-end latency distributions are anchored as full HDR
    # histogram dumps: every bucket count and every derived percentile
    # must be byte-identical between the serial and sharded runs.
    for doc in (serial, parallel):
        for direction in ("read", "write"):
            hist = doc["benchmarks"]["rm_end_to_end"][f"{direction}_hist"]
            assert hist["count"] > 0 and hist["buckets"]
    serial_rm = serial["benchmarks"]["rm_end_to_end"]
    parallel_rm = parallel["benchmarks"]["rm_end_to_end"]
    assert json.dumps(serial_rm["read_hist"], sort_keys=True) == json.dumps(
        parallel_rm["read_hist"], sort_keys=True
    )
    assert json.dumps(serial_rm["write_hist"], sort_keys=True) == json.dumps(
        parallel_rm["write_hist"], sort_keys=True
    )


def test_chaos_soak_parallel_matches_serial_bytes():
    config = ChaosConfig.quick()
    serial = run_soak(3, 2, config=config, jobs=1)
    parallel = run_soak(3, 2, config=config, jobs=2)
    assert soak_json(parallel) == soak_json(serial)
    assert [entry["seed"] for entry in serial["seeds"]] == [3, 4]
    assert all("report_sha256" in entry for entry in serial["seeds"])

    # Per-seed campaign histograms merge into the soak-wide latency
    # section; the merge is per-bucket addition, so buckets and
    # percentiles match the serial reference byte for byte.
    for direction in ("read", "write"):
        merged_serial = serial["latency"][direction]
        merged_parallel = parallel["latency"][direction]
        assert merged_serial == merged_parallel
        assert merged_serial["count"] == sum(
            entry["latency"][direction]["count"] for entry in serial["seeds"]
        )
        assert merged_serial["histogram"]["buckets"]
        assert merged_serial["p50"] <= merged_serial["p99"]


def test_figure_benchmark_parallel_matches_serial_bytes(tmp_path):
    dirs = {1: tmp_path / "j1", 2: tmp_path / "j2"}
    docs = {
        jobs: run_bench(jobs=jobs, substring="fig01", results_dir=str(path))
        for jobs, path in dirs.items()
    }
    assert all(doc["ok"] for doc in docs.values())
    assert bench_report_digest(docs[1]) == bench_report_digest(docs[2])

    serial_report = (dirs[1] / "fig01_tradeoff.txt").read_bytes()
    parallel_report = (dirs[2] / "fig01_tradeoff.txt").read_bytes()
    assert serial_report == parallel_report
    assert b"Figure 1" in serial_report
