"""The determinism gate: parallel output is byte-identical to serial.

This is the contract every ``-j`` flag in the repository is held to
(``docs/PERFORMANCE.md``): sharding an experiment across worker
processes may change only wall-clock time, never a single byte of the
deterministic outputs. Each test runs the same seeded workload twice —
once on the in-process serial reference path (``jobs=1``) and once
sharded across two workers — and compares canonical artifacts:

* perf suite — :func:`repro.harness.perf.deterministic_anchors`;
* chaos soak — :func:`repro.chaos.soak_json` (the ``soak.json`` bytes);
* figure suite — :func:`repro.parallel.bench.bench_report_digest` plus
  the raw ``results/*.txt`` bytes the benchmark wrote;
* loadgen — :func:`repro.harness.loadgen.loadgen_canonical_json` for
  both the offered-load sweep and the trace-replay suite.
"""

import json
from pathlib import Path

from repro.chaos import ChaosConfig, run_soak, soak_json
from repro.harness.loadgen import (
    loadgen_canonical_json,
    run_replay_suite,
    run_sweep,
)
from repro.harness.perf import deterministic_anchors, run_perf_suite
from repro.parallel.bench import bench_report_digest, run_bench


def test_perf_suite_parallel_matches_serial_anchors():
    serial = run_perf_suite(quick=True, repeats=1, jobs=1)
    parallel = run_perf_suite(quick=True, repeats=1, jobs=2)
    assert serial["jobs"] == 1 and parallel["jobs"] == 2
    assert deterministic_anchors(parallel) == deterministic_anchors(serial)

    # The end-to-end latency distributions are anchored as full HDR
    # histogram dumps: every bucket count and every derived percentile
    # must be byte-identical between the serial and sharded runs.
    for doc in (serial, parallel):
        for direction in ("read", "write"):
            hist = doc["benchmarks"]["rm_end_to_end"][f"{direction}_hist"]
            assert hist["count"] > 0 and hist["buckets"]
    serial_rm = serial["benchmarks"]["rm_end_to_end"]
    parallel_rm = parallel["benchmarks"]["rm_end_to_end"]
    assert json.dumps(serial_rm["read_hist"], sort_keys=True) == json.dumps(
        parallel_rm["read_hist"], sort_keys=True
    )
    assert json.dumps(serial_rm["write_hist"], sort_keys=True) == json.dumps(
        parallel_rm["write_hist"], sort_keys=True
    )


def test_chaos_soak_parallel_matches_serial_bytes():
    config = ChaosConfig.quick()
    serial = run_soak(3, 2, config=config, jobs=1)
    parallel = run_soak(3, 2, config=config, jobs=2)
    assert soak_json(parallel) == soak_json(serial)
    assert [entry["seed"] for entry in serial["seeds"]] == [3, 4]
    assert all("report_sha256" in entry for entry in serial["seeds"])

    # Per-seed campaign histograms merge into the soak-wide latency
    # section; the merge is per-bucket addition, so buckets and
    # percentiles match the serial reference byte for byte.
    for direction in ("read", "write"):
        merged_serial = serial["latency"][direction]
        merged_parallel = parallel["latency"][direction]
        assert merged_serial == merged_parallel
        assert merged_serial["count"] == sum(
            entry["latency"][direction]["count"] for entry in serial["seeds"]
        )
        assert merged_serial["histogram"]["buckets"]
        assert merged_serial["p50"] <= merged_serial["p99"]


def test_figure_benchmark_parallel_matches_serial_bytes(tmp_path):
    dirs = {1: tmp_path / "j1", 2: tmp_path / "j2"}
    docs = {
        jobs: run_bench(jobs=jobs, substring="fig01", results_dir=str(path))
        for jobs, path in dirs.items()
    }
    assert all(doc["ok"] for doc in docs.values())
    assert bench_report_digest(docs[1]) == bench_report_digest(docs[2])

    serial_report = (dirs[1] / "fig01_tradeoff.txt").read_bytes()
    parallel_report = (dirs[2] / "fig01_tradeoff.txt").read_bytes()
    assert serial_report == parallel_report
    assert b"Figure 1" in serial_report


# Small grid, short points: the gate cares about byte equality, not
# about where the knee lands.
_SWEEP_KW = dict(
    rates=(20_000.0, 60_000.0, 100_000.0),
    seeds=2,
    duration_us=30_000.0,
    quick=True,
)


def test_loadgen_sweep_parallel_matches_serial_bytes():
    serial = run_sweep(jobs=1, **_SWEEP_KW)
    parallel = run_sweep(jobs=2, **_SWEEP_KW)
    assert serial["jobs"] == 1 and parallel["jobs"] == 2
    assert loadgen_canonical_json(parallel) == loadgen_canonical_json(serial)
    # The per-rate sample digests are the strongest anchors: identical
    # digests mean every pooled latency sample matched to 1e-6 us.
    for point_serial, point_parallel in zip(serial["points"], parallel["points"]):
        assert point_serial["n_samples"] > 0
        assert point_serial["samples_sha256"] == point_parallel["samples_sha256"]


def test_trace_replay_parallel_matches_serial_bytes():
    serial = run_replay_suite(jobs=1, seeds=2, quick=True)
    parallel = run_replay_suite(jobs=2, seeds=2, quick=True)
    assert loadgen_canonical_json(parallel) == loadgen_canonical_json(serial)
    assert serial["overall"]["n_samples"] > 0
    assert (
        serial["overall"]["samples_sha256"]
        == parallel["overall"]["samples_sha256"]
    )
