"""Analytical models: availability (Fig 8, Tab 1), load balance (Fig 9),
TCO (Tab 4)."""

import pytest

from repro.analysis import (
    FOUR_CHOICES,
    GOOGLE,
    HYDRA_K2_D4,
    RANDOM,
    TWO_CHOICES,
    PlacementPolicy,
    correctable_corruptions,
    data_loss_probability,
    imbalance_curve,
    replication_loss_probability,
    requirements,
    simulate_data_loss,
    simulate_imbalance,
    tco_savings_percent,
    tco_table,
)
from repro.sim import RandomSource


class TestDataLossProbability:
    def test_paper_anchor_8_2(self):
        """§5.2 reports 1.42% for (8+2) at 5% failures on 1000 machines.

        The exact hypergeometric tail is 1.10%; the paper's replication
        anchor (0.25%) matches our formula exactly, so the (8+2) delta is
        down to an approximation on their side. Assert the same order of
        magnitude and the qualitative claim (comparable to the 2.07%
        annual disk failure rate).
        """
        p = data_loss_probability(8, 2, machines=1000, failure_fraction=0.05)
        assert 0.008 < p < 0.021

    def test_paper_anchor_replication(self):
        """§5.2: 2x replication -> 0.25% under the same event."""
        p = replication_loss_probability(2, machines=1000, failure_fraction=0.05)
        assert p == pytest.approx(0.0025, abs=0.0003)

    def test_paper_anchor_8_3_beats_replication_overhead(self):
        """(8+3) gives comparable availability at 1.375x overhead."""
        p_83 = data_loss_probability(8, 3, machines=1000, failure_fraction=0.05)
        p_rep = replication_loss_probability(2, machines=1000, failure_fraction=0.05)
        assert p_83 < 2 * p_rep  # same order of magnitude

    def test_more_parity_helps(self):
        probabilities = [
            data_loss_probability(8, r, 1000, 0.05) for r in (1, 2, 3, 4)
        ]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_more_data_splits_hurt(self):
        probabilities = [
            data_loss_probability(k, 2, 1000, 0.05) for k in (2, 4, 8, 16)
        ]
        assert probabilities == sorted(probabilities)

    def test_no_loss_when_failures_below_parity(self):
        assert data_loss_probability(8, 2, 1000, 0.001) == 0.0

    def test_monte_carlo_agrees(self):
        exact = data_loss_probability(4, 2, 100, 0.1)
        estimate = simulate_data_loss(
            4, 2, 100, 0.1, trials=20000, rng=RandomSource(0)
        )
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            data_loss_probability(0, 2, 100, 0.1)
        with pytest.raises(ValueError):
            data_loss_probability(8, 2, 5, 0.1)  # cluster too small
        with pytest.raises(ValueError):
            data_loss_probability(8, 2, 100, 1.5)


class TestRequirements:
    def test_table1(self):
        rows = {row.scenario: row for row in requirements(8, 2, 1)}
        assert rows["failure"].min_splits == 8
        assert rows["failure"].memory_overhead == 1.25
        assert rows["error detection"].min_splits == 9
        assert rows["error detection"].memory_overhead == 1.125
        assert rows["error correction"].min_splits == 11
        assert rows["error correction"].memory_overhead == pytest.approx(1.375)

    def test_correctable_corruptions(self):
        assert correctable_corruptions(8, 2) == 1
        assert correctable_corruptions(8, 3) == 1
        assert correctable_corruptions(8, 4) == 2
        assert correctable_corruptions(8, 0) == 0


class TestLoadBalance:
    def test_choices_beat_random(self):
        rng = RandomSource(1)
        random_imbalance = simulate_imbalance(RANDOM, 500, 500, rng.child("r"))
        d2 = simulate_imbalance(TWO_CHOICES, 500, 500, rng.child("2"))
        assert d2 < random_imbalance

    def test_split_batch_beats_plain_choices(self):
        """Fig 9's claim: k=2,d=4 beats d=4 without splitting."""
        rng = RandomSource(2)
        trials = 5
        plain = sum(
            simulate_imbalance(FOUR_CHOICES, 400, 400, rng.child(f"p{t}"))
            for t in range(trials)
        )
        split = sum(
            simulate_imbalance(HYDRA_K2_D4, 400, 400, rng.child(f"s{t}"))
            for t in range(trials)
        )
        assert split < plain

    def test_curve_shape(self):
        curves = imbalance_curve(
            [RANDOM, HYDRA_K2_D4], [100, 400], RandomSource(3), trials=2
        )
        assert set(curves) == {"random", "k=2,d=4"}
        assert all(len(v) == 2 for v in curves.values())
        # Hydra's policy is better at every size.
        assert all(
            h < r for h, r in zip(curves["k=2,d=4"], curves["random"])
        )

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PlacementPolicy("bad", splits=0, choices=1)
        with pytest.raises(ValueError):
            PlacementPolicy("bad", splits=4, choices=2)
        with pytest.raises(ValueError):
            simulate_imbalance(FOUR_CHOICES, 2, 10, RandomSource(0))


class TestTco:
    def test_paper_google_hydra(self):
        """§7.5 worked example: Google + Hydra (1.25x) -> 6.3%."""
        savings = tco_savings_percent(GOOGLE, memory_overhead=1.25)
        assert savings == pytest.approx(6.3, abs=0.15)

    def test_paper_google_replication(self):
        savings = tco_savings_percent(GOOGLE, memory_overhead=2.0)
        assert savings == pytest.approx(3.3, abs=0.2)

    def test_full_table(self):
        table = tco_table({"Hydra": 1.25, "Replication": 2.0})
        assert table["Hydra"]["Google"] > table["Replication"]["Google"]
        assert table["Hydra"]["Amazon"] > table["Hydra"]["Google"]
        assert set(table["Hydra"]) == {"Google", "Amazon", "Microsoft"}

    def test_validation(self):
        with pytest.raises(ValueError):
            tco_savings_percent(GOOGLE, memory_overhead=0.5)
        with pytest.raises(ValueError):
            tco_savings_percent(GOOGLE, 1.25, unused_memory_percent=150)
