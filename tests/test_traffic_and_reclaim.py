"""NIC traffic accounting (§7.4) and range reclaim (Fig 7b)."""

import pytest

from repro.cluster import Cluster
from repro.core import HydraConfig, HydraDeployment
from repro.harness import build_backend, build_hydra_cluster
from repro.net import NetworkConfig

from .conftest import drive, make_page


class TestTrafficAccounting:
    def test_bytes_counted_on_both_nics(self):
        cluster = Cluster(
            machines=3,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            seed=1,
        )
        qp = cluster.fabric.qp(0, 1)

        def proc():
            yield qp.post_read(512, fetch=lambda: None)
            yield qp.post_write(4096, apply=lambda: None)

        drive(cluster.sim, proc())
        sender = cluster.machine(0).nic
        receiver = cluster.machine(1).nic
        assert sender.bytes_sent == 512 + 4096
        assert receiver.bytes_received == 512 + 4096
        assert sender.ops_sent == 2
        assert cluster.machine(2).nic.total_bytes == 0

    def test_hydra_traffic_overhead_near_1_25x(self):
        """Writes move (k+r)/k = 1.25x page bytes; reads (k+Δ)/k = 1.125x."""
        hydra = build_hydra_cluster(machines=12, k=8, r=2, seed=5)
        rm = hydra.remote_memory(0)
        cluster = hydra.cluster

        def proc():
            for pid in range(32):
                yield rm.write(pid, make_page(pid))

        drive(cluster.sim, proc())
        data_bytes = 32 * 4096
        moved = sum(m.nic.bytes_sent for m in cluster.machines)
        # Verb traffic only slightly above the coding overhead (control
        # messages add a little).
        assert 1.2 * data_bytes < moved < 1.6 * data_bytes

    def test_replication_moves_twice_the_bytes(self):
        cluster = Cluster(
            machines=8,
            memory_per_machine=1 << 26,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            seed=5,
        )
        backend = build_backend("replication", cluster)

        def proc():
            for pid in range(32):
                yield backend.write(pid, make_page(pid))

        drive(cluster.sim, proc())
        moved = sum(m.nic.bytes_sent for m in cluster.machines)
        assert moved >= 2 * 32 * 4096


class TestReclaim:
    def _deploy(self):
        cluster = Cluster(
            machines=8,
            memory_per_machine=1 << 26,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            seed=6,
        )
        config = HydraConfig(
            k=4, r=2, delta=1, slab_size_bytes=1 << 20,
            payload_mode="real", control_period_us=1e9,
        )
        return cluster, HydraDeployment(cluster, config, seed=6)

    def test_reclaim_returns_pages_and_frees_slabs(self):
        cluster, deployment = self._deploy()
        rm = deployment.manager(0)
        pages = {pid: make_page(pid) for pid in range(6)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            hosts = {h.machine_id for h in rm.space.get(0).slots}
            slabs_before = sum(
                len(cluster.machine(m).hosted_slabs) for m in hosts
            )
            reclaimed = yield rm.reclaim_range(0)
            slabs_after = sum(
                len(cluster.machine(m).hosted_slabs) for m in hosts
            )
            return reclaimed, slabs_before, slabs_after

        reclaimed, before, after = drive(cluster.sim, proc())
        assert reclaimed == pages  # every page came home, bytes intact
        assert after < before  # remote slabs were released
        assert rm.space.get(0) is None
        assert rm.remote_pages() == 0

    def test_reclaim_empty_range_is_noop(self):
        cluster, deployment = self._deploy()
        rm = deployment.manager(0)

        def proc():
            return (yield rm.reclaim_range(42))

        assert drive(cluster.sim, proc()) == {}


class TestPartitions:
    def test_partition_triggers_failover_and_heal_restores(self):
        hydra = build_hydra_cluster(machines=10, k=4, r=2, seed=7)
        rm = hydra.remote_memory(0)
        cluster = hydra.cluster
        pages = {pid: make_page(pid) for pid in range(8)}

        def proc():
            for pid, data in pages.items():
                yield rm.write(pid, data)
            victim = rm.space.get(0).handle(0).machine_id
            cluster.fabric.partition(0, victim)
            yield cluster.sim.timeout(200)
            for pid, data in pages.items():
                assert (yield rm.read(pid)) == data  # degraded reads work
            cluster.fabric.heal(0, victim)
            yield cluster.sim.timeout(5_000_000)
            for pid, data in pages.items():
                assert (yield rm.read(pid)) == data
            return "ok"

        assert drive(cluster.sim, proc(), until=1e9) == "ok"
        assert rm.events["disconnects"] >= 1
