"""Regression tests for the §2.2 uncertainty injectors."""

import pytest

from repro.cluster import (
    Cluster,
    CorruptionInjector,
    FailureInjector,
    LocalMemoryPressure,
)
from repro.sim import RandomSource

from .conftest import drive


def small_cluster(machines=8, seed=3):
    return Cluster(machines=machines, memory_per_machine=1 << 24, seed=seed)


class TestFailureInjector:
    def test_crash_and_recover(self):
        cluster = small_cluster()
        injector = FailureInjector(cluster.sim)
        victim = cluster.machine(2)
        injector.crash_at(victim, at_us=100.0, recover_after_us=500.0)

        def proc():
            yield cluster.sim.timeout(200.0)
            assert not victim.alive
            yield cluster.sim.timeout(500.0)
            assert victim.alive
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"
        assert injector.crashed == [2]

    def test_crash_in_the_past_rejected(self):
        cluster = small_cluster()
        injector = FailureInjector(cluster.sim)

        def proc():
            yield cluster.sim.timeout(1000.0)
            with pytest.raises(ValueError):
                injector.crash_at(cluster.machine(1), at_us=500.0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_crash_ledger_dedupes_repeat_crashes(self):
        # crash -> recover -> crash again must count the machine once.
        cluster = small_cluster()
        injector = FailureInjector(cluster.sim)
        victim = cluster.machine(4)
        injector.crash_at(victim, at_us=100.0, recover_after_us=100.0)
        injector.crash_at(victim, at_us=500.0)

        def proc():
            yield cluster.sim.timeout(1000.0)
            return list(injector.crashed)

        assert drive(cluster.sim, proc()) == [4]

    def test_crash_fraction_skips_already_crashed_machines(self):
        cluster = small_cluster(machines=10)
        injector = FailureInjector(cluster.sim)
        rng = RandomSource(7, "outage")
        # Pre-crash half the cluster; the correlated outage must only
        # sample from the survivors.
        dead = [0, 1, 2, 3, 4]
        for machine_id in dead:
            cluster.machine(machine_id).fail()
        victims = injector.crash_fraction_at(
            cluster.machines, fraction=0.4, at_us=100.0, rng=rng
        )
        assert all(v.id not in dead for v in victims)
        assert len(victims) == 4  # 0.4 of 10, all placeable on survivors

        def proc():
            yield cluster.sim.timeout(200.0)
            return sorted(m.id for m in cluster.machines if not m.alive)

        downed = drive(cluster.sim, proc())
        assert downed == sorted(set(dead) | {v.id for v in victims})

    def test_crash_fraction_capped_by_survivors(self):
        cluster = small_cluster(machines=6)
        injector = FailureInjector(cluster.sim)
        for machine_id in range(4):
            cluster.machine(machine_id).fail()
        victims = injector.crash_fraction_at(
            cluster.machines, fraction=0.9, at_us=50.0, rng=RandomSource(1, "x")
        )
        # 0.9 of 6 rounds to 5, but only 2 machines are still alive.
        assert len(victims) == 2


class TestCorruptionInjector:
    def test_corruption_in_the_past_rejected(self):
        cluster = small_cluster()
        injector = CorruptionInjector(cluster.sim, RandomSource(2, "inj"))

        def proc():
            yield cluster.sim.timeout(1000.0)
            with pytest.raises(ValueError):
                injector.corrupt_machine(cluster.machine(1), at_us=999.0)
            return "ok"

        assert drive(cluster.sim, proc()) == "ok"

    def test_immediate_corruption_still_allowed(self):
        # at_us=None applies right now, whatever the clock says.
        cluster = small_cluster()
        injector = CorruptionInjector(cluster.sim, RandomSource(2, "inj"))

        def proc():
            yield cluster.sim.timeout(1000.0)
            injector.corrupt_machine(cluster.machine(1))
            return injector.corrupted_splits

        assert drive(cluster.sim, proc()) == 0  # no slabs hosted; no error


class TestLocalMemoryPressure:
    def test_ramp_reaches_target(self):
        cluster = small_cluster()
        machine = cluster.machine(0)
        LocalMemoryPressure(cluster.sim, machine).ramp(
            1 << 22, over_us=1000.0, steps=4
        )

        def proc():
            yield cluster.sim.timeout(2000.0)
            return machine.local_app_bytes

        assert drive(cluster.sim, proc()) == 1 << 22


class TestRegenHandoffRetry:
    """A regeneration target that dies between placement and the
    ``regenerate_slab`` hand-off must be abandoned — the retry re-runs
    placement against the machines alive *at retry time*, so the dead
    target is never re-picked."""

    def _deploy(self, machines=10):
        from repro.core import HydraConfig, HydraDeployment
        from repro.net import NetworkConfig

        cluster = Cluster(
            machines=machines,
            memory_per_machine=1 << 26,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            seed=3,
        )
        config = HydraConfig(
            k=4, r=2, delta=1, slab_size_bytes=1 << 20,
            payload_mode="real", control_period_us=20_000,
        )
        deployment = HydraDeployment(cluster, config, seed=5)
        return cluster, deployment.manager(0)

    def test_dead_handoff_target_is_not_repicked(self):
        from .conftest import make_page

        cluster, rm = self._deploy()
        sim = cluster.sim

        def setup():
            for pid in range(8):
                yield rm.write(pid, make_page(pid))
            return "ok"

        assert drive(sim, setup()) == "ok"

        killed = []
        orig_call = rm.endpoint.call

        def flaky_call(target, message_type, body=None):
            # The first chosen regeneration target dies at the exact
            # moment of the hand-off RPC.
            if message_type == "regenerate_slab" and not killed:
                killed.append(target)
                cluster.machine(target).fail()
            return orig_call(target, message_type, body)

        rm.endpoint.call = flaky_call
        address_range = rm.space.get(0)
        victim = address_range.handle(0).machine_id
        cluster.machine(victim).fail()
        sim.run(until=sim.now + 5_000_000.0)

        assert killed, "regeneration never reached the hand-off"
        assert rm.events["regen_handoff_failures"] >= 1
        assert rm.events["regenerations"] >= 1
        new_handle = rm.space.get(0).handle(0)
        assert new_handle.available
        assert new_handle.machine_id != killed[0]
        assert new_handle.machine_id != victim

        def readback():
            for pid in range(8):
                assert (yield rm.read(pid)) == make_page(pid)
            return "ok"

        assert drive(sim, readback()) == "ok"
