"""Tests for Resource and Store primitives."""

import pytest

from repro.sim import Resource, SimulationError, Store

from .conftest import drive


class TestResource:
    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        first, second = resource.request(), resource.request()
        assert first.triggered and second.triggered
        third = resource.request()
        assert not third.triggered
        assert resource.queue_length == 1

    def test_release_hands_to_waiter(self, sim):
        resource = Resource(sim, capacity=1)
        resource.request()
        waiting = resource.request()
        assert not waiting.triggered
        resource.release()
        assert waiting.triggered
        assert resource.in_use == 1  # slot transferred, not freed

    def test_release_without_request_raises(self, sim):
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_fifo_ordering(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def user(tag, hold):
            request = resource.request()
            yield request
            order.append(tag)
            yield sim.timeout(hold)
            resource.release()

        for tag in ("a", "b", "c"):
            sim.process(user(tag, 5))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_serializes_device_access(self, sim):
        """Two holders of a capacity-1 resource cannot overlap in time."""
        resource = Resource(sim, capacity=1)
        spans = []

        def user():
            yield resource.request()
            start = sim.now
            yield sim.timeout(10)
            resource.release()
            spans.append((start, sim.now))

        sim.process(user())
        sim.process(user())
        sim.run()
        (s1, e1), (s2, e2) = sorted(spans)
        assert s2 >= e1


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("item")
            value = yield store.get()
            return value

        assert drive(sim, proc()) == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        result = []

        def getter():
            value = yield store.get()
            result.append((sim.now, value))

        def putter():
            yield sim.timeout(5)
            yield store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert result == [(5.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)

        def proc():
            for i in range(3):
                yield store.put(i)
            values = []
            for _ in range(3):
                values.append((yield store.get()))
            return values

        assert drive(sim, proc()) == [0, 1, 2]

    def test_bounded_put_blocks(self, sim):
        store = Store(sim, capacity=1)

        def proc():
            yield store.put("a")
            second = store.put("b")
            assert not second.triggered  # buffer full
            value = yield store.get()
            assert second.triggered  # freed a slot
            return value

        assert drive(sim, proc()) == "a"

    def test_handoff_to_waiting_getter_bypasses_buffer(self, sim):
        store = Store(sim, capacity=1)
        got = []

        def getter():
            value = yield store.get()
            got.append(value)

        sim.process(getter())
        sim.run()

        def putter():
            yield store.put("direct")

        drive(sim, putter())
        assert got == ["direct"]
        assert len(store) == 0

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_blocked_putter_drains_in_order(self, sim):
        store = Store(sim, capacity=1)

        def proc():
            yield store.put("a")
            store.put("b")  # blocked
            store.put("c")  # blocked
            values = []
            for _ in range(3):
                values.append((yield store.get()))
            return values

        assert drive(sim, proc()) == ["a", "b", "c"]
