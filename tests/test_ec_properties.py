"""Property-based tests for the coding path (seeded random draws).

Hypothesis-style testing on the sim's own :class:`RandomSource`: every
test draws a random ``(k, r, page_size, erasure set, Δ-error pattern)``
per seed and checks the codec's contracts — roundtrip from any ``k``
survivors, detection with ``k + Δ`` splits, guaranteed correction with
``k + 2Δ + 1``, best-effort localization — across the whole operating
region, not just the paper's RS(8, 2) point. Seeded draws keep each case
deterministic and individually replayable (the seed is the parametrize
id), which is why these use the sim RNG rather than time-salted fuzzing.

The cached-row-plan tests deliberately reuse one codec across many
random index tuples so the ``_decode_plans`` / ``_extras_plans`` /
``_rebuild_cache`` fast paths are hit both cold and warm and compared
against a fresh codec each time.
"""

import numpy as np
import pytest

from repro.ec import CorruptionDetected, DecodeError, PageCodec
from repro.sim import RandomSource

SEEDS = range(20)


def _draw_codec(rng, k_max=10, r_max=4):
    """A random codec: k, r, and a page size that often needs padding."""
    k = rng.randint(2, k_max)
    r = rng.randint(1, r_max)
    page_size = rng.randint(max(k, 64), 1024)
    return PageCodec(k, r, page_size=page_size)


def _random_page(rng, size):
    return rng.numpy.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _corrupt(rng, split):
    """Flip at least one byte of ``split`` (xor with a nonzero mask)."""
    corrupted = split.copy()
    pos = rng.randint(0, len(corrupted) - 1)
    corrupted[pos] ^= rng.randint(1, 255)
    return corrupted


@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_from_any_k_survivors(seed):
    rng = RandomSource(seed, "ec-prop/roundtrip")
    codec = _draw_codec(rng)
    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    assert splits.shape == (codec.n, codec.split_size)

    # Any k of the k+r splits reconstruct the page — including sets that
    # replace data splits with parity (the late-binding read path).
    for _ in range(4):
        survivors = rng.sample(range(codec.n), codec.k)
        received = {i: splits[i] for i in survivors}
        assert codec.decode(received) == page

    # k-1 splits are information-theoretically insufficient.
    short = rng.sample(range(codec.n), codec.k - 1)
    with pytest.raises(DecodeError):
        codec.decode({i: splits[i] for i in short})


@pytest.mark.parametrize("seed", SEEDS)
def test_verify_detects_delta_corruptions_with_k_plus_delta(seed):
    rng = RandomSource(seed, "ec-prop/verify")
    codec = _draw_codec(rng)
    delta = rng.randint(1, codec.r)
    assert codec.splits_required(detect_errors=delta) == codec.k + delta

    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    chosen = rng.sample(range(codec.n), codec.k + delta)
    received = {i: splits[i].copy() for i in chosen}
    assert codec.verify(received)
    assert codec.decode_verified(received) == page

    # Corrupt up to delta of the received splits: detection is guaranteed.
    for index in rng.sample(chosen, delta):
        received[index] = _corrupt(rng, received[index])
    assert not codec.verify(received)
    with pytest.raises(CorruptionDetected):
        codec.decode_verified(received)


@pytest.mark.parametrize("seed", SEEDS)
def test_correct_guaranteed_with_k_plus_2delta_plus_1(seed):
    rng = RandomSource(seed, "ec-prop/correct")
    # Guaranteed correction of delta=1 needs k + 3 splits, so r >= 3;
    # keep k small so the C(m, k) majority decode stays cheap.
    k = rng.randint(2, 6)
    r = rng.randint(3, 4)
    codec = PageCodec(k, r, page_size=rng.randint(max(k, 64), 1024))
    assert codec.splits_required(correct_errors=1) == k + 3

    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    chosen = rng.sample(range(codec.n), k + 3)
    received = {i: splits[i].copy() for i in chosen}

    # No corruption: clean page, nothing located.
    data, corrupted = codec.correct(received, max_errors=1)
    assert data == page and corrupted == []

    # One corrupted split: located exactly, page still exact.
    victim = rng.choice(chosen)
    received[victim] = _corrupt(rng, received[victim])
    data, corrupted = codec.correct(received, max_errors=1)
    assert data == page
    assert corrupted == [victim]


@pytest.mark.parametrize("seed", SEEDS)
def test_correct_best_effort_localizes_from_k_plus_2(seed):
    rng = RandomSource(seed, "ec-prop/best-effort")
    k = rng.randint(2, 6)
    r = rng.randint(2, 4)
    codec = PageCodec(k, r, page_size=rng.randint(256, 1024))
    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    chosen = rng.sample(range(codec.n), k + 2)
    received = {i: splits[i].copy() for i in chosen}
    victim = rng.choice(chosen)
    received[victim] = _corrupt(rng, received[victim])
    data, corrupted = codec.correct(received, max_errors=1, best_effort=True)
    assert data == page
    assert corrupted == [victim]


@pytest.mark.parametrize("seed", SEEDS)
def test_cached_row_plans_match_fresh_codec(seed):
    """One codec serving many index tuples (warm caches) must agree with
    a cold codec per call — the cached fast paths cannot drift."""
    rng = RandomSource(seed, "ec-prop/plans")
    k = rng.randint(2, 8)
    r = rng.randint(1, 4)
    page_size = rng.randint(max(k, 64), 1024)
    warm = PageCodec(k, r, page_size=page_size)
    pages = [_random_page(rng, page_size) for _ in range(3)]
    encoded = [warm.encode(page) for page in pages]

    for _ in range(8):
        survivors = rng.sample(range(warm.n), warm.k)
        which = rng.randint(0, len(pages) - 1)
        received = {i: encoded[which][i] for i in survivors}
        cold = PageCodec(k, r, page_size=page_size)
        assert warm.decode(received) == cold.decode(received) == pages[which]
        # Repeat with the warm cache populated for this exact tuple.
        assert warm.decode(received) == pages[which]

    delta = rng.randint(1, warm.r)
    chosen = rng.sample(range(warm.n), warm.k + delta)
    received = {i: encoded[0][i] for i in chosen}
    cold = PageCodec(k, r, page_size=page_size)
    assert warm.verify(received) and cold.verify(received)
    assert warm.verify(received)  # warm _extras_plans path


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_paths_match_per_page(seed):
    rng = RandomSource(seed, "ec-prop/batch")
    codec = _draw_codec(rng, k_max=8)
    pages = [_random_page(rng, codec.page_size) for _ in range(5)]

    batch = codec.encode_batch(pages)
    singles = [codec.encode(page) for page in pages]
    assert batch.shape == (len(pages), codec.n, codec.split_size)
    for got, want in zip(batch, singles):
        assert np.array_equal(got, want)

    indices = sorted(rng.sample(range(codec.n), codec.k))
    stack = np.stack([np.stack([s[i] for i in indices]) for s in singles])
    decoded = codec.decode_batch(indices, stack)
    assert decoded == pages


def _call_correct(fn, received, max_errors, best_effort):
    """Canonical outcome tuple: result bytes or classified error."""
    try:
        data, bad = fn(received, max_errors=max_errors, best_effort=best_effort)
    except DecodeError as exc:
        return ("err", str(exc), sorted(exc.suspect_indices))
    return ("ok", data.tobytes(), bad)


@pytest.mark.parametrize("seed", range(40))
def test_fast_correct_byte_identical_to_reference(seed):
    """The residual-guided ``correct`` must match the exhaustive-scan
    ``correct_reference`` byte for byte — data, localization lists, error
    messages, and suspect indices — across random codecs, split subsets,
    corruption counts (including none and too many), and both modes."""
    rng = RandomSource(seed, "ec-prop/fast-vs-ref")
    k = rng.randint(2, 6)
    r = rng.randint(1, 4)
    codec = PageCodec(k, r, page_size=rng.randint(max(k, 64), 512))
    code = codec.code
    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)

    for _ in range(6):
        m = rng.randint(k + 1, code.n)
        chosen = rng.sample(range(code.n), m)
        received = {i: splits[i].copy() for i in chosen}
        for victim in rng.sample(chosen, rng.randint(0, min(2, m))):
            received[victim] = _corrupt(rng, received[victim])
        max_errors = rng.randint(1, 2)
        best_effort = bool(rng.randint(0, 1))
        fast = _call_correct(code.correct, dict(received), max_errors, best_effort)
        ref = _call_correct(
            code.correct_reference, dict(received), max_errors, best_effort
        )
        assert fast == ref


@pytest.mark.parametrize("seed", SEEDS)
def test_fast_correct_matches_reference_at_mode_boundaries(seed):
    """m = k + 2d + 1 (guaranteed) vs m = k + 2d (best-effort only): the
    fast path must agree with the scan exactly at the threshold where the
    acceptance rule changes shape."""
    rng = RandomSource(seed, "ec-prop/boundary")
    k = rng.randint(2, 5)
    codec = PageCodec(k, 4, page_size=rng.randint(max(k, 64), 512))
    code = codec.code
    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)

    for m in (k + 2, k + 3):  # d=1: best-effort-only vs guaranteed
        chosen = rng.sample(range(code.n), m)
        received = {i: splits[i].copy() for i in chosen}
        victim = rng.choice(chosen)
        received[victim] = _corrupt(rng, received[victim])
        for best_effort in (False, True):
            fast = _call_correct(code.correct, dict(received), 1, best_effort)
            ref = _call_correct(
                code.correct_reference, dict(received), 1, best_effort
            )
            assert fast == ref
            if m == k + 3 or best_effort:
                assert fast[0] == "ok"
                assert fast[1] == code.decode(
                    {i: splits[i] for i in chosen if i != victim}
                ).tobytes()
                assert fast[2] == [victim]


@pytest.mark.parametrize("seed", SEEDS)
def test_correct_batch_matches_per_page(seed):
    rng = RandomSource(seed, "ec-prop/correct-batch")
    k = rng.randint(2, 6)
    r = rng.randint(2, 4)
    codec = PageCodec(k, r, page_size=rng.randint(256, 1024))
    pages = [_random_page(rng, codec.page_size) for _ in range(6)]
    encoded = [codec.encode(page) for page in pages]
    indices = sorted(rng.sample(range(codec.n), k + 2))
    stack = np.stack([
        np.stack([s[i] for i in indices]) for s in encoded
    ])
    dirty = rng.sample(range(len(pages)), 2)
    for page_index in dirty:
        row = rng.randint(0, len(indices) - 1)
        stack[page_index, row] = _corrupt(rng, stack[page_index, row])

    got_pages, got_bad = codec.correct_batch(
        indices, stack, max_errors=1, best_effort=True
    )
    for page_index in range(len(pages)):
        received = {
            index: stack[page_index, row]
            for row, index in enumerate(indices)
        }
        want_page, want_bad = codec.correct(
            received, max_errors=1, best_effort=True
        )
        assert got_pages[page_index] == want_page == pages[page_index]
        assert got_bad[page_index] == want_bad
        assert (page_index in dirty) == bool(want_bad)


def test_correct_batch_does_not_mutate_input_stack():
    codec = PageCodec(4, 3, page_size=256)
    pages = [bytes(range(256)) for _ in range(3)]
    encoded = [codec.encode(page) for page in pages]
    indices = list(range(codec.n))
    stack = np.stack([np.stack([s[i] for i in indices]) for s in encoded])
    stack[1, 2, :8] ^= 0x5A
    snapshot = stack.copy()
    got_pages, got_bad = codec.correct_batch(
        indices, stack, max_errors=1, best_effort=True
    )
    assert np.array_equal(stack, snapshot)
    assert got_pages[1] == pages[1]
    assert got_bad == [[], [2], []]


class TestCorrectErrorClassification:
    """``correct`` failures are differentiated and carry suspects."""

    def test_ambiguous_candidates(self):
        # k=2, r=1, all three splits, one corruption: every 2-subset
        # decodes to a distinct codeword agreeing with exactly 2 of 3
        # splits — a tie the decoder must refuse to break.
        codec = PageCodec(2, 1, page_size=64)
        page = bytes(range(64))
        splits = codec.encode(page)
        received = {i: splits[i].copy() for i in range(3)}
        received[1][0] ^= 0xFF
        with pytest.raises(DecodeError, match="ambiguous correction"):
            codec.correct(received, max_errors=1, best_effort=True)
        try:
            codec.correct(received, max_errors=1, best_effort=True)
        except DecodeError as exc:
            assert exc.suspect_indices == [0, 1, 2]

    def test_more_errors_than_correctable(self):
        # Guaranteed mode with two corruptions but max_errors=1: no
        # candidate reaches the majority threshold.
        codec = PageCodec(3, 3, page_size=96)
        page = bytes(range(96))
        splits = codec.encode(page)
        received = {i: splits[i].copy() for i in range(6)}  # m = k + 3
        received[0][0] ^= 0x01
        received[4][0] ^= 0x02
        with pytest.raises(DecodeError, match="more than 1 corrupted"):
            codec.correct(received, max_errors=1)
        try:
            codec.correct(received, max_errors=1)
        except DecodeError as exc:
            assert exc.suspect_indices == []

    def test_too_few_splits_precondition(self):
        codec = PageCodec(4, 2, page_size=64)
        splits = codec.encode(bytes(64))
        received = {i: splits[i] for i in range(5)}  # m=5 < k+2d+1=7
        with pytest.raises(DecodeError, match="needs 7 splits, got 5"):
            codec.correct(received, max_errors=1)
        received_k = {i: splits[i] for i in range(4)}  # m=4 < k+1
        with pytest.raises(DecodeError, match="localization needs at least"):
            codec.correct(received_k, max_errors=1, best_effort=True)


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_byte_identity_random_shapes(seed):
    """Slab-wide kernels are byte-identical to per-page calls across
    random ``(k, r, page_size, n_pages, erasure pattern, corruption)``
    draws. Seeds 0 and 1 pin the empty-batch and single-page edges; the
    rest draw ``n_pages`` freely.
    """
    rng = RandomSource(seed, "ec-prop/batch-identity")
    codec = _draw_codec(rng, k_max=8)
    n_pages = 0 if seed == 0 else 1 if seed == 1 else rng.randint(2, 12)
    pages = [_random_page(rng, codec.page_size) for _ in range(n_pages)]

    batch = codec.encode_batch(pages)
    assert batch.shape == (n_pages, codec.n, codec.split_size)
    singles = [codec.encode(page) for page in pages]
    for got, want in zip(batch, singles):
        assert np.array_equal(got, want)

    # Random erasure pattern: any k of the n split positions survive.
    indices = sorted(rng.sample(range(codec.n), codec.k))
    if n_pages:
        stack = np.stack([np.stack([s[i] for i in indices]) for s in singles])
    else:
        stack = np.empty((0, codec.k, codec.split_size), dtype=np.uint8)
    decoded = codec.decode_batch(indices, stack)
    per_page = [codec.decode({i: s[i] for i in indices}) for s in singles]
    assert decoded == per_page == pages

    # Random corruption through correct_batch whenever the draw leaves
    # enough redundancy for best-effort localization (m = k + 2).
    if codec.r >= 2 and n_pages:
        wide = sorted(rng.sample(range(codec.n), codec.k + 2))
        wstack = np.stack([np.stack([s[i] for i in wide]) for s in singles])
        dirty = rng.sample(range(n_pages), rng.randint(0, min(2, n_pages)))
        for page_index in dirty:
            row = rng.randint(0, len(wide) - 1)
            wstack[page_index, row] = _corrupt(rng, wstack[page_index, row])
        got_pages, got_bad = codec.correct_batch(
            wide, wstack, max_errors=1, best_effort=True
        )
        for page_index in range(n_pages):
            received = {
                index: wstack[page_index, row]
                for row, index in enumerate(wide)
            }
            want_page, want_bad = codec.correct(
                received, max_errors=1, best_effort=True
            )
            assert got_pages[page_index] == want_page == pages[page_index]
            assert got_bad[page_index] == want_bad


def test_batch_min_crossover_knob_is_byte_identical(monkeypatch):
    """REPRO_EC_BATCH_MIN routes small batches down the scalar per-page
    path; outputs must not change by a byte."""
    from repro.ec import pagecodec as pc

    codec = PageCodec(4, 2, page_size=256)
    pages = [bytes([7 * i % 256]) * 256 for i in range(3)]
    batched = codec.encode_batch(pages)
    indices = [0, 2, 4, 5]
    stack = np.ascontiguousarray(batched[:, indices])
    wide_indices = list(range(codec.n))  # m = k + 2: best-effort viable
    wide = batched.copy()
    wide[1, 2] = _corrupt(RandomSource(3, "knob"), wide[1, 2])
    decoded = codec.decode_batch(indices, stack)
    fixed, bad = codec.correct_batch(
        wide_indices, wide, max_errors=1, best_effort=True
    )

    monkeypatch.setattr(pc, "BATCH_MIN_PAGES", 8)  # force the scalar path
    assert np.array_equal(codec.encode_batch(pages), batched)
    assert codec.decode_batch(indices, stack) == decoded
    s_fixed, s_bad = codec.correct_batch(
        wide_indices, wide, max_errors=1, best_effort=True
    )
    assert (s_fixed, s_bad) == (fixed, bad)
    assert fixed == pages and bad == [[], [2], []]
