"""Property-based tests for the coding path (seeded random draws).

Hypothesis-style testing on the sim's own :class:`RandomSource`: every
test draws a random ``(k, r, page_size, erasure set, Δ-error pattern)``
per seed and checks the codec's contracts — roundtrip from any ``k``
survivors, detection with ``k + Δ`` splits, guaranteed correction with
``k + 2Δ + 1``, best-effort localization — across the whole operating
region, not just the paper's RS(8, 2) point. Seeded draws keep each case
deterministic and individually replayable (the seed is the parametrize
id), which is why these use the sim RNG rather than time-salted fuzzing.

The cached-row-plan tests deliberately reuse one codec across many
random index tuples so the ``_decode_plans`` / ``_extras_plans`` /
``_rebuild_cache`` fast paths are hit both cold and warm and compared
against a fresh codec each time.
"""

import numpy as np
import pytest

from repro.ec import CorruptionDetected, DecodeError, PageCodec
from repro.sim import RandomSource

SEEDS = range(20)


def _draw_codec(rng, k_max=10, r_max=4):
    """A random codec: k, r, and a page size that often needs padding."""
    k = rng.randint(2, k_max)
    r = rng.randint(1, r_max)
    page_size = rng.randint(max(k, 64), 1024)
    return PageCodec(k, r, page_size=page_size)


def _random_page(rng, size):
    return rng.numpy.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _corrupt(rng, split):
    """Flip at least one byte of ``split`` (xor with a nonzero mask)."""
    corrupted = split.copy()
    pos = rng.randint(0, len(corrupted) - 1)
    corrupted[pos] ^= rng.randint(1, 255)
    return corrupted


@pytest.mark.parametrize("seed", SEEDS)
def test_roundtrip_from_any_k_survivors(seed):
    rng = RandomSource(seed, "ec-prop/roundtrip")
    codec = _draw_codec(rng)
    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    assert splits.shape == (codec.n, codec.split_size)

    # Any k of the k+r splits reconstruct the page — including sets that
    # replace data splits with parity (the late-binding read path).
    for _ in range(4):
        survivors = rng.sample(range(codec.n), codec.k)
        received = {i: splits[i] for i in survivors}
        assert codec.decode(received) == page

    # k-1 splits are information-theoretically insufficient.
    short = rng.sample(range(codec.n), codec.k - 1)
    with pytest.raises(DecodeError):
        codec.decode({i: splits[i] for i in short})


@pytest.mark.parametrize("seed", SEEDS)
def test_verify_detects_delta_corruptions_with_k_plus_delta(seed):
    rng = RandomSource(seed, "ec-prop/verify")
    codec = _draw_codec(rng)
    delta = rng.randint(1, codec.r)
    assert codec.splits_required(detect_errors=delta) == codec.k + delta

    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    chosen = rng.sample(range(codec.n), codec.k + delta)
    received = {i: splits[i].copy() for i in chosen}
    assert codec.verify(received)
    assert codec.decode_verified(received) == page

    # Corrupt up to delta of the received splits: detection is guaranteed.
    for index in rng.sample(chosen, delta):
        received[index] = _corrupt(rng, received[index])
    assert not codec.verify(received)
    with pytest.raises(CorruptionDetected):
        codec.decode_verified(received)


@pytest.mark.parametrize("seed", SEEDS)
def test_correct_guaranteed_with_k_plus_2delta_plus_1(seed):
    rng = RandomSource(seed, "ec-prop/correct")
    # Guaranteed correction of delta=1 needs k + 3 splits, so r >= 3;
    # keep k small so the C(m, k) majority decode stays cheap.
    k = rng.randint(2, 6)
    r = rng.randint(3, 4)
    codec = PageCodec(k, r, page_size=rng.randint(max(k, 64), 1024))
    assert codec.splits_required(correct_errors=1) == k + 3

    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    chosen = rng.sample(range(codec.n), k + 3)
    received = {i: splits[i].copy() for i in chosen}

    # No corruption: clean page, nothing located.
    data, corrupted = codec.correct(received, max_errors=1)
    assert data == page and corrupted == []

    # One corrupted split: located exactly, page still exact.
    victim = rng.choice(chosen)
    received[victim] = _corrupt(rng, received[victim])
    data, corrupted = codec.correct(received, max_errors=1)
    assert data == page
    assert corrupted == [victim]


@pytest.mark.parametrize("seed", SEEDS)
def test_correct_best_effort_localizes_from_k_plus_2(seed):
    rng = RandomSource(seed, "ec-prop/best-effort")
    k = rng.randint(2, 6)
    r = rng.randint(2, 4)
    codec = PageCodec(k, r, page_size=rng.randint(256, 1024))
    page = _random_page(rng, codec.page_size)
    splits = codec.encode(page)
    chosen = rng.sample(range(codec.n), k + 2)
    received = {i: splits[i].copy() for i in chosen}
    victim = rng.choice(chosen)
    received[victim] = _corrupt(rng, received[victim])
    data, corrupted = codec.correct(received, max_errors=1, best_effort=True)
    assert data == page
    assert corrupted == [victim]


@pytest.mark.parametrize("seed", SEEDS)
def test_cached_row_plans_match_fresh_codec(seed):
    """One codec serving many index tuples (warm caches) must agree with
    a cold codec per call — the cached fast paths cannot drift."""
    rng = RandomSource(seed, "ec-prop/plans")
    k = rng.randint(2, 8)
    r = rng.randint(1, 4)
    page_size = rng.randint(max(k, 64), 1024)
    warm = PageCodec(k, r, page_size=page_size)
    pages = [_random_page(rng, page_size) for _ in range(3)]
    encoded = [warm.encode(page) for page in pages]

    for _ in range(8):
        survivors = rng.sample(range(warm.n), warm.k)
        which = rng.randint(0, len(pages) - 1)
        received = {i: encoded[which][i] for i in survivors}
        cold = PageCodec(k, r, page_size=page_size)
        assert warm.decode(received) == cold.decode(received) == pages[which]
        # Repeat with the warm cache populated for this exact tuple.
        assert warm.decode(received) == pages[which]

    delta = rng.randint(1, warm.r)
    chosen = rng.sample(range(warm.n), warm.k + delta)
    received = {i: encoded[0][i] for i in chosen}
    cold = PageCodec(k, r, page_size=page_size)
    assert warm.verify(received) and cold.verify(received)
    assert warm.verify(received)  # warm _extras_plans path


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_paths_match_per_page(seed):
    rng = RandomSource(seed, "ec-prop/batch")
    codec = _draw_codec(rng, k_max=8)
    pages = [_random_page(rng, codec.page_size) for _ in range(5)]

    batch = codec.encode_batch(pages)
    singles = [codec.encode(page) for page in pages]
    assert batch.shape == (len(pages), codec.n, codec.split_size)
    for got, want in zip(batch, singles):
        assert np.array_equal(got, want)

    indices = sorted(rng.sample(range(codec.n), codec.k))
    stack = np.stack([np.stack([s[i] for i in indices]) for s in singles])
    decoded = codec.decode_batch(indices, stack)
    assert decoded == pages
