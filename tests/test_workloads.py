"""Workload generators: TPC-C, Memcached ETC/SYS, PageRank, fio."""

import pytest

from repro.baselines import BaselineConfig, DirectRemoteMemory
from repro.cluster import Cluster
from repro.net import NetworkConfig
from repro.sim import RandomSource
from repro.vfs import RemoteBlockDevice
from repro.vmm import PagedMemory
from repro.workloads import (
    ETC_GET_FRACTION,
    SYS_GET_FRACTION,
    FioWorkload,
    MemcachedWorkload,
    PageRankWorkload,
    TpccWorkload,
)

from .conftest import drive


def build_memory(n_pages=200, fit=0.5):
    cluster = Cluster(
        machines=6,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        seed=2,
    )
    backend = DirectRemoteMemory(
        cluster, 0, BaselineConfig(slab_size_bytes=1 << 20), payload_mode="phantom"
    )
    pager = PagedMemory(backend, resident_pages=max(1, int(n_pages * fit)))
    return cluster, pager


class TestClosedLoop:
    def test_total_ops_budget_respected(self):
        cluster, pager = build_memory()
        work = TpccWorkload(pager, RandomSource(1), 200, clients=3)
        proc = work.run(total_ops=50)
        drive(cluster.sim, _wrap(proc))
        assert work.stats["ops"] == 50
        assert len(work.latency) == 50

    def test_duration_deadline_respected(self):
        cluster, pager = build_memory()
        work = TpccWorkload(pager, RandomSource(1), 200, clients=2, compute_us=100)
        proc = work.run(duration_us=50_000)
        drive(cluster.sim, _wrap(proc))
        assert cluster.sim.now <= 60_000
        assert work.stats["ops"] > 10

    def test_stop_requests_halt(self):
        cluster, pager = build_memory()
        work = TpccWorkload(pager, RandomSource(1), 200, clients=1)

        def proc():
            run = work.run(total_ops=100000)
            yield cluster.sim.timeout(5_000)
            work.stop()
            yield run
            return work.stats["ops"]

        ops = drive(cluster.sim, proc())
        assert 0 < ops < 100000

    def test_needs_stopping_condition(self):
        cluster, pager = build_memory()
        work = TpccWorkload(pager, RandomSource(1), 200)
        with pytest.raises(ValueError):
            work.run()

    def test_throughput_series_produced(self):
        cluster, pager = build_memory()
        work = TpccWorkload(
            pager, RandomSource(1), 200, clients=2, window_us=10_000
        )
        drive(cluster.sim, _wrap(work.run(total_ops=200)))
        times, tput = work.throughput_series()
        assert len(times) >= 1
        assert tput.sum() > 0


class TestTpcc:
    def test_burst_multiplies_writes(self):
        cluster, pager = build_memory()
        work = TpccWorkload(
            pager, RandomSource(1), 200, clients=1,
            reads_per_txn=2, writes_per_txn=1,
        )
        drive(cluster.sim, _wrap(work.run(total_ops=20)))
        baseline_accesses = pager.stats["hits"] + pager.stats["faults"]
        work.begin_burst(write_multiplier=5)
        drive(cluster.sim, _wrap(work.run(total_ops=20)))
        burst_accesses = (pager.stats["hits"] + pager.stats["faults"]) - baseline_accesses
        assert burst_accesses == 20 * (2 + 5)
        work.end_burst()
        assert work._burst_multiplier == 1

    def test_pages_within_range(self):
        cluster, pager = build_memory()
        work = TpccWorkload(pager, RandomSource(1), 100, clients=1)
        for _ in range(200):
            assert 0 <= work._sample_page() < 100


class TestMemcached:
    def test_mix_fractions(self):
        cluster, pager = build_memory()
        etc = MemcachedWorkload.etc(pager, RandomSource(1), 200, clients=2)
        assert etc.get_fraction == ETC_GET_FRACTION
        drive(cluster.sim, _wrap(etc.run(total_ops=400)))
        gets, sets = etc.stats["gets"], etc.stats["sets"]
        assert gets + sets == 400
        assert gets / 400 == pytest.approx(ETC_GET_FRACTION, abs=0.05)

    def test_sys_is_set_heavy(self):
        cluster, pager = build_memory()
        sys_wl = MemcachedWorkload.sys(pager, RandomSource(2), 200, clients=2)
        assert sys_wl.get_fraction == SYS_GET_FRACTION
        drive(cluster.sim, _wrap(sys_wl.run(total_ops=400)))
        assert sys_wl.stats["sets"] > sys_wl.stats["gets"]

    def test_invalid_fraction(self):
        cluster, pager = build_memory()
        with pytest.raises(ValueError):
            MemcachedWorkload(pager, RandomSource(1), 10, get_fraction=1.5)


class TestPageRank:
    def test_completes_all_steps(self):
        cluster, pager = build_memory(n_pages=50, fit=1.1)
        work = PageRankWorkload(
            pager, RandomSource(3), 50, iterations=2, engine="powergraph"
        )
        assert work.total_steps == 100

        def proc():
            makespan = yield work.run_to_completion()
            return makespan

        makespan = drive(cluster.sim, proc())
        assert makespan > 0
        assert work.stats["ops"] == 100

    def test_graphx_touches_more_pages_per_step(self):
        cluster, pager = build_memory(n_pages=50)
        power = PageRankWorkload(pager, RandomSource(3), 50, engine="powergraph")
        graphx = PageRankWorkload(pager, RandomSource(3), 50, engine="graphx")
        power_touches = sum(len(n) for _p, n in power._plan)
        graphx_touches = sum(len(n) for _p, n in graphx._plan)
        assert graphx_touches > 2 * power_touches

    def test_graphx_slower_at_constrained_memory(self):
        def makespan(engine):
            cluster, pager = build_memory(n_pages=120, fit=0.5)
            work = PageRankWorkload(
                pager, RandomSource(4), 120, iterations=2, engine=engine
            )

            def proc():
                return (yield work.run_to_completion())

            return drive(cluster.sim, proc())

        assert makespan("graphx") > makespan("powergraph")

    def test_unknown_engine_rejected(self):
        cluster, pager = build_memory()
        with pytest.raises(ValueError):
            PageRankWorkload(pager, RandomSource(1), 10, engine="spark")


class TestFio:
    def _device(self):
        cluster = Cluster(
            machines=4,
            memory_per_machine=1 << 26,
            network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
            seed=3,
        )
        backend = DirectRemoteMemory(
            cluster, 0, BaselineConfig(slab_size_bytes=1 << 20),
            payload_mode="phantom",
        )
        return cluster, RemoteBlockDevice(backend)

    def test_mix_and_counts(self):
        cluster, device = self._device()
        work = FioWorkload(
            device, RandomSource(5), n_blocks=100, read_fraction=0.7, queue_depth=4
        )

        def proc():
            yield work.prefill(20)
            yield work.run(total_ops=200)
            return None

        drive(cluster.sim, proc())
        reads, writes = work.stats["read_ops"], work.stats["write_ops"]
        assert reads + writes == 200
        assert reads / 200 == pytest.approx(0.7, abs=0.1)

    def test_reads_only_touch_written_blocks(self):
        cluster, device = self._device()
        work = FioWorkload(device, RandomSource(6), n_blocks=50, read_fraction=1.0)

        def proc():
            yield work.prefill(5)
            yield work.run(total_ops=50)

        drive(cluster.sim, proc())  # must not raise / deadlock

    def test_invalid_fraction(self):
        cluster, device = self._device()
        with pytest.raises(ValueError):
            FioWorkload(device, RandomSource(1), 10, read_fraction=2.0)


def _wrap(process):
    def run():
        yield process
    return run()
