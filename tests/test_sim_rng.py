"""Tests for the seeded randomness layer."""

import numpy as np
import pytest

from repro.sim import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(7, "x")
        b = RandomSource(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        a = RandomSource(7, "x")
        b = RandomSource(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_streams_independent_of_sibling_usage(self):
        parent1 = RandomSource(3)
        parent2 = RandomSource(3)
        # Consuming a sibling stream must not perturb another child.
        noisy = parent1.child("noisy")
        for _ in range(100):
            noisy.random()
        c1 = parent1.child("stable")
        c2 = parent2.child("stable")
        assert [c1.random() for _ in range(5)] == [c2.random() for _ in range(5)]


class TestDraws:
    def test_randint_bounds_inclusive(self):
        rng = RandomSource(1)
        values = {rng.randint(0, 3) for _ in range(500)}
        assert values == {0, 1, 2, 3}

    def test_uniform_bounds(self):
        rng = RandomSource(2)
        for _ in range(100):
            value = rng.uniform(5.0, 6.0)
            assert 5.0 <= value <= 6.0

    def test_pareto_minimum_is_scale(self):
        rng = RandomSource(3)
        assert all(rng.pareto(2.0, scale=10.0) >= 10.0 for _ in range(200))

    def test_exponential_mean(self):
        rng = RandomSource(4)
        samples = [rng.exponential(100.0) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)

    def test_bernoulli_probability(self):
        rng = RandomSource(5)
        hits = sum(rng.bernoulli(0.25) for _ in range(10000))
        assert hits == pytest.approx(2500, rel=0.1)

    def test_lognormal_positive(self):
        rng = RandomSource(6)
        assert all(rng.lognormal(0.0, 0.1) > 0 for _ in range(100))


class TestCollections:
    def test_choice_single(self):
        rng = RandomSource(7)
        seq = ["a", "b", "c"]
        assert rng.choice(seq) in seq

    def test_choice_without_replacement_distinct(self):
        rng = RandomSource(8)
        picked = rng.choice(list(range(10)), size=5, replace=False)
        assert len(set(picked)) == 5

    def test_sample_caps_at_population(self):
        rng = RandomSource(9)
        assert sorted(rng.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_shuffle_is_permutation(self):
        rng = RandomSource(10)
        values = list(range(20))
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == values


class TestZipf:
    def test_range(self):
        sampler = RandomSource(11).zipf_sampler(100, 0.99)
        for _ in range(500):
            assert 0 <= sampler.sample() < 100

    def test_head_is_hotter_than_tail(self):
        sampler = RandomSource(12).zipf_sampler(1000, 0.99)
        draws = sampler.sample_many(20000)
        head = np.sum(draws < 100)
        tail = np.sum(draws >= 900)
        assert head > 5 * tail

    def test_sample_many_matches_range(self):
        sampler = RandomSource(13).zipf_sampler(50, 0.8)
        draws = sampler.sample_many(1000)
        assert draws.min() >= 0 and draws.max() < 50

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            RandomSource(14).zipf_sampler(0, 0.99)
