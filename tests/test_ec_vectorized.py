"""Vectorized multi-page RS operations vs the scalar codec (oracle)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    DecodeError,
    ReedSolomonCode,
    encode_pages,
    rebuild_position,
    rebuild_transform,
)


def _random_pages(code, n_pages, split_size, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, 256, (n_pages, code.k, split_size), dtype=np.uint8
    )


class TestEncodePages:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25)
    def test_matches_per_page_encode(self, k, r, n_pages, seed):
        code = ReedSolomonCode(k, r)
        stack = _random_pages(code, n_pages, split_size=16, seed=seed)
        batched = encode_pages(code, stack)
        assert batched.shape == (n_pages, k + r, 16)
        for page_index in range(n_pages):
            expected = code.encode_page(stack[page_index])
            assert np.array_equal(batched[page_index], expected)

    def test_shape_validation(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(DecodeError):
            encode_pages(code, np.zeros((3, 3, 8), dtype=np.uint8))


class TestRebuildTransform:
    def test_systematic_rows_give_selector(self):
        code = ReedSolomonCode(4, 2)
        transform = rebuild_transform(code, [0, 1, 2, 3], 2)
        expected = np.zeros((1, 4), dtype=np.uint8)
        expected[0, 2] = 1
        assert np.array_equal(transform, expected)

    def test_wrong_source_count_rejected(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(DecodeError):
            rebuild_transform(code, [0, 1, 2], 5)

    def test_target_out_of_range(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(DecodeError):
            rebuild_transform(code, [0, 1, 2, 3], 6)


class TestRebuildPosition:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20)
    def test_rebuilds_exactly_what_the_codec_would(self, seed):
        code = ReedSolomonCode(4, 2)
        split_size = 16
        stack = _random_pages(code, 6, split_size, seed=seed)
        full = encode_pages(code, stack)
        target = 1
        # Sources: every position except the target (like a live regen).
        sources = {
            position: {page: full[page, position] for page in range(6)}
            for position in range(code.n)
            if position != target
        }
        rebuilt = rebuild_position(code, sources, target, split_size)
        for page in range(6):
            assert np.array_equal(rebuilt[page], full[page, target])

    def test_pages_with_too_few_sources_skipped(self):
        code = ReedSolomonCode(4, 2)
        split_size = 8
        stack = _random_pages(code, 2, split_size, seed=3)
        full = encode_pages(code, stack)
        sources = {
            position: {0: full[0, position]} for position in range(4)
        }
        # Page 1 exists at only 3 positions: unrecoverable.
        for position in range(3):
            sources[position][1] = full[1, position]
        rebuilt = rebuild_position(code, sources, 5, split_size)
        assert 0 in rebuilt and 1 not in rebuilt

    def test_mixed_source_sets_grouped_correctly(self):
        """Pages available at different position subsets still rebuild."""
        code = ReedSolomonCode(3, 2)
        split_size = 8
        stack = _random_pages(code, 4, split_size, seed=4)
        full = encode_pages(code, stack)
        sources = {position: {} for position in range(code.n) if position != 0}
        # Page 0: positions 1,2,3; page 1: positions 2,3,4; page 2: all.
        for page, positions in ((0, (1, 2, 3)), (1, (2, 3, 4)), (2, (1, 2, 3, 4))):
            for position in positions:
                sources[position][page] = full[page, position]
        rebuilt = rebuild_position(code, sources, 0, split_size)
        for page in (0, 1, 2):
            assert np.array_equal(rebuilt[page], full[page, 0])
