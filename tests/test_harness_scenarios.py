"""Harness units: time dilation, scenario wiring, cluster-run specs."""

import pytest

from repro.core import DatapathConfig
from repro.harness import ClusterExperiment
from repro.harness.scenarios import (
    SCENARIOS,
    build_pool,
    run_uncertainty_scenario,
    scaled_datapath,
    scaled_network,
    scaled_ssd,
    victim_machines,
)
from repro.net import NetworkConfig

from .conftest import drive


class TestTimeDilation:
    def test_network_ratios_preserved(self):
        base = NetworkConfig()
        scaled = scaled_network(50.0)
        # Every latency x50, bandwidth /50 -> transfer time x50.
        assert scaled.base_latency_us == base.base_latency_us * 50
        assert scaled.transfer_us(4096) == pytest.approx(
            base.transfer_us(4096) * 50
        )
        assert scaled.failure_detect_us == base.failure_detect_us * 50
        # Dimensionless knobs untouched.
        assert scaled.jitter_sigma == base.jitter_sigma
        assert scaled.straggler_prob == base.straggler_prob
        assert scaled.congestion_per_flow == base.congestion_per_flow
        # The key invariant: latency *ratios* are unchanged.
        ratio = lambda c: c.transfer_us(4096) / c.base_latency_us
        assert ratio(scaled) == pytest.approx(ratio(base))

    def test_ssd_ratios_preserved(self):
        scaled = scaled_ssd(10.0)
        base_ratio = 80.0 / 30.0
        assert scaled.read_latency_us / scaled.write_latency_us == pytest.approx(
            base_ratio
        )

    def test_datapath_scaling(self):
        base = DatapathConfig()
        scaled = scaled_datapath(10.0)
        assert scaled.encode_latency_us == base.encode_latency_us * 10
        assert scaled.decode_latency_us == base.decode_latency_us * 10
        assert scaled.post_per_split_us == base.post_per_split_us * 10
        assert scaled.run_to_completion == base.run_to_completion


class TestScenarioWiring:
    def test_build_pool_kinds(self):
        for kind in ("hydra", "replication", "ssd_backup", "direct"):
            cluster, pool = build_pool(kind, machines=12, seed=1)
            assert pool is not None
            assert len(cluster) == 12

    def test_victim_ranking_prefers_heavy_hosts(self):
        cluster, pool = build_pool("hydra", machines=12, seed=2)

        def proc():
            for page in range(10):
                yield pool.write(page)

        drive(cluster.sim, proc(), until=1e9)
        victims = victim_machines(pool, count=3)
        assert len(victims) == 3
        assert all(isinstance(v, int) for v in victims)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_uncertainty_scenario("hydra", "meteor_strike")

    def test_scenarios_constant(self):
        assert set(SCENARIOS) == {"failure", "corruption", "background", "burst"}


class TestClusterExperimentSpecs:
    def test_fit_mix_matches_paper(self):
        experiment = ClusterExperiment("hydra", machines=50, containers=250)
        specs = experiment.build_specs()
        assert len(specs) == 250
        fits = [s.fit for s in specs]
        assert fits.count(1.0) == 125  # 50 %
        assert fits.count(0.75) == 75  # 30 %
        assert fits.count(0.5) == 50  # 20 %

    def test_apps_equally_represented(self):
        experiment = ClusterExperiment("hydra", machines=50, containers=240)
        specs = experiment.build_specs()
        workloads = [s.workload for s in specs]
        assert workloads.count("voltdb") == 80
        assert workloads.count("etc") == 80
        assert workloads.count("sys") == 80

    def test_specs_identical_across_backends(self):
        """Fairness: placement/fits must not depend on the backend."""
        a = ClusterExperiment("hydra", seed=3).build_specs()
        b = ClusterExperiment("ssd_backup", seed=3).build_specs()
        assert [(s.host_id, s.fit, s.workload) for s in a] == [
            (s.host_id, s.fit, s.workload) for s in b
        ]

    def test_memory_budget_derivation(self):
        experiment = ClusterExperiment(
            "hydra", machines=10, containers=10, pages_per_container=100,
            footprint_fraction=0.5,
        )
        footprint = 10 * 100 * 4096
        assert experiment.memory_per_machine == int(footprint / 0.5 / 10)
