"""RDMA fabric tests: verbs, ordering, congestion, failures, partitions."""

import pytest

from repro.cluster import Cluster
from repro.net import (
    NetworkConfig,
    RDMADisconnect,
    RemoteAccessError,
)
from repro.sim import RandomSource

from .conftest import drive


def quiet_config(**overrides):
    """A deterministic network: no jitter, no stragglers."""
    defaults = dict(jitter_sigma=0.0, straggler_prob=0.0)
    defaults.update(overrides)
    return NetworkConfig(**defaults)


@pytest.fixture
def cluster():
    return Cluster(machines=4, network=quiet_config(), seed=1)


class TestVerbs:
    def test_write_then_read(self, cluster):
        sim = cluster.sim
        remote = cluster.machine(1)
        slab = remote.allocate_slab(1 << 20)
        slab.map_to(owner_id=0, range_id=0, split_index=0)
        qp = cluster.fabric.qp(0, 1)

        def proc():
            yield qp.post_write(512, apply=lambda: remote.write_split(slab.slab_id, 7, b"x"))
            value = yield qp.post_read(512, fetch=lambda: remote.read_split(slab.slab_id, 7))
            return value

        assert drive(sim, proc()) == b"x"

    def test_latency_scales_with_size(self, cluster):
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)

        def timed(size):
            start = sim.now
            yield qp.post_read(size, fetch=lambda: None)
            return sim.now - start

        small = drive(sim, timed(512))
        large = drive(sim, timed(1 << 20))
        assert large > small
        # 512 B at 56 Gbps ~ base latency + ~0.07 us.
        assert small == pytest.approx(
            cluster.fabric.config.base_latency_us + 512 / cluster.fabric.config.bytes_per_us
        )

    def test_per_qp_ordering_read_after_write(self, cluster):
        """A read posted after a write on the same QP never sees stale
        data, even though its raw latency would complete it earlier."""
        sim = cluster.sim
        remote = cluster.machine(1)
        slab = remote.allocate_slab(1 << 20)
        slab.map_to(0, 0, 0)
        qp = cluster.fabric.qp(0, 1)

        def proc():
            # Big write (slow), then small read (fast): order must hold.
            qp.post_write(
                1 << 20, apply=lambda: remote.write_split(slab.slab_id, 0, "new")
            )
            value = yield qp.post_read(
                64, fetch=lambda: remote.read_split(slab.slab_id, 0)
            )
            return value

        assert drive(sim, proc()) == "new"

    def test_send_delivers_message(self, cluster):
        sim = cluster.sim
        inbox = []
        cluster.machine(2).add_message_handler(lambda src, msg: inbox.append((src, msg)))
        qp = cluster.fabric.qp(0, 2)

        def proc():
            yield qp.post_send({"hello": 1})

        drive(sim, proc())
        assert inbox == [(0, {"hello": 1})]

    def test_send_has_extra_overhead(self, cluster):
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)

        def timed():
            start = sim.now
            yield qp.post_read(64, fetch=lambda: None)
            one_sided = sim.now - start
            start = sim.now
            yield qp.post_send("ping", size_bytes=64)
            two_sided = sim.now - start
            return one_sided, two_sided

        one_sided, two_sided = drive(sim, timed())
        assert two_sided > one_sided

    def test_remote_access_error_fails_event(self, cluster):
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)

        def proc():
            with pytest.raises(RemoteAccessError):
                yield qp.post_read(
                    64, fetch=lambda: cluster.machine(1).read_split(999, 0)
                )
            return "ok"

        assert drive(sim, proc()) == "ok"

    def test_no_loopback_qp(self, cluster):
        with pytest.raises(ValueError):
            cluster.fabric.qp(1, 1)


class TestCongestionAndStragglers:
    def test_background_flow_inflates_latency(self):
        cluster = Cluster(machines=3, network=quiet_config(), seed=2)
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)
        config = cluster.fabric.config

        def timed(size):
            start = sim.now
            yield qp.post_read(size, fetch=lambda: None)
            baseline = sim.now - start
            cluster.machine(1).nic.background_flows = 2
            start = sim.now
            yield qp.post_read(size, fetch=lambda: None)
            congested = sim.now - start
            cluster.machine(1).nic.background_flows = 0
            return baseline, congested

        baseline, congested = drive(sim, timed(512))
        inflation = 2 * config.congestion_per_flow
        expected_extra = inflation * (
            config.transfer_us(512) + 0.2 * config.base_latency_us
        )
        assert congested == pytest.approx(baseline + expected_extra)

    def test_congestion_penalizes_large_messages_more(self):
        """Queuing delay scales with message bytes: split-sized messages
        dodge bulk flows far better than whole pages (§4.1)."""
        cluster = Cluster(machines=3, network=quiet_config(), seed=2)
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)
        cluster.machine(1).nic.background_flows = 3

        def timed(size):
            start = sim.now
            yield qp.post_read(size, fetch=lambda: None)
            return sim.now - start

        small = drive(sim, timed(512))
        large = drive(sim, timed(4096))
        uncongested_gap = cluster.fabric.config.transfer_us(4096 - 512)
        assert large - small > 2 * uncongested_gap

    def test_stragglers_create_tail(self):
        config = quiet_config(straggler_prob=0.2, straggler_scale_us=50.0)
        cluster = Cluster(machines=3, network=config, seed=3)
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)

        def run():
            samples = []
            for _ in range(300):
                start = sim.now
                yield qp.post_read(512, fetch=lambda: None)
                samples.append(sim.now - start)
            return samples

        samples = drive(sim, run())
        samples.sort()
        p50 = samples[len(samples) // 2]
        p99 = samples[int(len(samples) * 0.99)]
        assert p99 > 10 * p50  # heavy tail present


class TestFailures:
    def test_pending_ops_fail_on_machine_death(self, cluster):
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)

        def proc():
            event = qp.post_read(1 << 20, fetch=lambda: None)  # slow op
            cluster.machine(1).fail()
            with pytest.raises(RDMADisconnect):
                yield event
            return sim.now

        # Failure is detected after the RC retry timeout.
        now = drive(sim, proc())
        assert now >= cluster.fabric.config.failure_detect_us

    def test_post_to_dead_machine_fails(self, cluster):
        sim = cluster.sim
        cluster.machine(1).fail()
        qp = cluster.fabric.qp(0, 1)

        def proc():
            with pytest.raises(RDMADisconnect):
                yield qp.post_read(64, fetch=lambda: None)
            return "ok"

        assert drive(sim, proc()) == "ok"

    def test_disconnect_listener_notified(self, cluster):
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)
        notified = []
        qp.on_disconnect(notified.append)

        def proc():
            event = qp.post_read(64, fetch=lambda: None)
            cluster.machine(1).fail()
            yield sim.timeout(cluster.fabric.config.failure_detect_us + 10)

        drive(sim, proc())
        assert notified == [1]

    def test_recovery_reconnects(self, cluster):
        sim = cluster.sim
        qp = cluster.fabric.qp(0, 1)
        cluster.machine(1).fail()
        cluster.machine(1).recover()

        def proc():
            value = yield qp.post_read(64, fetch=lambda: "alive")
            return value

        assert drive(sim, proc()) == "alive"

    def test_machine_memory_lost_on_failure(self, cluster):
        machine = cluster.machine(1)
        slab = machine.allocate_slab(1 << 20)
        machine.fail()
        assert machine.hosted_slabs == {}


class TestPerQpOrderingStress:
    """Randomized per-QP ordering under the fused-completion fast path.

    The RC contract the Resilience Manager builds read-after-write safety
    on: completions on one QP are delivered strictly in post order, no
    matter how the per-op latencies (sizes, jitter, stragglers,
    congestion) would reorder them. Each seed draws a fresh interleaving
    of one-sided READ/WRITE and two-sided SEND at random sizes from 64 B
    to 256 KB and checks both the completion sequence and that completion
    timestamps never go backwards.
    """

    VERBS = ("read", "write", "send")

    @pytest.mark.parametrize("seed", range(20))
    def test_interleaved_verbs_complete_in_post_order(self, seed):
        rng = RandomSource(seed, "rdma-ordering-stress")
        # Noisy latency model on purpose — ordering may not depend on it.
        config = NetworkConfig(straggler_prob=0.15, straggler_scale_us=40.0)
        cluster = Cluster(machines=3, network=config, seed=seed)
        sim = cluster.sim
        inbox = []
        cluster.machine(1).add_message_handler(
            lambda src, msg: inbox.append(msg["op"])
        )
        qp = cluster.fabric.qp(0, 1)

        n = 40
        sends = []
        completions = []
        completion_times = []

        def on_complete(event, op=None):
            completions.append(op)
            completion_times.append(sim.now)

        for op in range(n):
            size = rng.randint(64, 256 * 1024)
            verb = rng.choice(self.VERBS)
            if verb == "read":
                event = qp.post_read(size, fetch=lambda op=op: op)
            elif verb == "write":
                event = qp.post_write(size, apply=lambda op=op: op)
            else:
                event = qp.post_send({"op": op}, size_bytes=size)
                sends.append(op)
            event.callbacks.append(
                lambda ev, op=op: on_complete(ev, op=op)
            )
        sim.run()

        assert completions == list(range(n))
        assert completion_times == sorted(completion_times)
        # Two-sided sends arrived, and in post order too.
        assert inbox == sends


class TestPartitions:
    def test_partition_blocks_both_directions(self, cluster):
        sim = cluster.sim
        cluster.fabric.partition(0, 1)
        assert not cluster.fabric.reachable(0, 1)
        assert not cluster.fabric.reachable(1, 0)
        assert cluster.fabric.reachable(0, 2)

        def proc():
            with pytest.raises(RDMADisconnect):
                yield cluster.fabric.qp(0, 1).post_read(64, fetch=lambda: None)
            return "ok"

        assert drive(sim, proc()) == "ok"

    def test_heal_restores(self, cluster):
        sim = cluster.sim
        cluster.fabric.partition(0, 1)
        cluster.fabric.heal(0, 1)
        assert cluster.fabric.reachable(0, 1)

        def proc():
            return (yield cluster.fabric.qp(0, 1).post_read(64, fetch=lambda: 5))

        assert drive(sim, proc()) == 5
