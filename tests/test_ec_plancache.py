"""Bounded LRU plan cache: eviction order, counters, codec integration.

The four unbounded per-pattern caches in ``ReedSolomonCode`` were
replaced by one shared :class:`PlanCache`; these tests pin the LRU
contract (capacity bound, move-to-end on hit, cold-end eviction), the
hit/miss/eviction counters and their MetricsRegistry mirror, and that a
capacity-starved codec still decodes correctly — plans are recompiled on
re-miss, never served stale.
"""

import numpy as np
import pytest

from repro.ec import PageCodec
from repro.ec.plancache import PlanCache
from repro.obs import MetricsRegistry


def test_capacity_bound_and_cold_end_eviction():
    cache = PlanCache(capacity=3)
    for key in ("a", "b", "c"):
        cache.put(key, key.upper())
    assert len(cache) == 3 and cache.evictions == 0

    cache.put("d", "D")  # evicts "a", the cold end
    assert len(cache) == 3
    assert "a" not in cache
    assert cache.get("a") is None
    assert cache.evictions == 1


def test_get_refreshes_lru_order():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # "a" becomes most-recently-used
    cache.put("c", 3)  # so "b" is the one evicted
    assert "a" in cache and "c" in cache and "b" not in cache


def test_put_refreshes_existing_key_without_eviction():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert
    assert len(cache) == 2 and cache.evictions == 0
    assert cache.get("a") == 10
    cache.put("c", 3)  # "b" is now the cold end
    assert "b" not in cache


def test_counters_and_snapshot():
    cache = PlanCache(capacity=1)
    assert cache.get("x") is None
    cache.put("x", 1)
    assert cache.get("x") == 1
    cache.put("y", 2)
    snap = cache.snapshot()
    assert snap == {
        "size": 1,
        "capacity": 1,
        "hits": 1,
        "misses": 1,
        "evictions": 1,
    }


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_env_default_capacity(monkeypatch):
    monkeypatch.setenv("REPRO_EC_PLAN_CACHE_CAP", "7")
    from repro.ec import plancache

    assert plancache._default_capacity() == 7
    monkeypatch.setenv("REPRO_EC_PLAN_CACHE_CAP", "not-a-number")
    assert plancache._default_capacity() == 512
    monkeypatch.setenv("REPRO_EC_PLAN_CACHE_CAP", "-3")
    assert plancache._default_capacity() == 1


def test_eviction_counter_mirrors_into_metrics_registry():
    metrics = MetricsRegistry()
    counter = metrics.counter("rm.0.ec.plan_evictions")
    cache = PlanCache(capacity=1)
    cache.bind_eviction_counter(counter)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert cache.evictions == 2
    assert counter.value == 2


def test_codec_replaces_evicted_plans_correctly():
    """A capacity-starved codec churns through more erasure patterns than
    the cache holds; every decode must still roundtrip (recompile on
    re-miss, never a stale or missing plan)."""
    codec = PageCodec(4, 2, page_size=256, plan_cache_capacity=2)
    page = bytes(range(256))
    splits = codec.encode(page)
    import itertools

    patterns = list(itertools.combinations(range(codec.n), codec.k))
    for _ in range(2):  # second sweep re-misses everything evicted
        for indices in patterns:
            decoded = codec.decode({i: splits[i] for i in indices})
            assert decoded == page
    cache = codec.code.plan_cache
    assert len(cache) <= cache.capacity == 2
    assert cache.evictions > 0


def test_codec_shares_one_cache_across_plan_kinds():
    """Decode plans, extras transforms and rebuild rows all land in the
    same bounded cache (namespaced keys)."""
    codec = PageCodec(3, 2, page_size=96, plan_cache_capacity=16)
    page = bytes(range(96))
    splits = codec.encode(page)
    assert codec.decode({i: splits[i] for i in (0, 2, 4)}) == page
    assert codec.verify({i: splits[i] for i in range(4)})
    kinds = {key[0] for key in codec.code.plan_cache._entries}
    assert len(kinds) >= 2  # more than one plan family in the shared map
