"""Randomized chaos testing with hard invariants.

A seeded chaos driver interleaves application I/O with failures,
recoveries, partitions, heals, and evictions, while never exceeding
Hydra's declared tolerance (at most r of a range's hosts unavailable at
once). Under that contract the invariants are absolute:

* every read returns exactly the last-written bytes;
* no read ever fails;
* after quiescing, every range is fully regenerated.

Corruption is exercised separately (its §5.1 guarantee is weaker — see
TestCorruptionChaos) and in the dedicated RM tests.
"""

import pytest

from repro.cluster import Cluster
from repro.core import HydraConfig, HydraDeployment
from repro.net import NetworkConfig
from repro.sim import RandomSource

from .conftest import drive, make_page

K, R = 4, 2
N_PAGES = 24
OPS = 150


def deploy(seed):
    cluster = Cluster(
        machines=14,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.03, straggler_prob=0.01),
        seed=seed,
    )
    config = HydraConfig(
        k=K, r=R, delta=1, slab_size_bytes=1 << 20,
        payload_mode="real", control_period_us=20_000,
    )
    return cluster, HydraDeployment(cluster, config, seed=seed)


@pytest.mark.parametrize("seed", [1, 7, 23, 91])
def test_chaos_within_tolerance_never_loses_data(seed):
    cluster, deployment = deploy(seed)
    sim = cluster.sim
    rm = deployment.manager(0)
    rng = RandomSource(seed, "chaos")
    model = {}

    def hosts_of_ranges():
        ids = set()
        for address_range in rm.space.all_ranges():
            ids.update(h.machine_id for h in address_range.slots)
        return ids

    def downed_hosts():
        return [m.id for m in cluster.machines if not m.alive]

    def driver():
        # Seed the working set.
        for pid in range(N_PAGES):
            data = make_page((seed, pid).__hash__() & 0x7FFFFFFF)
            model[pid] = data
            yield rm.write(pid, data)

        partitioned = []
        for _step in range(OPS):
            action = rng.random()
            if action < 0.45:
                pid = rng.randint(0, N_PAGES - 1)
                data = make_page(rng.randint(0, 1 << 30))
                model[pid] = data
                yield rm.write(pid, data)
            elif action < 0.85:
                pid = rng.randint(0, N_PAGES - 1)
                got = yield rm.read(pid)
                assert got == model[pid], f"page {pid} wrong at step {_step}"
            elif action < 0.92:
                # Crash a slab host, if tolerance allows one more loss.
                down = downed_hosts()
                if len(down) + len(partitioned) < R:
                    candidates = [
                        m for m in hosts_of_ranges()
                        if cluster.machine(m).alive and m not in partitioned
                    ]
                    if candidates:
                        cluster.machine(rng.choice(candidates)).fail()
                        yield sim.timeout(100)
            elif action < 0.96:
                # Recover someone (empty memory: their slabs are gone).
                down = downed_hosts()
                if down:
                    cluster.machine(rng.choice(down)).recover()
                    yield sim.timeout(100)
            else:
                # Partition or heal.
                if partitioned and rng.bernoulli(0.5):
                    peer = partitioned.pop()
                    cluster.fabric.heal(0, peer)
                elif len(partitioned) + len(downed_hosts()) < R:
                    candidates = [
                        m for m in hosts_of_ranges()
                        if cluster.machine(m).alive and m not in partitioned
                    ]
                    if candidates:
                        peer = rng.choice(candidates)
                        cluster.fabric.partition(0, peer)
                        partitioned.append(peer)
                yield sim.timeout(100)

        # Quiesce: heal everything, let regeneration finish.
        for peer in partitioned:
            cluster.fabric.heal(0, peer)
        for machine in cluster.machines:
            if not machine.alive:
                machine.recover()
        yield sim.timeout(20_000_000)

        # Final audit: every page intact, every range whole.
        for pid, data in model.items():
            got = yield rm.read(pid)
            assert got == data, f"page {pid} corrupt after quiesce"
        for address_range in rm.space.all_ranges():
            assert len(address_range.available_positions()) == K + R
        return rm.events["read_failures"]

    read_failures = drive(sim, driver(), until=1e11)
    assert read_failures == 0


@pytest.mark.parametrize("seed", [3, 17])
def test_corruption_chaos_heals_to_consistency(seed):
    """With corruption in the mix the §5.1 guarantee is weaker (detection
    lags by a background check), but the system must converge: after the
    error machinery has run, every page reads back correctly."""
    from repro.cluster import CorruptionInjector

    cluster, deployment = deploy(seed)
    sim = cluster.sim
    rm = deployment.manager(0)
    rng = RandomSource(seed, "corrupt-chaos")
    model = {}

    def driver():
        for pid in range(N_PAGES):
            data = make_page(pid)
            model[pid] = data
            yield rm.write(pid, data)
        injector = CorruptionInjector(sim, rng.child("inj"))
        hosts = [h.machine_id for h in rm.space.get(0).slots]
        injector.corrupt_machine(cluster.machine(rng.choice(hosts)), fraction=0.6)
        # Read everything a few times to drive detection/healing/regen.
        for _round in range(3):
            for pid in model:
                yield rm.read(pid)
            yield sim.timeout(5_000_000)
        wrong = 0
        for pid, data in model.items():
            got = yield rm.read(pid)
            wrong += got != data
        return wrong

    assert drive(sim, driver(), until=1e11) == 0
