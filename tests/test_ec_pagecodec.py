"""Page-level codec: split/join, padding, end-to-end page recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import PAGE_SIZE, CorruptionDetected, PageCodec

from .conftest import make_page


class TestSplitJoin:
    def test_roundtrip(self):
        codec = PageCodec(8, 2)
        page = make_page(1)
        assert codec.join(codec.split(page)) == page

    def test_split_size_default(self):
        codec = PageCodec(8, 2)
        assert codec.split_size == 512
        assert codec.padded_size == 4096

    def test_padding_when_k_does_not_divide(self):
        codec = PageCodec(3, 1, page_size=100)
        assert codec.split_size == 34  # ceil(100/3)
        page = bytes(range(100))
        splits = codec.split(page)
        assert splits.shape == (3, 34)
        assert codec.join(splits) == page

    def test_wrong_page_size_rejected(self):
        codec = PageCodec(4, 2)
        with pytest.raises(ValueError):
            codec.split(b"short")

    def test_wrong_shape_join_rejected(self):
        codec = PageCodec(4, 2)
        with pytest.raises(ValueError):
            codec.join(np.zeros((2, 10), dtype=np.uint8))

    def test_k_larger_than_page_rejected(self):
        with pytest.raises(ValueError):
            PageCodec(10, 1, page_size=5)


class TestEndToEnd:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25)
    def test_encode_decode_any_k(self, k, r, seed):
        codec = PageCodec(k, r, page_size=256)
        rng = np.random.default_rng(seed)
        page = rng.integers(0, 256, 256, dtype=np.uint8).tobytes()
        splits = codec.encode(page)
        chosen = rng.choice(k + r, size=k, replace=False)
        assert codec.decode({int(i): splits[int(i)] for i in chosen}) == page

    def test_decode_verified_detects(self):
        codec = PageCodec(4, 2)
        splits = codec.encode(make_page(2))
        received = {i: splits[i].copy() for i in range(5)}
        received[3][9] ^= 0x80
        with pytest.raises(CorruptionDetected):
            codec.decode_verified(received)

    def test_correct_repairs_page(self):
        codec = PageCodec(4, 3)
        page = make_page(3)
        splits = codec.encode(page)
        received = {i: splits[i].copy() for i in range(7)}
        received[1][0] ^= 0x11
        fixed, corrupted = codec.correct(received, max_errors=1)
        assert fixed == page
        assert corrupted == [1]

    def test_default_page_size_is_4k(self):
        assert PAGE_SIZE == 4096


class TestRequirements:
    def test_table1_rows(self):
        codec = PageCodec(8, 2)
        assert codec.splits_required() == 8
        assert codec.splits_required(detect_errors=1) == 9
        assert codec.splits_required(correct_errors=1) == 11

    def test_properties(self):
        codec = PageCodec(8, 2)
        assert codec.k == 8 and codec.r == 2 and codec.n == 10
