"""Tests for the ``repro perf --compare`` regression gate.

The gate (``compare_results``) has three rules: baseline benchmarks must
be present, wall-clock rates may not drop below ``baseline * (1 -
tolerance)``, and — when both documents ran the same mode — the
simulated-time anchors must be *equal* (drift is a semantics change, not
a perf regression). The CLI returns 3 on gate failure, 2 on usage
errors, 0 when green.
"""

import copy
import json

import pytest

from repro.harness import perf
from repro.harness.perf import compare_results


def _doc(quick=True):
    return {
        "schema": "hydra-perf/1",
        "quick": quick,
        "benchmarks": {
            "engine_events": {
                "events": 40_008,
                "sim_now_us": 5000.0,
                "events_per_sec": 800_000,
                "seconds": 0.05,
            },
            "ec_correct": {
                "pages": 64,
                "mb": 0.25,
                "mb_per_sec": 40.0,
                "seconds": 0.006,
            },
            "rm_end_to_end": {
                "ops": 300,
                "sim_now_us": 2672.57,
                "pages_sha256": "abc123",
                "pages_per_sec": 4500.0,
                "seconds": 0.13,
            },
        },
    }


def test_identical_documents_pass():
    assert compare_results(_doc(), _doc()) == []


def test_rate_regression_fails():
    current = _doc()
    current["benchmarks"]["ec_correct"]["mb_per_sec"] = 10.0
    failures = compare_results(current, _doc(), tolerance=0.2)
    assert len(failures) == 1
    assert "ec_correct" in failures[0] and "mb_per_sec" in failures[0]


def test_rate_within_tolerance_passes():
    current = _doc()
    current["benchmarks"]["ec_correct"]["mb_per_sec"] = 33.0  # floor is 32
    assert compare_results(current, _doc(), tolerance=0.2) == []


def test_rate_improvement_passes():
    current = _doc()
    current["benchmarks"]["ec_correct"]["mb_per_sec"] = 400.0
    assert compare_results(current, _doc(), tolerance=0.0) == []


def test_missing_benchmark_fails():
    current = _doc()
    del current["benchmarks"]["rm_end_to_end"]
    failures = compare_results(current, _doc())
    assert failures == ["rm_end_to_end: present in baseline but missing from run"]


def test_benchmark_only_in_current_is_ignored():
    current = _doc()
    current["benchmarks"]["rm_corrupted"] = {"pages_per_sec": 1.0}
    assert compare_results(current, _doc()) == []


def test_anchor_drift_fails_at_any_tolerance():
    current = _doc()
    current["benchmarks"]["rm_end_to_end"]["pages_sha256"] = "def456"
    failures = compare_results(current, _doc(), tolerance=0.99)
    assert len(failures) == 1
    assert "anchor pages_sha256 moved" in failures[0]


def test_anchors_not_compared_across_modes():
    current = _doc(quick=False)
    current["benchmarks"]["rm_end_to_end"]["pages_sha256"] = "def456"
    current["benchmarks"]["rm_end_to_end"]["sim_now_us"] = 9999.0
    assert compare_results(current, _doc(quick=True)) == []


def test_anchor_fields_absent_from_baseline_are_skipped():
    # A baseline recorded before an anchor existed must still compare.
    baseline = _doc()
    del baseline["benchmarks"]["rm_end_to_end"]["pages_sha256"]
    assert compare_results(_doc(), baseline) == []


class TestCli:
    @pytest.fixture
    def fake_suite(self, monkeypatch):
        doc = _doc()
        monkeypatch.setattr(perf, "run_perf_suite", lambda **kw: copy.deepcopy(doc))
        monkeypatch.setattr(perf, "format_results", lambda d: "(fake results)")
        return doc

    def test_green_gate_exits_zero(self, tmp_path, fake_suite):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_doc()))
        out = tmp_path / "out.json"
        assert perf.main(["--compare", str(base), "--output", str(out)]) == 0
        assert json.loads(out.read_text())["schema"] == "hydra-perf/1"

    def test_regression_exits_three(self, tmp_path, fake_suite):
        baseline = _doc()
        baseline["benchmarks"]["ec_correct"]["mb_per_sec"] = 4000.0
        base = tmp_path / "base.json"
        base.write_text(json.dumps(baseline))
        out = tmp_path / "out.json"
        assert (
            perf.main(
                ["--compare", str(base), "--tolerance", "0.5",
                 "--output", str(out)]
            )
            == 3
        )

    def test_baseline_read_before_output_overwrites(self, tmp_path, fake_suite):
        # --compare and --output pointing at the same file: the baseline
        # must be the pre-run bytes, so a green self-compare exits 0 even
        # though the run rewrites the file.
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(_doc()))
        assert perf.main(["--compare", str(path), "--output", str(path)]) == 0

    def test_unreadable_baseline_exits_two(self, tmp_path, fake_suite):
        assert (
            perf.main(["--compare", str(tmp_path / "missing.json")]) == 2
        )

    def test_bad_tolerance_exits_two(self, fake_suite):
        assert perf.main(["--tolerance", "1.5"]) == 2
        assert perf.main(["--tolerance"]) == 2
        assert perf.main(["--compare"]) == 2


class TestBaselineSchema:
    @pytest.fixture
    def fake_suite(self, monkeypatch):
        doc = _doc()
        monkeypatch.setattr(perf, "run_perf_suite", lambda **kw: copy.deepcopy(doc))
        monkeypatch.setattr(perf, "format_results", lambda d: "(fake results)")
        return doc

    def test_unknown_schema_exits_two(self, tmp_path, fake_suite, capsys):
        baseline = _doc()
        baseline["schema"] = "hydra-perf/999"
        base = tmp_path / "base.json"
        base.write_text(json.dumps(baseline))
        assert perf.main(["--compare", str(base)]) == 2
        err = capsys.readouterr().err
        assert "hydra-perf/999" in err and "regenerate" in err

    def test_missing_schema_exits_two(self, tmp_path, fake_suite, capsys):
        baseline = _doc()
        del baseline["schema"]
        base = tmp_path / "base.json"
        base.write_text(json.dumps(baseline))
        assert perf.main(["--compare", str(base)]) == 2
        assert "expected" in capsys.readouterr().err

    def test_non_object_baseline_exits_two(self, tmp_path, fake_suite):
        base = tmp_path / "base.json"
        base.write_text(json.dumps([1, 2, 3]))
        assert perf.main(["--compare", str(base)]) == 2
