"""Harness: builders, microbench, tradeoff, reports (fast configurations)."""

import numpy as np
import pytest

from repro.harness import (
    NamespacedPool,
    build_backend,
    build_hydra_cluster,
    format_series,
    format_table,
    ascii_timeline,
    banner,
    measure_latency,
    measure_tradeoff_point,
    page_generator,
    run_process,
)
from repro.cluster import Cluster

from .conftest import drive


class TestBuilders:
    def test_hydra_cluster_roundtrip(self):
        hydra = build_hydra_cluster(machines=8, k=4, r=2, seed=7)
        rm = hydra.remote_memory(0)
        page = page_generator()(0)

        def proc():
            yield rm.write(0, page)
            return (yield rm.read(0))

        assert drive(hydra.sim, proc()) == page

    def test_backend_factory_kinds(self):
        for kind in ("replication", "compressed", "direct"):
            cluster = Cluster(machines=6, memory_per_machine=1 << 26, seed=1)
            backend = build_backend(kind, cluster)
            assert backend.name in ("replication", "compressed", "direct")

    def test_backend_factory_rejects_unknown(self):
        cluster = Cluster(machines=4, seed=1)
        with pytest.raises(ValueError):
            build_backend("floppy_backup", cluster)
        with pytest.raises(ValueError):
            build_backend("hydra", cluster)

    def test_namespaced_pool_separates_pages(self):
        hydra = build_hydra_cluster(
            machines=8, k=2, r=1, seed=7, payload_mode="phantom"
        )
        rm = hydra.remote_memory(0)
        a = NamespacedPool(rm, base_page=0)
        b = NamespacedPool(rm, base_page=1 << 20)

        def proc():
            yield a.write(0)
            yield b.write(0)
            return rm.remote_pages()

        assert drive(hydra.sim, proc()) == 2


class TestMicrobench:
    def test_measure_latency_summaries(self):
        hydra = build_hydra_cluster(machines=8, k=4, r=2, seed=3)
        result = measure_latency(
            hydra.remote_memory(0),
            hydra.sim,
            label="hydra",
            n_pages=16,
            writes=40,
            reads=40,
        )
        assert result.read.count == 40
        assert result.write.count == 40
        assert 0 < result.read.p50 < 50
        assert "read p50" in str(result)

    def test_run_process_reports_failure(self):
        hydra = build_hydra_cluster(machines=4, k=2, r=1, seed=3)
        sim = hydra.sim

        def boom():
            yield sim.timeout(1)
            raise RuntimeError("exploded")

        with pytest.raises(RuntimeError, match="exploded"):
            run_process(sim, sim.process(boom()))

    def test_run_process_detects_stall(self):
        hydra = build_hydra_cluster(machines=4, k=2, r=1, seed=3)
        sim = hydra.sim

        def forever():
            yield sim.event()  # never triggers

        with pytest.raises(RuntimeError, match="did not finish"):
            run_process(sim, sim.process(forever()), until=100.0)


class TestTradeoff:
    def test_hydra_point(self):
        # Default hydra tradeoff config is (8+2): needs 10 peers + client.
        point = measure_tradeoff_point(
            "hydra", machines=12, n_pages=16, ops=60, with_failure=False
        )
        assert point.memory_overhead == 1.25
        assert point.read_p50_us < 10

    def test_ssd_backup_under_failure_is_disk_bound(self):
        point = measure_tradeoff_point(
            "ssd_backup", machines=10, n_pages=16, ops=60, with_failure=True
        )
        assert point.memory_overhead == 1.0
        assert point.read_p50_us > 50  # disk latency dominates

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            measure_tradeoff_point("raid0")


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["hydra", 1.25], ["replication", 2.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.25" in lines[2]

    def test_format_series(self):
        text = format_series("tput", [0, 1], [10.0, 20.0])
        assert text == "tput: 0=10.0, 1=20.0"

    def test_ascii_timeline(self):
        series = {
            "a": (np.arange(10), np.linspace(0, 100, 10)),
            "b": (np.arange(10), np.full(10, 50.0)),
        }
        art = ascii_timeline(series)
        assert "a |" in art and "b |" in art

    def test_banner(self):
        assert "Fig 1" in banner("Fig 1")
