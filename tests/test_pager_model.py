"""Model-based testing of the pager against a reference implementation.

A hypothesis-driven access sequence runs simultaneously against the real
:class:`PagedMemory` (over a deterministic remote backend) and a trivial
in-process reference model; contents must agree at every step, and the
LRU invariants must hold throughout.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BaselineConfig, DirectRemoteMemory
from repro.cluster import Cluster
from repro.net import NetworkConfig
from repro.vmm import PagedMemory

from .conftest import drive, make_page

N_PAGES = 12
RESIDENT = 4


def build_pager():
    cluster = Cluster(
        machines=5,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        seed=9,
    )
    backend = DirectRemoteMemory(
        cluster, 0, BaselineConfig(slab_size_bytes=1 << 20)
    )
    pager = PagedMemory(backend, resident_pages=RESIDENT, verify_contents=True)
    return cluster, pager


# An access is (page_id, is_write, content_token).
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_PAGES - 1),
        st.booleans(),
        st.integers(min_value=0, max_value=1 << 20),
    ),
    min_size=1,
    max_size=60,
)


@given(accesses)
@settings(max_examples=15, deadline=None)
def test_pager_matches_reference_model(sequence):
    cluster, pager = build_pager()
    reference = {}

    def driver():
        for page_id, is_write, token in sequence:
            if is_write:
                data = make_page(token)
                reference[page_id] = data
                got = yield pager.access(page_id, write=True, data=data)
                assert got == data
            else:
                got = yield pager.access(page_id)
                assert got == reference.get(page_id), (
                    f"page {page_id}: pager disagrees with the model"
                )
            # Invariants after every access:
            assert pager.resident_count <= RESIDENT
            assert page_id in pager._resident  # just-touched page resident
        return "ok"

    assert drive(cluster.sim, driver(), until=1e10) == "ok"
    assert pager.verification_failures == 0


@given(accesses)
@settings(max_examples=8, deadline=None)
def test_pager_lru_order_is_recency_order(sequence):
    """The pager's eviction order must equal the recency order of a
    reference OrderedDict LRU."""
    cluster, pager = build_pager()
    reference_lru = OrderedDict()

    def driver():
        for page_id, is_write, token in sequence:
            data = make_page(token) if is_write else None
            yield pager.access(page_id, write=is_write, data=data)
            if page_id in reference_lru:
                reference_lru.move_to_end(page_id)
            else:
                reference_lru[page_id] = True
                while len(reference_lru) > RESIDENT:
                    reference_lru.popitem(last=False)
        return "ok"

    drive(cluster.sim, driver(), until=1e10)
    assert list(pager._resident) == list(reference_lru)
