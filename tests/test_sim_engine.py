"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    Timeout,
)

from .conftest import drive


class TestEvent:
    def test_succeed_sets_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_fail_sets_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.exception is error
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(ValueError("x"))

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_callbacks_run_on_processing(self, sim):
        event = sim.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("hello")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["hello"]


class TestTimeout:
    def test_advances_clock(self, sim):
        def proc():
            yield sim.timeout(10.5)
            return sim.now

        assert drive(sim, proc()) == 10.5

    def test_zero_delay_is_fine(self, sim):
        def proc():
            yield sim.timeout(0.0)
            return sim.now

        assert drive(sim, proc()) == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeout_value_passes_through(self, sim):
        def proc():
            result = yield sim.timeout(1.0, value="payload")
            return result

        assert drive(sim, proc()) == "payload"

    def test_timeouts_fire_in_order(self, sim):
        order = []

        def waiter(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(waiter(5, "b"))
        sim.process(waiter(2, "a"))
        sim.process(waiter(9, "c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_at_same_instant(self, sim):
        order = []

        def waiter(tag):
            yield sim.timeout(3)
            order.append(tag)

        for tag in ("x", "y", "z"):
            sim.process(waiter(tag))
        sim.run()
        assert order == ["x", "y", "z"]


class TestProcess:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        assert drive(sim, proc()) == "done"

    def test_exception_propagates_to_waiter(self, sim):
        def failing():
            yield sim.timeout(1)
            raise ValueError("inner")

        def outer():
            with pytest.raises(ValueError, match="inner"):
                yield sim.process(failing())
            return "caught"

        assert drive(sim, outer()) == "caught"

    def test_process_is_event(self, sim):
        def child():
            yield sim.timeout(3)
            return 7

        def parent():
            value = yield sim.process(child())
            return value * 2

        assert drive(sim, parent()) == 14

    def test_yield_non_event_fails_process(self, sim):
        def bad():
            yield 42

        process = sim.process(bad())
        sim.run()
        assert not process.ok
        assert isinstance(process.exception, SimulationError)

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yield_already_processed_event(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()
        assert done.processed

        def proc():
            value = yield done
            return value

        assert drive(sim, proc()) == "early"

    def test_interrupt_delivers_cause(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))
                return "interrupted"
            return "slept"

        def interrupter(target):
            yield sim.timeout(5)
            target.interrupt("wake up")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert target.value == "interrupted"
        # Delivered at t=5; the orphaned timeout still drains at t=100.
        assert log == [(5.0, "wake up")]

    def test_interrupt_dead_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1)

        process = sim.process(quick())
        sim.run()
        process.interrupt("too late")  # must not raise
        sim.run()


class TestConditions:
    def test_any_of_first_wins(self, sim):
        def waiter(delay, value):
            yield sim.timeout(delay)
            return value

        def proc():
            a = sim.process(waiter(3, "a"))
            b = sim.process(waiter(7, "b"))
            results = yield sim.any_of([a, b])
            return (sim.now, len(results))

        now, count = drive(sim, proc())
        assert now == pytest.approx(3.0)
        assert count == 1

    def test_all_of_waits_for_all(self, sim):
        def waiter(delay):
            yield sim.timeout(delay)
            return delay

        def proc():
            procs = [sim.process(waiter(d)) for d in (2, 8, 5)]
            results = yield sim.all_of(procs)
            return (sim.now, sorted(results.values()))

        now, values = drive(sim, proc())
        assert now == pytest.approx(8.0)
        assert values == [2, 5, 8]

    def test_all_of_fails_fast(self, sim):
        def ok():
            yield sim.timeout(10)

        def bad():
            yield sim.timeout(2)
            raise RuntimeError("bad")

        def proc():
            with pytest.raises(RuntimeError):
                yield sim.all_of([sim.process(ok()), sim.process(bad())])
            return sim.now

        assert drive(sim, proc()) == pytest.approx(2.0)

    def test_empty_any_of_succeeds_immediately(self, sim):
        def proc():
            yield sim.any_of([])
            return sim.now

        assert drive(sim, proc()) == 0.0

    def test_all_of_with_processed_children(self, sim):
        done = sim.event()
        done.succeed(1)
        sim.run()

        def proc():
            yield sim.all_of([done])
            return "ok"

        assert drive(sim, proc()) == "ok"


class TestSimulatorRun:
    def test_run_until_advances_clock_exactly(self, sim):
        sim.process(self._sleep(sim, 5))
        sim.run(until=100)
        assert sim.now == 100

    @staticmethod
    def _sleep(sim, delay):
        yield sim.timeout(delay)

    def test_run_until_in_past_rejected(self, sim):
        sim.process(self._sleep(sim, 5))
        sim.run(until=50)
        with pytest.raises(SimulationError):
            sim.run(until=10)

    def test_step_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_run_until_triggered_stops_early(self, sim):
        # A daemon keeps the queue busy forever; run_until_triggered must
        # still return when the target completes.
        def daemon():
            while True:
                yield sim.timeout(1.0)

        def target():
            yield sim.timeout(10.0)
            return "done"

        sim.process(daemon())
        process = sim.process(target())
        sim.run_until_triggered(process, until=1000)
        assert process.value == "done"
        assert sim.now <= 11.0

    def test_call_later_runs_function(self, sim):
        seen = []
        sim.call_later(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_call_later_negative_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_later(-1.0, lambda: None)


class TestCancel:
    def test_cancel_skips_callbacks_and_clock(self, sim):
        seen = []
        late = sim.timeout(50.0)
        late.callbacks.append(lambda e: seen.append(sim.now))
        sim.timeout(10.0)
        late.cancel()
        sim.run()
        assert seen == []
        assert late.cancelled
        assert sim.now == 10.0  # the cancelled entry never advanced time

    def test_cancel_pending_event_rejected(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.cancel()

    def test_cancel_processed_event_rejected(self, sim):
        timeout = sim.timeout(1.0)
        sim.run()
        assert timeout.processed
        with pytest.raises(SimulationError):
            timeout.cancel()

    def test_cancel_twice_rejected(self, sim):
        timeout = sim.timeout(1.0)
        timeout.cancel()
        with pytest.raises(SimulationError):
            timeout.cancel()

    def test_cancelled_value_raises(self, sim):
        timeout = sim.timeout(1.0)
        timeout.cancel()
        with pytest.raises(SimulationError):
            _ = timeout.value

    def test_step_processes_exactly_one_real_event(self, sim):
        first = sim.timeout(1.0)
        second = sim.timeout(2.0)
        first.cancel()
        sim.step()  # must skip the cancelled entry and process the 2.0
        assert second.processed
        assert sim.now == 2.0

    def test_run_until_triggered_skips_cancelled(self, sim):
        doomed = sim.timeout(5.0)
        doomed.cancel()

        def target():
            yield sim.timeout(10.0)
            return "done"

        process = sim.process(target())
        sim.run_until_triggered(process, until=100)
        assert process.value == "done"


class TestBatchedDispatch:
    """The run() loop drains same-timestamp entries as one batch; these
    pin the visible contract: FIFO order, same-time arrivals joining the
    batch, and cancelled entries never advancing the clock."""

    def test_same_timestamp_fifo_order(self, sim):
        seen = []
        sim.call_later(5.0, lambda: seen.append("early"))
        for i in range(5):
            sim.call_later(10.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == ["early", 0, 1, 2, 3, 4]
        assert sim.now == 10.0

    def test_same_time_arrivals_join_the_drain(self, sim):
        seen = []

        def first():
            seen.append("first")
            sim.call_later(0.0, lambda: seen.append("second"))

        sim.call_later(3.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 3.0

    def test_trailing_cancelled_entries_leave_clock(self, sim):
        sim.timeout(10.0)
        doomed = sim.timeout(50.0)
        doomed.cancel()
        sim.run()
        assert sim.now == 10.0

    def test_cancelled_entry_inside_a_batch_is_skipped(self, sim):
        seen = []
        kept = sim.timeout(10.0)
        doomed = sim.timeout(10.0)
        kept.callbacks.append(lambda e: seen.append("kept"))
        doomed.callbacks.append(lambda e: seen.append("doomed"))
        doomed.cancel()
        sim.run()
        assert seen == ["kept"]
        assert sim.now == 10.0

    def test_horizon_stops_before_later_batch(self, sim):
        seen = []
        sim.call_later(10.0, lambda: seen.append("in"))
        sim.call_later(20.0, lambda: seen.append("out"))
        sim.run(until=15.0)
        assert seen == ["in"]
        assert sim.now == 15.0

    def test_active_counts_every_schedule(self, sim):
        base = sim._active
        sim.timeout(1.0)
        sim.call_later(2.0, lambda: None)
        sim.event().succeed()
        assert sim._active == base + 3


class TestCalendarStorage:
    """Calendar-specific storage contracts: cancelled entries must not
    pin their bucket's ring slot forever, and fused batches must be
    observationally identical to a chain of ``call_later`` calls."""

    def test_mass_cancel_compacts_bucket_slots(self, sim):
        keeper = sim.timeout(5.0)
        doomed = [sim.timeout(5.0) for _ in range(200)]
        for timeout in doomed:
            timeout.cancel()
        resident = sum(len(b) for b in sim._buckets) + len(sim._queue)
        assert resident < 100  # the cancelled majority was swept out
        sim.run()
        assert keeper.processed
        assert sim.now == 5.0

    def test_mass_cancel_compacts_overflow_heap(self, sim):
        horizon = sim._nbuckets * sim._width  # beyond this -> overflow heap
        keeper = sim.timeout(5.0)
        doomed = [sim.timeout(horizon * 3) for _ in range(200)]
        assert len(sim._queue) == 200
        for timeout in doomed:
            timeout.cancel()
        assert len(sim._queue) < 100
        sim.run()
        assert keeper.processed
        assert sim.now == 5.0  # cancelled far-future entries never advance time

    def test_compaction_resets_pending_counter(self, sim):
        doomed = [sim.timeout(1.0) for _ in range(300)]
        for timeout in doomed:
            timeout.cancel()
        # Whatever tail is still resident, the counter matches it: every
        # sweep zeroed the counter alongside the storage.
        resident = sum(len(b) for b in sim._buckets) + len(sim._queue)
        assert sim._cancel_pending == resident

    def test_heap_mode_never_compacts(self):
        sim = Simulator(scheduler="heap")
        doomed = [sim.timeout(1.0) for _ in range(100)]
        for timeout in doomed:
            timeout.cancel()
        assert len(sim._queue) == 100  # reference scheduler: lazy skip only
        assert sim._cancel_pending == 0
        sim.run()
        assert sim.now == 0.0


class TestCallLaterBatch:
    def test_batch_matches_unfused_order(self):
        for scheduler in ("calendar", "heap"):
            sim = Simulator(scheduler=scheduler)
            seen = []
            sim.call_later(5.0, lambda: seen.append("a"))
            sim.call_later_batch(
                5.0, [lambda: seen.append("b"), lambda: seen.append("c")]
            )
            sim.call_later(5.0, lambda: seen.append("d"))
            sim.run()
            assert seen == ["a", "b", "c", "d"], scheduler
            assert sim.now == 5.0

    def test_batch_counts_every_callable(self, sim):
        base = sim._active
        sim.call_later_batch(1.0, [int, int, int])
        assert sim._active == base + 3

    def test_step_splits_batch_one_callable_at_a_time(self, sim):
        seen = []
        sim.call_later_batch(
            1.0, [lambda: seen.append(0), lambda: seen.append(1)]
        )
        sim.step()
        assert seen == [0]
        sim.step()
        assert seen == [0, 1]
        assert sim.now == 1.0

    def test_batch_beyond_the_year_lands_in_overflow(self, sim):
        horizon = sim._nbuckets * sim._width
        seen = []
        sim.call_later_batch(horizon * 2, [lambda: seen.append(sim.now)])
        assert len(sim._queue) == 1
        sim.run()
        assert seen == [horizon * 2]

    def test_empty_batch_is_a_noop(self, sim):
        base = sim._active
        sim.call_later_batch(1.0, [])
        assert sim._active == base
        sim.run()
        assert sim.now == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_later_batch(-1.0, [int])
