"""Pager semantics: hits, faults, LRU eviction, dirty write-back."""

import pytest

from repro.baselines import BaselineConfig, DirectRemoteMemory
from repro.cluster import Cluster
from repro.net import NetworkConfig
from repro.vmm import PagedMemory

from .conftest import drive, make_page


def build_pager(resident_pages=4, verify=True, machines=4, payload_mode="real"):
    cluster = Cluster(
        machines=machines,
        memory_per_machine=1 << 26,
        network=NetworkConfig(jitter_sigma=0.0, straggler_prob=0.0),
        seed=2,
    )
    backend = DirectRemoteMemory(
        cluster, 0, BaselineConfig(slab_size_bytes=1 << 20),
        payload_mode=payload_mode,
    )
    return cluster, PagedMemory(
        backend, resident_pages=resident_pages, verify_contents=verify
    )


class TestHitsAndFaults:
    def test_resident_access_is_hit(self):
        cluster, pager = build_pager()

        def proc():
            yield pager.access(0, write=True, data=make_page(0))
            yield pager.access(0)
            yield pager.access(0)

        drive(cluster.sim, proc())
        assert pager.stats["hits"] == 2
        assert pager.stats["faults"] == 1

    def test_hit_is_fast_miss_is_slow(self):
        cluster, pager = build_pager(resident_pages=2)
        sim = cluster.sim

        def proc():
            yield pager.access(0, write=True, data=make_page(0))
            yield pager.access(1, write=True, data=make_page(1))
            yield pager.access(2, write=True, data=make_page(2))  # evicts 0
            start = sim.now
            yield pager.access(1)  # hit
            hit_time = sim.now - start
            start = sim.now
            yield pager.access(0)  # fault -> remote read
            miss_time = sim.now - start
            return hit_time, miss_time

        hit_time, miss_time = drive(cluster.sim, proc())
        assert miss_time > 10 * hit_time

    def test_hit_rate_property(self):
        cluster, pager = build_pager(resident_pages=8)

        def proc():
            for pid in range(8):
                yield pager.access(pid, write=True, data=make_page(pid))
            for _ in range(3):
                for pid in range(8):
                    yield pager.access(pid)

        drive(cluster.sim, proc())
        assert pager.hit_rate == pytest.approx(24 / 32)


class TestEviction:
    def test_lru_victim_selected(self):
        cluster, pager = build_pager(resident_pages=2)

        def proc():
            yield pager.access(0, write=True, data=make_page(0))
            yield pager.access(1, write=True, data=make_page(1))
            yield pager.access(0)  # refresh 0: LRU is now 1
            yield pager.access(2, write=True, data=make_page(2))
            return pager.resident_count

        drive(cluster.sim, proc())
        assert 0 in pager._resident and 2 in pager._resident
        assert 1 not in pager._resident

    def test_first_eviction_always_pages_out(self):
        """Anonymous pages have no backing store: even 'clean' pages must
        be written out the first time they are evicted."""
        cluster, pager = build_pager(resident_pages=1)

        def proc():
            yield pager.access(0, write=True, data=make_page(0))
            yield pager.access(1, write=True, data=make_page(1))
            got = yield pager.access(0)
            return got

        assert drive(cluster.sim, proc()) == make_page(0)
        assert pager.stats["page_outs"] >= 1

    def test_clean_page_with_remote_copy_dropped_without_write(self):
        cluster, pager = build_pager(resident_pages=2)

        def proc():
            yield pager.access(0, write=True, data=make_page(0))
            yield pager.access(1, write=True, data=make_page(1))
            yield pager.access(2, write=True, data=make_page(2))  # 0 paged out
            yield pager.access(0)  # page 0 back in (clean now)
            yield pager.access(3, write=True, data=make_page(3))  # evicts 2
            yield pager.access(4, write=True, data=make_page(4))  # evicts clean 0
            return None

        drive(cluster.sim, proc())
        assert pager.stats["clean_drops"] >= 1

    def test_contents_verified_across_remote_roundtrip(self):
        cluster, pager = build_pager(resident_pages=2)

        def proc():
            for pid in range(6):
                yield pager.access(pid, write=True, data=make_page(pid))
            for pid in range(6):
                got = yield pager.access(pid)
                assert got == make_page(pid)

        drive(cluster.sim, proc())
        assert pager.verification_failures == 0

    def test_dirty_flag_only_on_writes(self):
        cluster, pager = build_pager(resident_pages=4)

        def proc():
            yield pager.access(0, write=True, data=make_page(0))
            yield pager.access(0)  # read does not re-dirty

        drive(cluster.sim, proc())
        assert pager._resident[0] is True  # still dirty from the write


class TestApi:
    def test_preload(self):
        cluster, pager = build_pager(resident_pages=16)
        drive(cluster.sim, _preload(pager))
        assert pager.resident_count == 8

    def test_invalid_resident_pages(self):
        cluster, _ = build_pager()
        with pytest.raises(ValueError):
            PagedMemory(object.__new__(DirectRemoteMemory), resident_pages=0)


def _preload(pager):
    proc = pager.preload(range(8), make_data=make_page)
    # Wrap as a generator so drive() can use it.
    def run():
        yield proc
    return run()
