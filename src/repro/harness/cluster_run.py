"""The cluster-wide experiment (§7.4): 250 containers on 50 machines.

Reproduces the methodology of Figures 17-18 and Table 3, scaled down in
bytes (not in structure): an equal number of containers per application
(VoltDB-like, Memcached ETC, Memcached SYS), randomly distributed over the
machines; half run at the 100 % memory fit, ~30 % at 75 %, the rest at
50 %. The paper packs 2.76 TB of footprint into 3.20 TB (86 %) with 1 GB
slabs on 64 GB machines. Two scale effects force a lower default
footprint fraction (45 %) here: slabs are proportionally coarser relative
to machine memory (rounding waste), and under workload churn every page
of a constrained container is eventually paged out, so replication must
host 2x the *entire* working set remotely, not 2x the remote fraction.
The skew comparison (Fig 17) and completion comparison (Fig 18) are
unaffected — all three backends run under identical pressure.

Containers at 100 % never touch remote memory; the others page through
the backend under test. The run measures:

* per-container completion time (Fig 18) and op latency (Table 3);
* per-machine memory usage over time -> load-balancing skew (Fig 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster import Cluster
from ..core import HydraConfig, HydraDeployment
from ..sim import (
    DistributionSummary,
    RandomSource,
    coefficient_of_variation,
    imbalance_ratio,
    summarize,
)
from ..vmm import PagedMemory
from .builders import NamespacedPool, build_backend
from .microbench import run_process
from .report import percentile
from .scenarios import _make_workload

__all__ = ["ContainerSpec", "ClusterRunResult", "ClusterExperiment"]

_FIT_MIX = ((1.0, 0.5), (0.75, 0.3), (0.5, 0.2))  # (fit, fraction of containers)
_APPS = ("voltdb", "etc", "sys")


@dataclass
class ContainerSpec:
    """One containerized application instance."""

    container_id: int
    host_id: int
    workload: str
    fit: float
    n_pages: int
    total_ops: int


@dataclass
class ContainerResult:
    spec: ContainerSpec
    completion_us: float
    op_latency: DistributionSummary
    samples: np.ndarray = field(default_factory=lambda: np.array([]))


@dataclass
class ClusterRunResult:
    """Everything Figs 17-18 and Table 3 need from one cluster run."""

    backend: str
    containers: List[ContainerResult]
    machine_mean_usage: np.ndarray  # bytes, averaged over the run
    total_memory_bytes: int

    # -- Fig 17 metrics ----------------------------------------------------
    @property
    def usage_imbalance(self) -> float:
        """Max/min average memory usage across machines."""
        return imbalance_ratio(self.machine_mean_usage)

    @property
    def usage_variation(self) -> float:
        """Std/mean of average memory usage (the paper's 'variation')."""
        return coefficient_of_variation(self.machine_mean_usage)

    @property
    def min_utilization(self) -> float:
        return float(self.machine_mean_usage.min() / self.total_memory_bytes)

    # -- Fig 18 / Table 3 metrics -----------------------------------------
    def median_completion_us(self, workload: str, fit: float) -> Optional[float]:
        values = self._completions(workload, fit)
        return float(np.median(values)) if values else None

    def mean_completion_us(self, workload: str, fit: float) -> Optional[float]:
        """Mean completion — sensitive to the minority of containers hit
        by evictions/pressure, where the backends differ most."""
        values = self._completions(workload, fit)
        return float(np.mean(values)) if values else None

    def _completions(self, workload: str, fit: float) -> list:
        return [
            c.completion_us
            for c in self.containers
            if c.spec.workload == workload and abs(c.spec.fit - fit) < 1e-9
        ]

    def latency_percentile(
        self, workload: str, fit: float, pct: float
    ) -> Optional[float]:
        """Percentile over the pooled op samples of all matching
        containers — tail events on a few containers must show (the
        paper's Table 3 p99 blowups are exactly such events)."""
        pools = [
            c.samples
            for c in self.containers
            if c.spec.workload == workload
            and abs(c.spec.fit - fit) < 1e-9
            and len(c.samples)
        ]
        if not pools:
            return None
        return percentile(np.concatenate(pools), pct)


class ClusterExperiment:
    """Build and run the 250-container experiment on one backend."""

    def __init__(
        self,
        backend: str,
        machines: int = 50,
        containers: int = 250,
        pages_per_container: int = 600,
        ops_per_container: int = 250,
        clients_per_container: int = 1,
        seed: int = 0,
        footprint_fraction: float = 0.40,
        slab_pages: int = 256,
        hydra_range_pages: int = 128,
        hydra_k: int = 8,
        hydra_r: int = 2,
        page_size: int = 4096,
        apply_pressure: bool = True,
        pressure_machine_fraction: float = 0.3,
        pressure_extra_fraction: float = 0.48,
        pressure_start_us: float = 1_500.0,
        pressure_duration_us: float = 5_000.0,
        eviction_threshold: float = 0.12,
        eviction_period_us: float = 250.0,
    ):
        self.backend_kind = backend
        self.machines = machines
        self.n_containers = containers
        self.pages_per_container = pages_per_container
        self.ops_per_container = ops_per_container
        self.clients_per_container = clients_per_container
        self.seed = seed
        self.page_size = page_size
        # Container placement, fits and pressure schedule must be
        # *identical* across backends for a fair comparison: derive them
        # from a backend-independent stream.
        self.rng = RandomSource(seed, "clusterrun/common")
        self.pool_rng = RandomSource(seed, f"clusterrun/{backend}")

        footprint = containers * pages_per_container * page_size
        self.memory_per_machine = int(footprint / footprint_fraction / machines)
        # Baselines place coarse whole-page slabs (Infiniswap's 1 GB unit,
        # scaled); Hydra places fine (k+r)-way split slabs — the grain gap
        # behind Figure 17.
        self.slab_size_bytes = slab_pages * page_size
        if backend == "hydra":
            split = -(-page_size // hydra_k)
            self.slab_size_bytes = hydra_range_pages * split
        self.hydra_k = hydra_k
        self.hydra_r = hydra_r
        self.apply_pressure = apply_pressure
        self.pressure_machine_fraction = pressure_machine_fraction
        self.pressure_extra_fraction = pressure_extra_fraction
        self.pressure_start_us = pressure_start_us
        self.pressure_duration_us = pressure_duration_us
        self.eviction_threshold = eviction_threshold
        self.eviction_period_us = eviction_period_us

    # ------------------------------------------------------------------
    def build_specs(self) -> List[ContainerSpec]:
        """Assign apps, fits and hosts exactly per the paper's mix."""
        specs: List[ContainerSpec] = []
        fits: List[float] = []
        for fit, fraction in _FIT_MIX:
            fits.extend([fit] * int(round(self.n_containers * fraction)))
        while len(fits) < self.n_containers:
            fits.append(1.0)
        fits = fits[: self.n_containers]
        self.rng.shuffle(fits)
        # Random (not balanced) hosting, like the paper's "randomly
        # distributed" containers: some machines end up crowded, others
        # nearly idle — the heterogeneity remote placement must absorb.
        hosts = [
            self.rng.randint(0, self.machines - 1)
            for _ in range(self.n_containers)
        ]
        for cid in range(self.n_containers):
            specs.append(
                ContainerSpec(
                    container_id=cid,
                    host_id=hosts[cid],
                    workload=_APPS[cid % len(_APPS)],
                    fit=fits[cid],
                    n_pages=self.pages_per_container,
                    total_ops=self.ops_per_container,
                )
            )
        return specs

    # ------------------------------------------------------------------
    def run(self, until: float = 2_000_000_000.0) -> ClusterRunResult:
        specs = self.build_specs()
        cluster = Cluster(
            machines=self.machines,
            memory_per_machine=self.memory_per_machine,
            with_ssd=(self.backend_kind == "ssd_backup"),
            seed=self.seed,
        )
        sim = cluster.sim

        deployment = None
        if self.backend_kind == "hydra":
            config = HydraConfig(
                k=self.hydra_k,
                r=self.hydra_r,
                delta=1,
                slab_size_bytes=self.slab_size_bytes,
                payload_mode="phantom",
                # The run spans ~10 simulated ms; the ControlPeriod must
                # fire many times within it for the headroom machinery
                # (Fig 7) to participate in the experiment.
                control_period_us=self.eviction_period_us * 2,
                headroom_fraction=self.eviction_threshold,
            )
            deployment = HydraDeployment(cluster, config, seed=self.seed)

        # Local (resident) memory is charged to the host machine so that
        # placement decisions see realistic heterogeneous pressure.
        pools = {}
        for spec in specs:
            resident_bytes = int(spec.n_pages * spec.fit) * self.page_size
            host = cluster.machine(spec.host_id)
            host.set_local_app_bytes(host.local_app_bytes + resident_bytes)
            if spec.fit >= 1.0:
                continue  # fully in-memory: no remote pool needed
            if self.backend_kind == "hydra":
                pools[spec.container_id] = NamespacedPool(
                    deployment.manager(spec.host_id),
                    base_page=spec.container_id * (1 << 22),
                )
            else:
                pools[spec.container_id] = build_backend(
                    self.backend_kind,
                    cluster,
                    client=spec.host_id,
                    slab_size_bytes=self.slab_size_bytes,
                    payload_mode="phantom",
                    rng=self.pool_rng.child(f"pool{spec.container_id}"),
                )

        # Periodic cluster-wide memory usage sampling for Fig 17.
        def usage_sampler():
            while True:
                yield sim.timeout(self.eviction_period_us)
                for machine in cluster.machines:
                    if machine.alive:
                        machine.record_usage()

        sim.process(usage_sampler(), name="usage-sampler")

        # Cluster dynamics (§7.4): a fraction of machines see their local
        # applications grow mid-run, forcing slab evictions. Hydra's
        # Resource Monitors react on their own; the baselines get the
        # Infiniswap-style eviction daemon below.
        if self.apply_pressure:
            victims = self.rng.sample(
                cluster.machines,
                max(1, int(self.machines * self.pressure_machine_fraction)),
            )
            extra = int(self.memory_per_machine * self.pressure_extra_fraction)

            def pressure(machine):
                yield sim.timeout(self.pressure_start_us)
                machine.set_local_app_bytes(machine.local_app_bytes + extra)
                yield sim.timeout(self.pressure_duration_us)
                machine.set_local_app_bytes(
                    max(0, machine.local_app_bytes - extra)
                )

            for machine in victims:
                sim.process(pressure(machine), name=f"pressure:{machine.id}")
            if self.backend_kind != "hydra":
                sim.process(
                    self._eviction_daemon(cluster, pools), name="evictiond"
                )

        # Launch every container.
        container_procs: List[Tuple[ContainerSpec, object, object]] = []
        for spec in specs:
            rng = self.rng.child(f"wl{spec.container_id}")
            if spec.fit >= 1.0:
                # Fully in-memory: a backendless pager would still try to
                # page out; give it room for the whole working set.
                pool = _NullPool(sim)
                resident = spec.n_pages + 1
            else:
                pool = pools[spec.container_id]
                resident = max(1, int(spec.n_pages * spec.fit))
            pager = PagedMemory(pool, resident_pages=resident)
            work = _make_workload(
                spec.workload, pager, rng, spec.n_pages,
                clients=self.clients_per_container, window_us=1_000_000.0,
            )

            def container(spec=spec, pager=pager, work=work):
                yield pager.preload(range(spec.n_pages))
                start = sim.now
                yield work.run(total_ops=spec.total_ops)
                return sim.now - start

            proc = sim.process(container(), name=f"container{spec.container_id}")
            container_procs.append((spec, proc, work))

        everything = sim.all_of([proc for _s, proc, _w in container_procs])
        run_process(sim, everything, until=until)

        results = [
            ContainerResult(
                spec=spec,
                completion_us=proc.value,
                op_latency=summarize(
                    work.latency.samples, name=f"c{spec.container_id}"
                ),
                samples=np.asarray(work.latency.samples, dtype=np.float64),
            )
            for spec, proc, work in container_procs
        ]
        usage = np.array(
            [
                m.usage_series.mean() if len(m.usage_series) else m.used_bytes
                for m in cluster.machines
            ]
        )
        return ClusterRunResult(
            backend=self.backend_kind,
            containers=results,
            machine_mean_usage=usage,
            total_memory_bytes=self.memory_per_machine,
        )


    # ------------------------------------------------------------------
    def _eviction_daemon(self, cluster: Cluster, pools: Dict[int, object]):
        """Infiniswap-style eviction for the baseline backends: when a
        machine's free memory falls below the threshold, its least-accessed
        hosted slab is dropped and the owning pool notified."""
        sim = cluster.sim
        while True:
            yield sim.timeout(self.eviction_period_us)
            for machine in cluster.machines:
                if not machine.alive:
                    continue
                guard = 0
                while (
                    machine.free_bytes / machine.total_memory_bytes
                    < self.eviction_threshold
                    and guard < 16
                ):
                    if not self._evict_one(machine, pools):
                        break
                    guard += 1

    @staticmethod
    def _evict_one(machine, pools: Dict[int, object]) -> bool:
        """Drop the coldest mapped slab on ``machine``; returns success."""
        best = None
        for pool in pools.values():
            # A pool without an independent backup (replication, direct)
            # must keep at least one live replica per group; SSD backup
            # always has the disk copy to fall back on.
            disk_backed = getattr(pool, "name", "") == "ssd_backup"
            for group_id, handles in pool.groups.items():
                live = sum(1 for h in handles if h.available)
                for index, handle in enumerate(handles):
                    if handle.machine_id != machine.id or not handle.available:
                        continue
                    if not disk_backed and live <= 1:
                        continue
                    slab = machine.hosted_slabs.get(handle.slab_id)
                    if slab is None:
                        continue
                    key = (slab.access_count, pool, group_id, index, handle)
                    if best is None or key[0] < best[0]:
                        best = key
        if best is None:
            return False
        _count, pool, group_id, index, handle = best
        handle.available = False
        machine.release_slab(handle.slab_id)
        pool.events.incr("pressure_evictions")
        pool.on_handle_lost(group_id, index)
        return True


class _NullPool:
    """Backend for fully-in-memory containers: never actually used, but
    present so the pager API stays uniform."""

    name = "null"

    def __init__(self, sim):
        self.sim = sim

    def write(self, page_id, data=None):
        def noop():
            yield self.sim.timeout(0.0)

        return self.sim.process(noop(), name="null-write")

    def read(self, page_id):
        def noop():
            yield self.sim.timeout(0.0)

        return self.sim.process(noop(), name="null-read")
