"""Latency microbenchmarks — the instrument behind Figs 1, 10, 11, 12, 14.

All measurements are taken at the call site (around the pool's
``write``/``read`` processes) so every backend is timed identically,
whatever it records internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..sim import DistributionSummary, RandomSource, Simulator, summarize

__all__ = ["LatencyResult", "measure_latency", "run_process", "page_generator"]


@dataclass
class LatencyResult:
    """Read/write latency summaries for one backend configuration."""

    label: str
    read: DistributionSummary
    write: DistributionSummary

    def __str__(self) -> str:
        return (
            f"{self.label}: read p50={self.read.p50:.2f}us "
            f"p99={self.read.p99:.2f}us | write p50={self.write.p50:.2f}us "
            f"p99={self.write.p99:.2f}us"
        )


def page_generator(page_size: int = 4096, seed: int = 1234) -> Callable[[int], bytes]:
    """Deterministic per-page content for real-payload runs."""
    def make(page_id: int) -> bytes:
        rng = np.random.default_rng((seed, page_id))
        return rng.integers(0, 256, page_size, dtype=np.uint8).tobytes()

    return make


def run_process(sim: Simulator, process, until: Optional[float] = None):
    """Run the simulator until ``process`` completes; re-raise its failure.

    Stops at the process's completion even when daemon processes (Resource
    Monitors, background flows) keep the event queue non-empty.
    """
    sim.run_until_triggered(process, until=until)
    if not process.triggered:
        raise RuntimeError(
            f"process {process.name!r} did not finish by t={sim.now}"
        )
    return process.value  # raises the process's exception if it failed


def measure_latency(
    pool,
    sim: Simulator,
    label: str = "",
    n_pages: int = 64,
    writes: int = 300,
    reads: int = 300,
    payload_mode: str = "real",
    page_size: int = 4096,
    seed: int = 7,
    until: float = 500_000_000.0,
) -> LatencyResult:
    """Measure write-then-read latency distributions of a pool.

    First writes every page once (warm-up/placement), then performs
    ``writes`` random overwrites and ``reads`` random reads, timing each.
    """
    rng = RandomSource(seed, f"microbench/{label}")
    make_page = page_generator(page_size, seed) if payload_mode == "real" else None
    write_samples = []
    read_samples = []

    def driver():
        for page_id in range(n_pages):
            data = make_page(page_id) if make_page else None
            yield pool.write(page_id, data)
        for _ in range(writes):
            page_id = rng.randint(0, n_pages - 1)
            data = make_page(page_id) if make_page else None
            start = sim.now
            yield pool.write(page_id, data)
            write_samples.append(sim.now - start)
        for _ in range(reads):
            page_id = rng.randint(0, n_pages - 1)
            start = sim.now
            yield pool.read(page_id)
            read_samples.append(sim.now - start)
        return None

    process = sim.process(driver(), name=f"microbench:{label}")
    run_process(sim, process, until=until)
    return LatencyResult(
        label=label,
        read=summarize(read_samples, name=f"{label}.read"),
        write=summarize(write_samples, name=f"{label}.write"),
    )
