"""Rack-scale sweep: load balance and data loss at 1000 machines.

This is the §5 analysis (Figures 8-9) re-run at the cluster sizes the
paper argues about, on the packed-array data plane
(:mod:`repro.cluster.slabtable`) instead of per-slab Python objects:

* **placement / load balance** — one range per machine owner, k+r
  splits each, placed under three policies (uniform random, power of d
  choices, Hydra batch placement with rack-distinct spreading); the
  metric is max/mean load in mapped slabs and in resident page-splits;
* **data loss** — the exact hypergeometric §5.2 probability next to an
  empirical correlated-failure campaign over the actually-placed
  slab→machine matrix, plus a *rack blast* campaign (whole racks fail
  together) that shows what rack-distinct placement buys;
* **engine traffic** — a completion-storm workload over the topology's
  three latency classes driven through the calendar scheduler with
  fused ``call_later_batch`` records, sized in events so the sweep
  doubles as an engine throughput probe.

Everything derives from ``RackScaleConfig.seed`` through explicit
``numpy.random.Generator`` streams: the report text is a pure function
of the config, which is what lets ``python -m repro bench -j N`` run
the shard byte-identically at any worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from math import floor
from typing import Dict, List

import numpy as np

from ..analysis import data_loss_probability
from ..cluster.slabtable import RackTopology, SlabTable, place_ranges
from ..sim import Simulator
from .report import banner, format_table

__all__ = ["RackScaleConfig", "run_rack_scale", "format_rack_scale"]

_POLICIES = ("random", "dchoices", "hydra")


@dataclass(frozen=True)
class RackScaleConfig:
    """Knobs for one rack-scale sweep (defaults: the full 1000-machine run)."""

    machines: int = 1000
    machines_per_rack: int = 40
    racks_per_pod: int = 8
    k: int = 8
    r: int = 2
    ranges_per_machine: int = 1
    pages_per_range: int = 1024
    choices: int = 20
    failure_fraction: float = 0.02
    failure_trials: int = 200
    engine_events: int = 200_000
    seed: int = 42

    @property
    def n_splits(self) -> int:
        return self.k + self.r

    @property
    def n_ranges(self) -> int:
        return self.machines * self.ranges_per_machine

    @property
    def logical_pages(self) -> int:
        return self.n_ranges * self.pages_per_range

    @classmethod
    def smoke(cls) -> "RackScaleConfig":
        """The ≤60 s CI configuration: 200 machines in 20 racks (the
        rack count must stay >= k+r or rack-distinct placement is
        impossible by pigeonhole)."""
        return cls(
            machines=200,
            machines_per_rack=10,
            pages_per_range=512,
            failure_trials=100,
            engine_events=50_000,
        )


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def _place_policy(config: RackScaleConfig, topology: RackTopology, policy: str):
    table = SlabTable(
        config.machines, capacity=config.n_ranges * config.n_splits
    )
    rng = np.random.default_rng([config.seed, _POLICIES.index(policy)])
    owners = np.repeat(
        np.arange(config.machines, dtype=np.int32), config.ranges_per_machine
    )
    hosts = place_ranges(
        table,
        topology,
        owners,
        config.n_splits,
        config.choices,
        rng,
        policy=policy,
    )
    table.pages[table.mapped_ids()] = config.pages_per_range
    return table, hosts


def _imbalance(load: np.ndarray) -> float:
    mean = load.mean()
    return float(load.max() / mean) if mean > 0 else 1.0


def _rack_distinct_fraction(hosts: np.ndarray, topology: RackTopology) -> float:
    racks = topology.rack[hosts]
    distinct = np.array([len(np.unique(row)) for row in racks])
    return float(np.mean(distinct == hosts.shape[1]))


# ----------------------------------------------------------------------
# data loss
# ----------------------------------------------------------------------
def _empirical_loss(
    hosts: np.ndarray,
    r: int,
    machines: int,
    fraction: float,
    trials: int,
    rng: np.random.Generator,
) -> Dict[str, float]:
    """Correlated machine failures over the placed slab→machine matrix."""
    failed_count = floor(machines * fraction)
    mask = np.zeros(machines, dtype=bool)
    lost_range_fraction = 0.0
    trials_with_loss = 0
    for _ in range(trials):
        mask[:] = False
        mask[rng.choice(machines, size=failed_count, replace=False)] = True
        dead = mask[hosts].sum(axis=1)
        lost = int(np.count_nonzero(dead > r))
        lost_range_fraction += lost / hosts.shape[0]
        trials_with_loss += lost > 0
    return {
        "failed_machines": failed_count,
        "p_range_loss": lost_range_fraction / trials,
        "p_any_loss": trials_with_loss / trials,
    }


def _rack_blast(
    hosts: np.ndarray,
    topology: RackTopology,
    r: int,
    racks_to_fail: int,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """P(a range is lost) when whole racks fail together."""
    lost_range_fraction = 0.0
    for _ in range(trials):
        racks = rng.choice(topology.racks, size=racks_to_fail, replace=False)
        mask = np.isin(topology.rack, racks)
        dead = mask[hosts].sum(axis=1)
        lost_range_fraction += np.count_nonzero(dead > r) / hosts.shape[0]
    return lost_range_fraction / trials


# ----------------------------------------------------------------------
# engine traffic
# ----------------------------------------------------------------------
def _engine_traffic(
    config: RackScaleConfig, topology: RackTopology, hosts: np.ndarray
) -> Dict[str, float]:
    """Drive ``engine_events`` fused completions through the calendar
    scheduler: each client issues a k+r-wide read to one range's hosts,
    grouped into one ``call_later_batch`` per interconnect latency class."""
    sim = Simulator()
    n_events = config.engine_events
    n_ranges = hosts.shape[0]
    nop = int
    think_us = 2.0
    # Per-range completion plan, precomputed: (latency_us, burst width)
    # per latency class actually present — pure topology, no randomness.
    class_latency = topology.class_latency_us
    plans: List[List[tuple]] = []
    for range_id in range(min(n_ranges, 512)):
        owner = range_id % config.machines
        classes = topology.latency_class(owner, hosts[range_id])
        widths = np.bincount(classes, minlength=3)
        plans.append(
            [
                (float(class_latency[c]), int(widths[c]))
                for c in range(3)
                if widths[c]
            ]
        )

    def make_client(client: int):
        step = [client * 1315423911]

        def rearm() -> None:
            if sim._seq >= n_events:
                return
            step[0] += 2654435761
            plan = plans[step[0] % len(plans)]
            slowest = 0.0
            for latency, width in plan:
                sim.call_later_batch(latency, (nop,) * width)
                slowest = max(slowest, latency)
            sim.call_later(slowest + think_us, rearm)

        return rearm

    started = time.perf_counter()
    for client in range(64):
        sim.call_later(think_us + (client & 7) * 0.25, make_client(client))
    sim.run()
    elapsed = time.perf_counter() - started
    return {
        "events": sim._active,
        "sim_now_us": round(sim.now, 6),
        "seconds": round(elapsed, 6),
        "events_per_sec": round(sim._active / elapsed) if elapsed > 0 else 0,
    }


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def run_rack_scale(config: RackScaleConfig = RackScaleConfig()) -> dict:
    """Run the full sweep; every field except ``engine.seconds`` /
    ``engine.events_per_sec`` and ``wall_seconds`` is deterministic."""
    started = time.perf_counter()
    topology = RackTopology(
        config.machines,
        machines_per_rack=config.machines_per_rack,
        racks_per_pod=config.racks_per_pod,
    )
    placement = {}
    tables = {}
    host_matrices = {}
    for policy in _POLICIES:
        table, hosts = _place_policy(config, topology, policy)
        tables[policy] = table
        host_matrices[policy] = hosts
        placement[policy] = {
            "slab_imbalance": round(_imbalance(table.mapped_load()), 4),
            "page_imbalance": round(_imbalance(table.page_load()), 4),
            "rack_distinct": round(_rack_distinct_fraction(hosts, topology), 4),
        }

    loss_rng = np.random.default_rng([config.seed, 101])
    analytic = data_loss_probability(
        config.k, config.r, config.machines, config.failure_fraction
    )
    data_loss = {
        "analytic_p_range_loss": analytic,
        "empirical": {
            policy: _empirical_loss(
                host_matrices[policy],
                config.r,
                config.machines,
                config.failure_fraction,
                config.failure_trials,
                np.random.default_rng([config.seed, 101, _POLICIES.index(policy)]),
            )
            for policy in _POLICIES
        },
        "rack_blast": {
            policy: {
                str(racks): round(
                    _rack_blast(
                        host_matrices[policy],
                        topology,
                        config.r,
                        racks,
                        config.failure_trials,
                        np.random.default_rng(
                            [config.seed, 202, _POLICIES.index(policy), racks]
                        ),
                    ),
                    6,
                )
                for racks in (1, config.r, config.r + 1)
            }
            for policy in ("dchoices", "hydra")
        },
    }
    del loss_rng

    hydra_table = tables["hydra"]
    fields = hydra_table.field_nbytes()
    memory = {
        "slabs": len(hydra_table),
        "table_bytes": hydra_table.nbytes,
        "topology_bytes": topology.nbytes,
        "bytes_per_machine": round(
            (hydra_table.nbytes + topology.nbytes) / config.machines, 1
        ),
        "fields": fields,
        # The object model's per-slab cost (Slab dataclass + dict slots),
        # measured at ~0.5 KiB; the ratio is what makes 1000 machines fit.
        "object_model_estimate_bytes": len(hydra_table) * 512,
    }

    engine = _engine_traffic(config, topology, host_matrices["hydra"])
    result = {
        "config": {
            "machines": config.machines,
            "racks": topology.racks,
            "pods": topology.pods,
            "k": config.k,
            "r": config.r,
            "ranges": config.n_ranges,
            "pages_per_range": config.pages_per_range,
            "logical_pages": config.logical_pages,
            "page_splits": config.logical_pages * config.n_splits,
            "choices": config.choices,
            "failure_fraction": config.failure_fraction,
            "failure_trials": config.failure_trials,
            "seed": config.seed,
        },
        "placement": placement,
        "data_loss": data_loss,
        "memory": memory,
        "engine": engine,
        "wall_seconds": round(time.perf_counter() - started, 3),
    }
    return result


def format_rack_scale(result: dict) -> str:
    """Render the deterministic report (no wall-clock fields — the bench
    determinism gate diffs this text byte for byte across worker counts)."""
    config = result["config"]
    text = banner(
        f"Rack-scale sweep — {config['machines']} machines, "
        f"{config['racks']} racks, RS({config['k']}+{config['r']}), "
        f"{config['logical_pages']:,} pages"
    )
    text += "\n\nplacement (lower imbalance is better):\n"
    text += format_table(
        ["policy", "slab max/mean", "page max/mean", "rack-distinct"],
        [
            [
                policy,
                f"{row['slab_imbalance']:.4f}",
                f"{row['page_imbalance']:.4f}",
                f"{row['rack_distinct']:.1%}",
            ]
            for policy, row in result["placement"].items()
        ],
    )
    loss = result["data_loss"]
    text += (
        f"\n\ndata loss, {config['failure_fraction']:.0%} correlated machine "
        f"failures ({config['failure_trials']} trials):\n"
    )
    text += format_table(
        ["policy", "P(range loss)", "P(any loss)"],
        [
            [
                policy,
                f"{row['p_range_loss']:.5%}",
                f"{row['p_any_loss']:.1%}",
            ]
            for policy, row in loss["empirical"].items()
        ],
    )
    text += f"\nanalytic hypergeometric P(range loss): {loss['analytic_p_range_loss']:.5%}"
    text += "\n\nrack blast (whole racks fail together, P(range loss)):\n"
    blast_policies = list(loss["rack_blast"])
    rack_counts = list(loss["rack_blast"][blast_policies[0]])
    text += format_table(
        ["racks failed"] + blast_policies,
        [
            [racks]
            + [f"{loss['rack_blast'][p][racks]:.5%}" for p in blast_policies]
            for racks in rack_counts
        ],
    )
    memory = result["memory"]
    text += "\n\nslab-metadata memory (packed arrays):\n"
    text += format_table(
        ["field", "bytes"],
        [[name, f"{nbytes:,}"] for name, nbytes in memory["fields"].items()],
    )
    text += (
        f"\ntotal: {memory['table_bytes']:,} B for {memory['slabs']:,} slabs "
        f"(+{memory['topology_bytes']:,} B topology), "
        f"{memory['bytes_per_machine']:,} B/machine; "
        f"object model would need ~{memory['object_model_estimate_bytes']:,} B"
    )
    engine = result["engine"]
    text += (
        f"\n\nengine traffic: {engine['events']:,} completions over "
        f"3 latency classes, sim clock {engine['sim_now_us']:,} us"
    )
    return text


def smoke_config() -> RackScaleConfig:
    return RackScaleConfig.smoke()


def full_config(machines: int = 1000) -> RackScaleConfig:
    config = RackScaleConfig()
    return config if machines == config.machines else replace(config, machines=machines)
