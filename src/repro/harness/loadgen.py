"""Offered-load sweeps and trace-replay suites with statistical reporting.

The ``loadgen`` suite drives the open-loop engine
(:class:`~repro.workloads.OpenLoopWorkload`) across a grid of offered
loads and repeated seeds, pools the raw latency samples per offered-load
point, and reports mean/p50/p99 **with bootstrap confidence intervals**
plus a permutation-test p-value against the lightest load (is the latency
shift at this rate statistically real, or seed noise?). A Kneedle-style
detector (:func:`detect_knee`) marks the saturation knee on the
throughput-vs-p99 curve.

The companion replay suite runs one epoch-sliced
:class:`~repro.workloads.ReplayTrace` at several seeds and aggregates the
per-epoch latency rows across runs.

Sharding follows the ``repro.parallel`` contract: every (rate, seed)
point is a pure function of its arguments, shards merge in key order, and
the document — see :func:`loadgen_canonical_json` — is byte-identical for
every ``-j`` value.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..workloads import ARRIVAL_KINDS, ReplayTrace
from .builders import BACKEND_KINDS
from .report import (
    bootstrap_ci,
    format_ci_series,
    percentile,
    permutation_pvalue,
)
from .scenarios import run_open_loop_point, run_trace_replay_point

__all__ = [
    "LOADGEN_SCHEMA",
    "DEFAULT_RATES",
    "QUICK_RATES",
    "detect_knee",
    "run_sweep",
    "run_replay_suite",
    "loadgen_canonical_json",
    "format_sweep",
    "format_replay",
    "main",
]

LOADGEN_SCHEMA = "hydra-loadgen/1"

# Offered loads (requests/s). With the defaults (concurrency=2,
# compute_us=25, fit=0.5 paging) measured capacity is ~77k requests/s,
# so the grid spans comfortably-underloaded (20k: p99 ~60 us) through
# clearly-saturated (120k: p99 tens of ms) and the knee falls inside
# the sweep.
DEFAULT_RATES = (20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0,
                 120_000.0)
QUICK_RATES = (20_000.0, 55_000.0, 90_000.0, 125_000.0)

_BOOTSTRAP_RESAMPLES = 400
_PERMUTATIONS = 400


# ----------------------------------------------------------------------
# knee detection
# ----------------------------------------------------------------------
def detect_knee(
    xs: Sequence[float],
    ys: Sequence[float],
    sensitivity: float = 0.1,
    min_rise: float = 0.5,
) -> Optional[Dict[str, float]]:
    """Kneedle-style saturation-knee detector for an increasing convex
    latency-vs-load curve.

    Both axes are normalized to [0, 1] by their endpoints; the knee is
    the point maximizing ``x_norm - y_norm`` (the largest bulge below the
    straight line joining the endpoints — exactly where the curve turns
    from flat to explosive). Returns ``None`` when the curve never
    saturates: total relative rise below ``min_rise`` (flat curve) or
    maximum bulge below ``sensitivity`` (straight / monotone-degenerate
    curve has no knee to report).
    """
    xs = [float(x) for x in xs]
    ys = [float(y) for y in ys]
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be equal-length")
    if len(xs) < 3:
        return None
    if any(b <= a for a, b in zip(xs, xs[1:])):
        raise ValueError("xs must be strictly increasing")
    y0, y1 = ys[0], ys[-1]
    if y0 <= 0 or y1 <= y0 or (y1 - y0) / y0 < min_rise:
        return None  # never saturates within the sweep
    x0, x1 = xs[0], xs[-1]
    best_index, best_bulge = None, sensitivity
    for i in range(1, len(xs) - 1):
        x_norm = (xs[i] - x0) / (x1 - x0)
        y_norm = (ys[i] - y0) / (y1 - y0)
        bulge = x_norm - y_norm
        if bulge > best_bulge:
            best_index, best_bulge = i, bulge
    if best_index is None:
        return None  # straight line: latency grows but never turns
    return {
        "index": best_index,
        "offered_per_sec": xs[best_index],
        "p99_us": ys[best_index],
        "bulge": round(best_bulge, 6),
    }


# ----------------------------------------------------------------------
# sweep suite
# ----------------------------------------------------------------------
def _samples_sha256(samples: Sequence[float]) -> str:
    """Stable digest of a pooled sample list — a compact determinism
    anchor standing in for the samples themselves (which stay out of the
    document to keep artifacts readable)."""
    payload = json.dumps([round(float(s), 6) for s in samples])
    return hashlib.sha256(payload.encode()).hexdigest()


def _point_statistics(samples: Sequence[float], stat_seed: int) -> Dict:
    values = np.asarray(samples, dtype=np.float64)
    out: Dict = {"n_samples": int(values.size)}
    for name, stat in (("mean", "mean"), ("p50", "p50"), ("p99", "p99")):
        if name == "mean":
            point = float(values.mean())
        else:
            point = percentile(values, 50 if name == "p50" else 99)
        lo, hi = bootstrap_ci(
            values, statistic=stat, n_resamples=_BOOTSTRAP_RESAMPLES,
            seed=stat_seed,
        )
        out[f"{name}_us"] = round(point, 4)
        out[f"{name}_ci_us"] = [round(lo, 4), round(hi, 4)]
    out["samples_sha256"] = _samples_sha256(values)
    return out


def run_sweep(
    arrival_kind: str = "poisson",
    rates: Optional[Sequence[float]] = None,
    seeds: int = 3,
    backend: str = "hydra",
    quick: bool = False,
    jobs: Union[int, str, None] = 1,
    machines: int = 12,
    n_pages: int = 512,
    fit: float = 0.5,
    duration_us: Optional[float] = None,
    concurrency: int = 2,
    compute_us: float = 25.0,
    metrics=None,
    progress=None,
) -> dict:
    """Offered-load sweep: ``len(rates) x seeds`` open-loop points.

    Each (rate, seed) point is one shard; per rate the latency samples of
    every seed pool into the statistics row. The returned document is the
    BENCH_loadgen.json ``sweep`` payload.
    """
    from ..parallel import ShardTask, require_ok, resolve_jobs, run_shards

    if arrival_kind not in ARRIVAL_KINDS:
        raise ValueError(
            f"unknown arrival kind {arrival_kind!r}; choose from {ARRIVAL_KINDS}"
        )
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    if rates is None:
        rates = QUICK_RATES if quick else DEFAULT_RATES
    rates = [float(r) for r in rates]
    if any(b <= a for a, b in zip(rates, rates[1:])):
        raise ValueError("rates must be strictly increasing")
    if duration_us is None:
        duration_us = 100_000.0 if quick else 200_000.0
    jobs = resolve_jobs(jobs)

    tasks = [
        ShardTask(
            key=(rate_index, seed),
            fn=run_open_loop_point,
            kwargs=dict(
                arrival_kind=arrival_kind,
                rate_per_sec=rate,
                seed=seed,
                backend=backend,
                machines=machines,
                n_pages=n_pages,
                fit=fit,
                duration_us=duration_us,
                concurrency=concurrency,
                compute_us=compute_us,
            ),
            label=f"loadgen:{arrival_kind}@{rate:.0f}/s seed={seed}",
        )
        for rate_index, rate in enumerate(rates)
        for seed in range(seeds)
    ]
    results = require_ok(
        run_shards(
            tasks, jobs=jobs, name="loadgen", metrics=metrics, progress=progress
        ),
        "loadgen",
    )

    by_rate: Dict[int, List[dict]] = {}
    for shard in results:
        rate_index = shard.key[0]
        by_rate.setdefault(rate_index, []).append(shard.value)

    points: List[dict] = []
    base_samples: Optional[List[float]] = None
    for rate_index, rate in enumerate(rates):
        runs = by_rate[rate_index]
        pooled: List[float] = []
        for run in runs:
            pooled.extend(run["samples"])
        achieved = [run["achieved_per_sec"] for run in runs]
        point = {
            "offered_per_sec": rate,
            "achieved_per_sec": round(float(np.mean(achieved)), 3),
            "achieved_min": round(min(achieved), 3),
            "achieved_max": round(max(achieved), 3),
            "issued": sum(run["issued"] for run in runs),
            "completed": sum(run["completed"] for run in runs),
            "dropped": sum(run["dropped"] for run in runs),
            "queue_peak": max(run["queue_peak"] for run in runs),
        }
        point.update(_point_statistics(pooled, stat_seed=rate_index))
        if base_samples is None:
            base_samples = pooled
            point["vs_base_pvalue"] = None
        else:
            point["vs_base_pvalue"] = round(
                permutation_pvalue(
                    pooled, base_samples, statistic="mean",
                    n_permutations=_PERMUTATIONS, seed=rate_index,
                ),
                6,
            )
        points.append(point)

    knee = detect_knee(
        [p["offered_per_sec"] for p in points],
        [p["p99_us"] for p in points],
    )
    return {
        "schema": LOADGEN_SCHEMA,
        "mode": "sweep",
        "quick": quick,
        "arrival_kind": arrival_kind,
        "backend": backend,
        "seeds": seeds,
        "duration_us": duration_us,
        "machines": machines,
        "n_pages": n_pages,
        "fit": fit,
        "concurrency": concurrency,
        "compute_us": compute_us,
        "jobs": jobs,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "points": points,
        "knee": knee,
    }


# ----------------------------------------------------------------------
# replay suite
# ----------------------------------------------------------------------
def run_replay_suite(
    trace_json: Optional[str] = None,
    seeds: int = 3,
    backend: str = "hydra",
    quick: bool = False,
    jobs: Union[int, str, None] = 1,
    machines: int = 12,
    fit: float = 0.5,
    concurrency: int = 2,
    compute_us: float = 25.0,
    metrics=None,
    progress=None,
) -> dict:
    """Replay one trace at several seeds; aggregate per-epoch rows.

    Without ``trace_json`` the deterministic synthetic diurnal trace is
    used (smaller in ``quick`` mode). One shard per seed.
    """
    from ..parallel import ShardTask, require_ok, resolve_jobs, run_shards

    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    if trace_json is None:
        if quick:
            trace = ReplayTrace.synthetic(
                seed=0, epochs=4, key_space=256, epoch_us=40_000.0
            )
        else:
            trace = ReplayTrace.synthetic(seed=0)
        trace_json = trace.to_json()
    else:
        trace = ReplayTrace.from_json(trace_json)
    jobs = resolve_jobs(jobs)

    tasks = [
        ShardTask(
            key=(seed,),
            fn=run_trace_replay_point,
            kwargs=dict(
                seed=seed,
                trace_json=trace_json,
                backend=backend,
                machines=machines,
                fit=fit,
                concurrency=concurrency,
                compute_us=compute_us,
            ),
            label=f"replay:{trace.name} seed={seed}",
        )
        for seed in range(seeds)
    ]
    results = require_ok(
        run_shards(
            tasks, jobs=jobs, name="replay", metrics=metrics, progress=progress
        ),
        "replay",
    )
    runs = [shard.value for shard in results]

    epochs: List[dict] = []
    for index, epoch in enumerate(trace.epochs):
        rows = [run["epochs"][index] for run in runs]
        epochs.append(
            {
                "index": index,
                "rate_per_sec": epoch.rate_per_sec,
                "zipf_alpha": epoch.zipf_alpha,
                "issued": sum(row["issued"] for row in rows),
                "completed": sum(row["completed_in_epoch"] for row in rows),
                "p50_us": round(float(np.mean([r["p50_us"] for r in rows])), 4),
                "p99_us": round(float(np.mean([r["p99_us"] for r in rows])), 4),
                "p99_min_us": round(min(r["p99_us"] for r in rows), 4),
                "p99_max_us": round(max(r["p99_us"] for r in rows), 4),
            }
        )
    pooled: List[float] = []
    for run in runs:
        pooled.extend(run["samples"])
    overall = _point_statistics(pooled, stat_seed=len(trace.epochs))
    return {
        "schema": LOADGEN_SCHEMA,
        "mode": "replay",
        "quick": quick,
        "backend": backend,
        "seeds": seeds,
        "trace": {
            "name": trace.name,
            "key_space": trace.key_space,
            "epochs": len(trace.epochs),
            "duration_us": trace.duration_us,
        },
        "fit": fit,
        "machines": machines,
        "concurrency": concurrency,
        "compute_us": compute_us,
        "jobs": jobs,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "epochs": epochs,
        "overall": overall,
    }


# ----------------------------------------------------------------------
# document plumbing
# ----------------------------------------------------------------------
_HOST_FIELDS = ("jobs", "python", "numpy", "platform")


def loadgen_canonical_json(doc: dict) -> str:
    """Canonical JSON of the deterministic fields of a loadgen document.

    Everything except the host-description fields (``jobs``, versions,
    platform string) is a pure function of the seeds, so two runs at any
    ``-j`` must produce byte-identical canonical JSON — the determinism
    gate pins this. Works on single-mode documents and on the combined
    ``{"sweep": ..., "replay": ...}`` shape the CLI writes.
    """
    def strip(entry):
        if isinstance(entry, dict):
            return {
                key: strip(value)
                for key, value in entry.items()
                if key not in _HOST_FIELDS
            }
        if isinstance(entry, list):
            return [strip(value) for value in entry]
        return entry

    return json.dumps(strip(doc), indent=2, sort_keys=True) + "\n"


def format_sweep(doc: dict) -> str:
    """Human-readable sweep summary: stats table, p99 error-bar series,
    detected knee."""
    lines = [
        f"loadgen sweep: {doc['arrival_kind']} arrivals on "
        f"{doc['backend']} ({doc['seeds']} seeds x "
        f"{doc['duration_us'] / 1e3:.0f} ms, concurrency "
        f"{doc['concurrency']})",
        f"  {'offered/s':>10} {'achieved/s':>11} {'mean us':>9} "
        f"{'p50 us':>8} {'p99 us':>9} {'p99 95% CI':>20} {'p(vs base)':>10}",
    ]
    for point in doc["points"]:
        ci = point["p99_ci_us"]
        pval = point["vs_base_pvalue"]
        lines.append(
            f"  {point['offered_per_sec']:>10,.0f}"
            f" {point['achieved_per_sec']:>11,.1f}"
            f" {point['mean_us']:>9,.1f}"
            f" {point['p50_us']:>8,.1f}"
            f" {point['p99_us']:>9,.1f}"
            f" {f'[{ci[0]:,.1f}, {ci[1]:,.1f}]':>20}"
            f" {'-' if pval is None else format(pval, '.4f'):>10}"
        )
    lines.append(
        format_ci_series(
            "  p99(offered)",
            [p["offered_per_sec"] for p in doc["points"]],
            [p["p99_us"] for p in doc["points"]],
            [p["p99_ci_us"][0] for p in doc["points"]],
            [p["p99_ci_us"][1] for p in doc["points"]],
        )
    )
    knee = doc.get("knee")
    if knee is None:
        lines.append("  knee: none detected within the sweep")
    else:
        lines.append(
            f"  knee: offered {knee['offered_per_sec']:,.0f}/s "
            f"(p99 {knee['p99_us']:,.1f} us, bulge {knee['bulge']:.3f})"
        )
    return "\n".join(lines)


def format_replay(doc: dict) -> str:
    """Human-readable replay summary: per-epoch table + overall stats."""
    trace = doc["trace"]
    lines = [
        f"trace replay: {trace['name']} ({trace['epochs']} epochs, "
        f"{trace['duration_us'] / 1e3:.0f} ms, key space "
        f"{trace['key_space']}) on {doc['backend']}, {doc['seeds']} seeds",
        f"  {'epoch':>5} {'rate/s':>10} {'alpha':>6} {'completed':>9} "
        f"{'p50 us':>8} {'p99 us':>9} {'p99 range':>20}",
    ]
    for epoch in doc["epochs"]:
        p99_range = f"[{epoch['p99_min_us']:,.1f}, {epoch['p99_max_us']:,.1f}]"
        lines.append(
            f"  {epoch['index']:>5} {epoch['rate_per_sec']:>10,.0f}"
            f" {epoch['zipf_alpha']:>6.2f} {epoch['completed']:>9,}"
            f" {epoch['p50_us']:>8,.1f} {epoch['p99_us']:>9,.1f}"
            f" {p99_range:>20}"
        )
    overall = doc["overall"]
    mean_ci = overall["mean_ci_us"]
    p99_ci = overall["p99_ci_us"]
    lines.append(
        f"  overall: mean {overall['mean_us']:,.1f} us "
        f"[{mean_ci[0]:,.1f}, {mean_ci[1]:,.1f}], "
        f"p99 {overall['p99_us']:,.1f} us "
        f"[{p99_ci[0]:,.1f}, {p99_ci[1]:,.1f}] "
        f"({overall['n_samples']:,} samples)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """CLI: ``python -m repro loadgen [--sweep] [--replay]
    [--arrivals KIND] [--backend KIND] [--rates R1,R2,...] [--seeds N]
    [--trace PATH] [--quick] [-j N|auto] [--output PATH]``.

    Default mode is ``--sweep``; passing both flags runs both suites into
    one combined document.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    want_sweep = False
    want_replay = False
    arrival_kind = "poisson"
    backend = "hydra"
    rates: Optional[List[float]] = None
    seeds = 3
    trace_path: Optional[str] = None
    quick = False
    jobs: Union[int, str] = 1
    output = "BENCH_loadgen.json"
    usage = (
        "python -m repro loadgen [--sweep] [--replay] [--arrivals KIND] "
        "[--backend KIND] [--rates R1,R2,...] [--seeds N] [--trace PATH] "
        "[--quick] [-j N|auto] [--output PATH]"
    )
    while argv:
        arg = argv.pop(0)
        if arg == "--sweep":
            want_sweep = True
        elif arg == "--replay":
            want_replay = True
        elif arg == "--arrivals":
            if not argv:
                print("--arrivals needs a kind", file=sys.stderr)
                return 2
            arrival_kind = argv.pop(0)
            if arrival_kind not in ARRIVAL_KINDS:
                print(
                    f"unknown arrival kind {arrival_kind!r}; choose from "
                    f"{', '.join(ARRIVAL_KINDS)}",
                    file=sys.stderr,
                )
                return 2
        elif arg == "--backend":
            if not argv:
                print("--backend needs a kind", file=sys.stderr)
                return 2
            backend = argv.pop(0)
            if backend not in BACKEND_KINDS:
                print(
                    f"unknown backend {backend!r}; choose from "
                    f"{', '.join(BACKEND_KINDS)}",
                    file=sys.stderr,
                )
                return 2
        elif arg == "--rates":
            if not argv:
                print("--rates needs a comma-separated list", file=sys.stderr)
                return 2
            try:
                rates = [float(r) for r in argv.pop(0).split(",") if r]
            except ValueError:
                print("--rates entries must be numbers", file=sys.stderr)
                return 2
            if len(rates) < 2:
                print("--rates needs at least two rates", file=sys.stderr)
                return 2
        elif arg == "--seeds":
            if not argv:
                print("--seeds needs a value", file=sys.stderr)
                return 2
            seeds = int(argv.pop(0))
            if seeds < 1:
                print("--seeds must be >= 1", file=sys.stderr)
                return 2
        elif arg == "--trace":
            if not argv:
                print("--trace needs a path", file=sys.stderr)
                return 2
            trace_path = argv.pop(0)
        elif arg == "--quick":
            quick = True
        elif arg in ("-j", "--jobs"):
            if not argv:
                print(f"{arg} needs a value (or 'auto')", file=sys.stderr)
                return 2
            value = argv.pop(0)
            jobs = value if value == "auto" else int(value)
        elif arg == "--output":
            if not argv:
                print("--output needs a path", file=sys.stderr)
                return 2
            output = argv.pop(0)
        else:
            print(f"unknown argument {arg!r}; usage: {usage}", file=sys.stderr)
            return 2
    if not want_sweep and not want_replay:
        want_sweep = True

    trace_json: Optional[str] = None
    if trace_path is not None:
        try:
            with open(trace_path) as fh:
                trace_json = fh.read()
            ReplayTrace.from_json(trace_json)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load trace {trace_path!r}: {exc}", file=sys.stderr)
            return 2

    sections: Dict[str, dict] = {}
    if want_sweep:
        sections["sweep"] = run_sweep(
            arrival_kind=arrival_kind,
            rates=rates,
            seeds=seeds,
            backend=backend,
            quick=quick,
            jobs=jobs,
            progress=print,
        )
        print(format_sweep(sections["sweep"]))
    if want_replay:
        sections["replay"] = run_replay_suite(
            trace_json=trace_json,
            seeds=seeds,
            backend=backend,
            quick=quick,
            jobs=jobs,
            progress=print,
        )
        print(format_replay(sections["replay"]))

    if len(sections) == 1:
        doc = next(iter(sections.values()))
    else:
        doc = {"schema": LOADGEN_SCHEMA, "mode": "both", **sections}
    with open(output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
