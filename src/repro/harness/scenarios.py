"""Scenario runners: applications over remote memory under uncertainties.

These drive the evaluation's application-level experiments:

* :func:`run_app` — one application at one memory fit on one backend
  (Table 2, Fig 13, Fig 16 with ``fail_at_us``);
* :func:`run_uncertainty_scenario` — the §2.2 quartet (remote failure,
  corruption, background load, request burst) as throughput timelines
  (Figs 2 and 15).

Runs default to phantom payloads: these experiments measure timing and
resilience control flow, not byte transport (the codec is exercised by
real-mode tests and microbenchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster import Cluster, CorruptionInjector, SSDConfig
from ..core import DatapathConfig
from ..net import NetworkConfig, start_background_load
from ..sim import DistributionSummary, RandomSource, summarize
from ..vmm import PagedMemory
from ..workloads import (
    MemcachedWorkload,
    OpenLoopWorkload,
    PageRankWorkload,
    ReplayTrace,
    TpccWorkload,
    TraceReplayWorkload,
    make_arrivals,
)
from .builders import build_backend, build_hydra_cluster
from .microbench import run_process
from .report import percentile

__all__ = [
    "ScenarioResult",
    "AppResult",
    "SCENARIOS",
    "WORKLOADS",
    "build_pool",
    "victim_machines",
    "run_uncertainty_scenario",
    "run_app",
    "run_open_loop_point",
    "run_trace_replay_point",
]

SCENARIOS = ("failure", "corruption", "background", "burst")
WORKLOADS = ("voltdb", "etc", "sys", "powergraph", "graphx")


@dataclass
class ScenarioResult:
    """Throughput timeline of one backend under one uncertainty."""

    backend: str
    scenario: str
    times_us: np.ndarray
    throughput_ops: np.ndarray
    event_time_us: float
    op_latency: DistributionSummary
    events: Dict[str, int] = field(default_factory=dict)

    def throughput_drop(self) -> float:
        """Fractional drop of post-event vs pre-event mean throughput."""
        before = self.throughput_ops[self.times_us < self.event_time_us]
        after = self.throughput_ops[self.times_us >= self.event_time_us]
        if len(before) == 0 or len(after) == 0 or before.mean() == 0:
            return 0.0
        return float(1.0 - after.mean() / before.mean())


@dataclass
class AppResult:
    """One application run: completion time, throughput, latency."""

    backend: str
    workload: str
    fit: float
    completion_us: float
    ops: int
    op_latency: DistributionSummary

    @property
    def throughput_ops_per_sec(self) -> float:
        if self.completion_us <= 0:
            return 0.0
        return self.ops / (self.completion_us / 1e6)


# ----------------------------------------------------------------------
def scaled_network(time_scale: float) -> NetworkConfig:
    """A fabric whose every latency constant is multiplied by
    ``time_scale`` (bandwidth divided), preserving all latency *ratios*.

    Timeline experiments use time dilation to keep event counts tractable:
    a closed-loop, paging-dominated workload issues operations at a rate
    inversely proportional to the latency scale, so dilating time by 50x
    cuts the simulated event volume 50x while leaving every relative
    result (drops, crossovers, who wins) untouched.
    """
    base = NetworkConfig()
    return NetworkConfig(
        bandwidth_gbps=base.bandwidth_gbps / time_scale,
        base_latency_us=base.base_latency_us * time_scale,
        jitter_sigma=base.jitter_sigma,
        straggler_prob=base.straggler_prob,
        straggler_shape=base.straggler_shape,
        straggler_scale_us=base.straggler_scale_us * time_scale,
        congestion_per_flow=base.congestion_per_flow,
        failure_detect_us=base.failure_detect_us * time_scale,
        send_recv_overhead_us=base.send_recv_overhead_us * time_scale,
    )


def scaled_ssd(time_scale: float) -> SSDConfig:
    # Queue depth 4 models the effective parallelism of synchronous 4 KB
    # backup writes (Infiniswap's write-through path), not the device's
    # advertised QD32 — the §2.2 burst bottleneck depends on it.
    base = SSDConfig()
    return SSDConfig(
        read_latency_us=base.read_latency_us * time_scale,
        write_latency_us=base.write_latency_us * time_scale,
        bandwidth_bytes_per_us=base.bandwidth_bytes_per_us / time_scale,
        queue_depth=4,
    )


def scaled_datapath(time_scale: float, **toggles) -> DatapathConfig:
    base = DatapathConfig(**toggles)
    base.encode_latency_us *= time_scale
    base.decode_latency_us *= time_scale
    base.context_switch_us *= time_scale
    base.copy_per_split_us *= time_scale
    base.buffer_alloc_us *= time_scale
    base.request_setup_us *= time_scale
    base.post_per_split_us *= time_scale
    return base


def build_pool(
    kind: str,
    machines: int,
    seed: int,
    payload_mode: str = "phantom",
    slab_size_bytes: int = 1 << 20,
    r_override: Optional[int] = None,
    memory_per_machine: int = 1 << 30,
    time_scale: float = 1.0,
) -> Tuple[Cluster, object]:
    """A (cluster, pool) pair for any backend kind."""
    network = scaled_network(time_scale) if time_scale != 1.0 else None
    if kind == "hydra":
        hydra = build_hydra_cluster(
            machines=machines,
            r=r_override if r_override is not None else 2,
            seed=seed,
            slab_size_bytes=slab_size_bytes,
            memory_per_machine=memory_per_machine,
            payload_mode=payload_mode,
            with_ssd=False,
            network=network,
            datapath=scaled_datapath(time_scale) if time_scale != 1.0 else None,
        )
        return hydra.cluster, hydra.remote_memory(0)
    cluster = Cluster(
        machines=machines,
        memory_per_machine=memory_per_machine,
        with_ssd=(kind == "ssd_backup"),
        ssd_config=scaled_ssd(time_scale) if kind == "ssd_backup" else None,
        network=network,
        seed=seed,
    )
    pool = build_backend(
        kind, cluster, client=0, slab_size_bytes=slab_size_bytes,
        payload_mode=payload_mode,
    )
    if time_scale != 1.0:
        pool.config.software_overhead_us *= time_scale
    return cluster, pool


def victim_machines(pool, count: int = 1) -> List[int]:
    """Remote machines holding the pool's data, heaviest host first.

    Failing the top host maximizes the affected working-set share, which
    is how the paper's single-failure experiments are set up (the failed
    machine holds a large part of the remote working set).
    """
    weights: Dict[int, int] = {}
    if hasattr(pool, "space"):  # Hydra Resilience Manager
        for address_range in pool.space.all_ranges():
            for handle in address_range.slots:
                if handle.available:
                    weights[handle.machine_id] = weights.get(handle.machine_id, 0) + 1
    else:
        for handles in pool.groups.values():
            for handle in handles:
                if handle.available:
                    weights[handle.machine_id] = weights.get(handle.machine_id, 0) + 1
    ranked = sorted(weights, key=lambda m: -weights[m])
    return ranked[:count]


# ----------------------------------------------------------------------
def _make_workload(
    workload: str, pager: PagedMemory, rng: RandomSource, n_pages: int, clients: int,
    window_us: float,
):
    if workload == "voltdb":
        return TpccWorkload(
            pager, rng, n_pages, clients=clients, window_us=window_us
        )
    if workload == "etc":
        return MemcachedWorkload.etc(
            pager, rng, n_pages, clients=clients, window_us=window_us
        )
    if workload == "sys":
        return MemcachedWorkload.sys(
            pager, rng, n_pages, clients=clients, window_us=window_us
        )
    if workload in ("powergraph", "graphx"):
        return PageRankWorkload(
            pager, rng, n_pages, engine=workload, window_us=window_us
        )
    raise ValueError(f"unknown workload {workload!r}; choose from {WORKLOADS}")


def run_app(
    backend: str,
    workload: str = "voltdb",
    fit: float = 0.5,
    machines: int = 12,
    seed: int = 0,
    n_pages: int = 2000,
    total_ops: int = 1500,
    clients: int = 4,
    fail_at_us: Optional[float] = None,
    payload_mode: str = "phantom",
    until: float = 10_000_000_000.0,
) -> AppResult:
    """Run one application at a given memory fit; optionally kill a remote
    machine mid-run (Fig 16)."""
    if not 0 < fit <= 1:
        raise ValueError(f"fit must be in (0, 1], got {fit}")
    cluster, pool = build_pool(backend, machines, seed, payload_mode=payload_mode)
    sim = cluster.sim
    rng = RandomSource(seed, f"app/{backend}/{workload}")
    resident = max(1, int(n_pages * fit))
    pager = PagedMemory(pool, resident_pages=resident)
    run_process(sim, pager.preload(range(n_pages)), until=until)

    work = _make_workload(workload, pager, rng, n_pages, clients, window_us=250_000.0)
    if workload in ("powergraph", "graphx"):
        total_ops = work.total_steps

    start = sim.now
    if fail_at_us is not None:
        def killer():
            yield sim.timeout(fail_at_us)
            victims = victim_machines(pool, 1)
            if victims:
                cluster.machine(victims[0]).fail()

        sim.process(killer(), name="scenario-killer")

    proc = work.run(total_ops=total_ops)
    run_process(sim, proc, until=until)
    return AppResult(
        backend=backend,
        workload=workload,
        fit=fit,
        completion_us=sim.now - start,
        ops=work.stats["ops"],
        op_latency=summarize(work.latency.samples, name=f"{backend}/{workload}"),
    )


# ----------------------------------------------------------------------
def run_uncertainty_scenario(
    backend: str,
    scenario: str,
    machines: int = 12,
    seed: int = 0,
    n_pages: int = 1500,
    fit: float = 0.5,
    duration_us: float = 6_000_000.0,
    event_us: float = 2_500_000.0,
    event_duration_us: float = 3_000_000.0,
    clients: int = 2,
    compute_us: Optional[float] = None,
    window_us: float = 300_000.0,
    payload_mode: str = "phantom",
    time_scale: float = 50.0,
    warmup_us: float = 1_500_000.0,
    until: float = 100_000_000_000.0,
) -> ScenarioResult:
    """One §2.2 uncertainty against one backend, as a throughput timeline.

    For the corruption scenario Hydra runs with r=3, matching §7.3.2
    ("except for the corruption scenario where we set r=3").

    ``time_scale`` dilates every latency constant (network, SSD, coding,
    CPU) by a common factor, so the closed-loop transaction rate -- and
    with it the simulated event count -- shrinks proportionally while
    every *relative* outcome (drop magnitudes, recovery shape, who wins)
    is preserved. Timeline throughput values are in dilated ops/s.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; choose from {SCENARIOS}")
    r_override = 3 if (backend == "hydra" and scenario == "corruption") else None
    cluster, pool = build_pool(
        backend, machines, seed, payload_mode=payload_mode,
        r_override=r_override, time_scale=time_scale,
    )
    sim = cluster.sim
    rng = RandomSource(seed, f"scenario/{backend}/{scenario}")
    pager = PagedMemory(
        pool,
        resident_pages=max(1, int(n_pages * fit)),
        hit_cost_us=0.05 * time_scale,
    )
    run_process(sim, pager.preload(range(n_pages)), until=until)

    if compute_us is None:
        # ~5 us of CPU per transaction: paging-dominated, like the
        # paper's 50%-fit VoltDB where remote access time rules.
        compute_us = 5.0 * time_scale

    # Read-heavy mix with moderate locality: pages lost to a failure stay
    # disk-bound (SSD backup) for a long time instead of being instantly
    # re-written to a fresh remote slab, which is what gives Fig 2a its
    # slow recovery.
    work = TpccWorkload(
        pager, rng, n_pages, clients=clients, window_us=window_us,
        compute_us=compute_us, reads_per_txn=10, writes_per_txn=1,
        zipf_alpha=0.7, write_zipf_alpha=1.1,
    )

    # Warm-up: let the resident set converge to the workload's hot set
    # before measuring, then clear the recorders so the timeline starts
    # from steady state.
    if warmup_us > 0:
        run_process(sim, work.run(duration_us=warmup_us), until=until)
        work.latency.samples.clear()
        work.throughput._buckets.clear()

    event_wall_time = sim.now + event_us

    def injector():
        yield sim.timeout(event_us)
        if scenario == "failure":
            victims = victim_machines(pool, 1)
            if victims:
                cluster.machine(victims[0]).fail()
        elif scenario == "corruption":
            victims = victim_machines(pool, 1)
            if victims:
                CorruptionInjector(sim, rng.child("corrupt")).corrupt_machine(
                    cluster.machine(victims[0]), fraction=1.0
                )
        elif scenario == "background":
            # §7.3.1: bulk flows hammer the remote machines holding the
            # working set; late binding lets Hydra dodge them.
            # §2.2: network load fluctuates across the whole cluster —
            # every machine holding remote data sees bulk flows.
            victims = victim_machines(pool, 99)
            start_background_load(
                cluster.fabric, victims, flows_per_target=2,
                duration_us=event_duration_us,
            )
        elif scenario == "burst":
            work.begin_burst(write_multiplier=4)
            yield sim.timeout(event_duration_us)
            work.end_burst()

    sim.process(injector(), name=f"inject:{scenario}")
    proc = work.run(duration_us=duration_us)
    run_process(sim, proc, until=until)

    times, tput = work.throughput_series()
    pool_events = dict(getattr(pool, "events", None).counts) if hasattr(pool, "events") else {}
    return ScenarioResult(
        backend=backend,
        scenario=scenario,
        times_us=times,
        throughput_ops=tput,
        event_time_us=event_wall_time,
        op_latency=summarize(work.latency.samples, name=f"{backend}/{scenario}"),
        events=pool_events,
    )


# ----------------------------------------------------------------------
def run_open_loop_point(
    arrival_kind: str = "poisson",
    rate_per_sec: float = 20_000.0,
    seed: int = 0,
    backend: str = "hydra",
    machines: int = 12,
    n_pages: int = 512,
    fit: float = 0.5,
    duration_us: float = 200_000.0,
    concurrency: int = 2,
    compute_us: float = 25.0,
    get_fraction: float = 0.9,
    zipf_alpha: float = 0.99,
    period_us: Optional[float] = None,
    payload_mode: str = "phantom",
    until: float = 10_000_000_000.0,
) -> Dict:
    """One offered-load point: open-loop arrivals of ``arrival_kind`` at
    ``rate_per_sec`` against a paged ``backend`` pool.

    Returns a plain dict (picklable, JSON-serializable apart from the raw
    ``samples`` list) so sweep shards can run in worker processes.
    """
    cluster, pool = build_pool(backend, machines, seed, payload_mode=payload_mode)
    sim = cluster.sim
    pager = PagedMemory(pool, resident_pages=max(1, int(n_pages * fit)))
    run_process(sim, pager.preload(range(n_pages)), until=until)

    rng = RandomSource(seed, f"openloop/{backend}/{arrival_kind}")
    arrivals = make_arrivals(
        arrival_kind, rng.child("arrivals"), rate_per_sec, period_us=period_us
    )
    work = OpenLoopWorkload(
        pager,
        rng.child("ops"),
        arrivals,
        n_pages,
        get_fraction=get_fraction,
        zipf_alpha=zipf_alpha,
        concurrency=concurrency,
        compute_us=compute_us,
    )
    result = run_process(sim, work.run(duration_us), until=until)
    samples = [round(float(s), 6) for s in result.latency_samples]
    return {
        "arrival_kind": arrival_kind,
        "backend": backend,
        "offered_per_sec": rate_per_sec,
        "seed": seed,
        "duration_us": duration_us,
        "issued": result.issued,
        "completed": result.completed,
        "completed_in_window": result.completed_in_window,
        "dropped": result.dropped,
        "queue_peak": result.queue_peak,
        "achieved_per_sec": round(result.achieved_per_sec, 3),
        "mean_us": round(float(np.mean(samples)), 4) if samples else 0.0,
        "p50_us": round(percentile(samples, 50), 4) if samples else 0.0,
        "p99_us": round(percentile(samples, 99), 4) if samples else 0.0,
        "samples": samples,
    }


def run_trace_replay_point(
    seed: int = 0,
    trace_json: Optional[str] = None,
    backend: str = "hydra",
    machines: int = 12,
    fit: float = 0.5,
    concurrency: int = 2,
    compute_us: float = 25.0,
    payload_mode: str = "phantom",
    until: float = 10_000_000_000.0,
) -> Dict:
    """Replay one trace (``trace_json``, or the deterministic synthetic
    trace derived from ``seed``) against a paged ``backend`` pool.

    Returns a plain dict with the per-epoch table and overall latency
    samples, picklable for sweep shards.
    """
    if trace_json is None:
        trace = ReplayTrace.synthetic(seed=seed)
    else:
        trace = ReplayTrace.from_json(trace_json)
    n_pages = trace.key_space
    cluster, pool = build_pool(backend, machines, seed, payload_mode=payload_mode)
    sim = cluster.sim
    pager = PagedMemory(pool, resident_pages=max(1, int(n_pages * fit)))
    run_process(sim, pager.preload(range(n_pages)), until=until)

    rng = RandomSource(seed, f"replay/{backend}/{trace.name}")
    work = TraceReplayWorkload(
        pager, rng, trace, concurrency=concurrency, compute_us=compute_us
    )
    run_process(sim, work.run(), until=until)
    samples = [round(float(s), 6) for s in work.samples()]
    epochs = []
    for row in work.epoch_table():
        entry = dict(row)
        for key in ("p50_us", "p99_us", "mean_us"):
            entry[key] = round(float(entry[key]), 4)
        epochs.append(entry)
    return {
        "trace": trace.name,
        "backend": backend,
        "seed": seed,
        "key_space": trace.key_space,
        "duration_us": trace.duration_us,
        "completed": work.stats["completed"],
        "mean_us": round(float(np.mean(samples)), 4) if samples else 0.0,
        "p50_us": round(percentile(samples, 50), 4) if samples else 0.0,
        "p99_us": round(percentile(samples, 99), 4) if samples else 0.0,
        "epochs": epochs,
        "samples": samples,
    }
