"""Seeded fixture helpers shared by ``tests/`` and ``benchmarks/``.

Both suites need the same three things — deterministic page content, a
run-this-process-to-completion driver, and the §7.4 50-machine cluster
experiment — and used to carry private copies in their respective
``conftest.py`` files. One definition here keeps the seeds (and
therefore every pinned fingerprint that depends on them) in a single
place; the conftests re-export these so test imports stay unchanged.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = [
    "CLUSTER_BACKENDS",
    "make_page",
    "drive",
    "build_cluster_experiment",
    "run_cluster_experiments",
]

# The backends Figures 17-18 and Table 3 compare, in presentation order.
CLUSTER_BACKENDS = ("ssd_backup", "hydra", "replication")


def make_page(page_id: int = 0, size: int = 4096, seed: int = 1234) -> bytes:
    """Deterministic pseudo-random page content, keyed by page id."""
    rng = np.random.default_rng((seed, page_id))
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


def drive(sim, generator, until=None, name="test-driver"):
    """Run a generator as a process to completion and return its value."""
    process = sim.process(generator, name=name)
    sim.run_until_triggered(process, until=until)
    assert process.triggered, f"{name} did not finish by t={sim.now}"
    return process.value


def build_cluster_experiment(
    backend: str,
    machines: int = 50,
    containers: int = 250,
    pages_per_container: int = 400,
    ops_per_container: int = 150,
    seed: int = 11,
):
    """The §7.4 cluster experiment at its canonical size for ``backend``."""
    from .cluster_run import ClusterExperiment

    return ClusterExperiment(
        backend,
        machines=machines,
        containers=containers,
        pages_per_container=pages_per_container,
        ops_per_container=ops_per_container,
        seed=seed,
    )


def run_cluster_experiments(
    backends: Sequence[str] = CLUSTER_BACKENDS, **overrides
) -> Dict[str, object]:
    """Run the cluster experiment once per backend (Figs 17-18, Tab 3)."""
    return {
        backend: build_cluster_experiment(backend, **overrides).run()
        for backend in backends
    }
