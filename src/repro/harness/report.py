"""Plain-text table/series renderers for benchmark output.

Every benchmark prints the rows/series of its paper table or figure
through these helpers, so `pytest benchmarks/ --benchmark-only` output can
be compared against the paper side by side.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "format_ci_series",
    "ascii_timeline",
    "banner",
    "span_phase_breakdown",
    "format_breakdown",
    "format_kv",
    "sparkline",
    "percentile",
    "bootstrap_ci",
    "permutation_pvalue",
    "STATISTICS",
]


def banner(title: str) -> str:
    """A section header for benchmark output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".2f") -> str:
    """Render an aligned plain-text table."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, floatfmt: str = ".1f") -> str:
    """Render an (x, y) series compactly: ``name: x=y, x=y, ...``."""
    pairs = ", ".join(
        f"{format(float(x), '.0f')}={format(float(y), floatfmt)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def format_ci_series(
    name: str,
    xs: Sequence,
    ys: Sequence,
    lows: Sequence,
    highs: Sequence,
    floatfmt: str = ".1f",
) -> str:
    """An (x, y) series with confidence bounds:
    ``name: x=y [lo, hi], ...`` — the error-bar form of
    :func:`format_series` for bootstrap-CI curves."""
    pairs = ", ".join(
        f"{format(float(x), '.0f')}={format(float(y), floatfmt)}"
        f" [{format(float(lo), floatfmt)}, {format(float(hi), floatfmt)}]"
        for x, y, lo, hi in zip(xs, ys, lows, highs)
    )
    return f"{name}: {pairs}"


def ascii_timeline(
    series: Dict[str, tuple],
    width: int = 60,
    height: int = 8,
) -> str:
    """A rough ASCII plot of throughput timelines (one char per bucket).

    ``series`` maps label -> (times, values). All series share the y-scale
    so relative drops (the point of Figs 2/15) are visible in test logs.
    """
    all_values = np.concatenate([np.asarray(v) for _t, v in series.values() if len(v)])
    if all_values.size == 0:
        return "(empty timeline)"
    top = float(all_values.max()) or 1.0
    lines: List[str] = []
    for label, (times, values) in series.items():
        values = np.asarray(values, dtype=np.float64)
        if values.size > width:
            # Downsample by averaging buckets.
            chunks = np.array_split(values, width)
            values = np.array([c.mean() for c in chunks])
        bars = "".join(_spark(v / top) for v in values)
        lines.append(f"{label:>12} |{bars}|")
    lines.append(f"{'':>12}  (y-max = {top:.0f} ops/s)")
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def _spark(fraction: float) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    index = int(round(fraction * (len(_SPARK_CHARS) - 1)))
    return _SPARK_CHARS[index]


def sparkline(values: Sequence[float], width: int = 16,
              lo: float = 0.0, hi: float = 1.0) -> str:
    """A fixed-width ASCII sparkline of the last ``width`` values.

    Values are clamped to ``[lo, hi]``; shorter histories left-pad with
    spaces so columns stay aligned (``repro top``'s history column).
    """
    if hi <= lo:
        raise ValueError(f"sparkline needs hi > lo, got [{lo}, {hi}]")
    tail = list(values)[-width:]
    marks = "".join(_spark((v - lo) / (hi - lo)) for v in tail)
    return marks.rjust(width)


# ----------------------------------------------------------------------
# Statistics: one percentile definition, resampling-based uncertainty
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], pct: float) -> float:
    """The harness's one canonical percentile: linear interpolation
    between closest ranks (the default of ``numpy.percentile``).

    Historically the repository mixed interpolation schemes — raw-sample
    paths interpolated linearly while the HDR histogram reports
    nearest-rank bucket upper bounds — and a p99 that jumps between
    methods moves more than the bootstrap CI widths built on top of it.
    Every raw-sample percentile in ``repro.harness`` now goes through
    this helper; only the constant-memory histogram path (which has no
    raw samples to interpolate) keeps bucket semantics.
    """
    if not 0 <= pct <= 100:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("percentile of an empty sample set")
    ordered = np.sort(arr)
    rank = pct / 100.0 * (ordered.size - 1)
    lower = int(math.floor(rank))
    upper = min(lower + 1, ordered.size - 1)
    fraction = rank - lower
    return float(ordered[lower] + (ordered[upper] - ordered[lower]) * fraction)


# Named statistics for bootstrap/report plumbing (picklable, and their
# names serialize into loadgen documents).
STATISTICS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda values: float(np.asarray(values, dtype=np.float64).mean()),
    "p50": lambda values: percentile(values, 50),
    "p90": lambda values: percentile(values, 90),
    "p99": lambda values: percentile(values, 99),
}


def _resolve_statistic(
    statistic: Union[str, Callable[[Sequence[float]], float]],
) -> Callable[[Sequence[float]], float]:
    if callable(statistic):
        return statistic
    try:
        return STATISTICS[statistic]
    except KeyError:
        raise ValueError(
            f"unknown statistic {statistic!r}; choose from {sorted(STATISTICS)}"
        ) from None


def bootstrap_ci(
    values: Sequence[float],
    statistic: Union[str, Callable[[Sequence[float]], float]] = "mean",
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Resamples ``values`` with replacement ``n_resamples`` times and
    returns the ``(lo, hi)`` percentile interval of the resampled
    statistic. Deterministic for a given ``seed`` (its own numpy
    generator, independent of every simulation stream), so CI bounds in
    report documents are byte-stable across runs and ``-j`` values.
    A single sample yields a degenerate ``(x, x)`` interval.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    stat = _resolve_statistic(statistic)
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("bootstrap_ci of an empty sample set")
    if arr.size == 1:
        point = stat(arr)
        return point, point
    rng = np.random.default_rng(np.random.SeedSequence([seed, arr.size]))
    # One resample at a time: peak memory stays O(n) even when a sweep
    # point pools tens of thousands of latency samples.
    estimates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        row = rng.integers(0, arr.size, size=arr.size)
        estimates[i] = stat(arr[row])
    alpha = (1.0 - confidence) / 2.0
    return (
        percentile(estimates, 100.0 * alpha),
        percentile(estimates, 100.0 * (1.0 - alpha)),
    )


def permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    statistic: Union[str, Callable[[Sequence[float]], float]] = "mean",
    n_permutations: int = 1000,
    seed: int = 0,
) -> float:
    """Two-sided permutation test p-value for ``stat(a) - stat(b)``.

    Pools both sample sets, re-splits ``n_permutations`` times at the
    original sizes, and reports the add-one-smoothed fraction of
    permuted |differences| at least as large as the observed one — the
    standard significance test between two measured configurations when
    nothing is known about the latency distribution's shape.
    Deterministic for a given ``seed``.
    """
    if n_permutations < 1:
        raise ValueError(f"n_permutations must be >= 1, got {n_permutations}")
    stat = _resolve_statistic(statistic)
    arr_a = np.asarray(a, dtype=np.float64)
    arr_b = np.asarray(b, dtype=np.float64)
    if arr_a.size == 0 or arr_b.size == 0:
        raise ValueError("permutation_pvalue needs non-empty sample sets")
    observed = abs(stat(arr_a) - stat(arr_b))
    pooled = np.concatenate([arr_a, arr_b])
    rng = np.random.default_rng(np.random.SeedSequence([seed, pooled.size]))
    hits = 0
    for _ in range(n_permutations):
        shuffled = rng.permutation(pooled)
        delta = abs(stat(shuffled[: arr_a.size]) - stat(shuffled[arr_a.size:]))
        if delta >= observed:
            hits += 1
    return (hits + 1) / (n_permutations + 1)


def _distribution(durations: Sequence[float]) -> Dict[str, float]:
    values = np.asarray(durations, dtype=np.float64)
    if values.size == 0:
        return {
            "count": 0, "total_us": 0.0, "mean_us": 0.0,
            "p50_us": 0.0, "p99_us": 0.0, "max_us": 0.0,
        }
    return {
        "count": int(values.size),
        "total_us": float(values.sum()),
        "mean_us": float(values.mean()),
        "p50_us": percentile(values, 50),
        "p99_us": percentile(values, 99),
        "max_us": float(values.max()),
    }


def span_phase_breakdown(spans, root_name: str, cat: str = "phase") -> Dict:
    """Fig 11-style latency decomposition derived from spans alone.

    Takes a flat list of finished :class:`~repro.obs.Span` objects, finds
    every request root named ``root_name``, and attributes each root's
    duration to its direct child spans of category ``cat`` — the
    contiguous phases laid down by ``PhaseClock``. Because those phases
    tile the root span, per-phase totals sum to the end-to-end total (any
    residual shows up as ``unattributed_us``: time before the first mark
    or after the last, e.g. an error path that bailed between marks).
    """
    roots = [s for s in spans if s.name == root_name and s.finished]
    by_parent: Dict[int, List] = {}
    for span in spans:
        if span.cat == cat and span.parent_id is not None and span.finished:
            by_parent.setdefault(span.parent_id, []).append(span)

    phase_durations: Dict[str, List[float]] = {}
    order: List[str] = []
    attributed = 0.0
    for root in roots:
        for phase in by_parent.get(root.span_id, ()):
            if phase.name not in phase_durations:
                phase_durations[phase.name] = []
                order.append(phase.name)
            phase_durations[phase.name].append(phase.duration_us)
            attributed += phase.duration_us

    total = _distribution([r.duration_us for r in roots])
    return {
        "root": root_name,
        "count": len(roots),
        "total": total,
        "phases": {name: _distribution(phase_durations[name]) for name in order},
        "order": order,
        "unattributed_us": total["total_us"] - attributed,
    }


def format_breakdown(breakdown: Dict) -> str:
    """Render a :func:`span_phase_breakdown` as an aligned table."""
    total = breakdown["total"]
    if breakdown["count"] == 0:
        return f"(no finished {breakdown['root']!r} spans)"
    rows = []
    denominator = total["total_us"] or 1.0
    for name in breakdown["order"]:
        stats = breakdown["phases"][name]
        rows.append([
            name, stats["count"], stats["mean_us"], stats["p50_us"],
            stats["p99_us"], 100.0 * stats["total_us"] / denominator,
        ])
    unattributed = breakdown["unattributed_us"]
    if unattributed > 1e-9:
        rows.append(["(unattributed)", "", "", "", "", 100.0 * unattributed / denominator])
    rows.append([
        "total", total["count"], total["mean_us"], total["p50_us"],
        total["p99_us"], 100.0,
    ])
    table = format_table(
        ["phase", "count", "mean_us", "p50_us", "p99_us", "share_%"], rows
    )
    title = f"{breakdown['root']} latency breakdown"
    return f"{banner(title)}\n{table}"


def format_kv(pairs: Dict, floatfmt: str = ".2f") -> str:
    """Render a flat key/value mapping as aligned ``key : value`` lines
    (used by the chaos CLI's invariant report)."""
    if not pairs:
        return "(empty)"
    width = max(len(str(k)) for k in pairs)
    lines = []
    for key, value in pairs.items():
        if isinstance(value, float):
            value = format(value, floatfmt)
        lines.append(f"{str(key).ljust(width)} : {value}")
    return "\n".join(lines)
