"""Plain-text table/series renderers for benchmark output.

Every benchmark prints the rows/series of its paper table or figure
through these helpers, so `pytest benchmarks/ --benchmark-only` output can
be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "ascii_timeline", "banner"]


def banner(title: str) -> str:
    """A section header for benchmark output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".2f") -> str:
    """Render an aligned plain-text table."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, floatfmt: str = ".1f") -> str:
    """Render an (x, y) series compactly: ``name: x=y, x=y, ...``."""
    pairs = ", ".join(
        f"{format(float(x), '.0f')}={format(float(y), floatfmt)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def ascii_timeline(
    series: Dict[str, tuple],
    width: int = 60,
    height: int = 8,
) -> str:
    """A rough ASCII plot of throughput timelines (one char per bucket).

    ``series`` maps label -> (times, values). All series share the y-scale
    so relative drops (the point of Figs 2/15) are visible in test logs.
    """
    all_values = np.concatenate([np.asarray(v) for _t, v in series.values() if len(v)])
    if all_values.size == 0:
        return "(empty timeline)"
    top = float(all_values.max()) or 1.0
    lines: List[str] = []
    for label, (times, values) in series.items():
        values = np.asarray(values, dtype=np.float64)
        if values.size > width:
            # Downsample by averaging buckets.
            chunks = np.array_split(values, width)
            values = np.array([c.mean() for c in chunks])
        bars = "".join(_spark(v / top) for v in values)
        lines.append(f"{label:>12} |{bars}|")
    lines.append(f"{'':>12}  (y-max = {top:.0f} ops/s)")
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def _spark(fraction: float) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    index = int(round(fraction * (len(_SPARK_CHARS) - 1)))
    return _SPARK_CHARS[index]
