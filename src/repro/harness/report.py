"""Plain-text table/series renderers for benchmark output.

Every benchmark prints the rows/series of its paper table or figure
through these helpers, so `pytest benchmarks/ --benchmark-only` output can
be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "ascii_timeline",
    "banner",
    "span_phase_breakdown",
    "format_breakdown",
    "format_kv",
    "sparkline",
]


def banner(title: str) -> str:
    """A section header for benchmark output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".2f") -> str:
    """Render an aligned plain-text table."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence, floatfmt: str = ".1f") -> str:
    """Render an (x, y) series compactly: ``name: x=y, x=y, ...``."""
    pairs = ", ".join(
        f"{format(float(x), '.0f')}={format(float(y), floatfmt)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def ascii_timeline(
    series: Dict[str, tuple],
    width: int = 60,
    height: int = 8,
) -> str:
    """A rough ASCII plot of throughput timelines (one char per bucket).

    ``series`` maps label -> (times, values). All series share the y-scale
    so relative drops (the point of Figs 2/15) are visible in test logs.
    """
    all_values = np.concatenate([np.asarray(v) for _t, v in series.values() if len(v)])
    if all_values.size == 0:
        return "(empty timeline)"
    top = float(all_values.max()) or 1.0
    lines: List[str] = []
    for label, (times, values) in series.items():
        values = np.asarray(values, dtype=np.float64)
        if values.size > width:
            # Downsample by averaging buckets.
            chunks = np.array_split(values, width)
            values = np.array([c.mean() for c in chunks])
        bars = "".join(_spark(v / top) for v in values)
        lines.append(f"{label:>12} |{bars}|")
    lines.append(f"{'':>12}  (y-max = {top:.0f} ops/s)")
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def _spark(fraction: float) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    index = int(round(fraction * (len(_SPARK_CHARS) - 1)))
    return _SPARK_CHARS[index]


def sparkline(values: Sequence[float], width: int = 16,
              lo: float = 0.0, hi: float = 1.0) -> str:
    """A fixed-width ASCII sparkline of the last ``width`` values.

    Values are clamped to ``[lo, hi]``; shorter histories left-pad with
    spaces so columns stay aligned (``repro top``'s history column).
    """
    if hi <= lo:
        raise ValueError(f"sparkline needs hi > lo, got [{lo}, {hi}]")
    tail = list(values)[-width:]
    marks = "".join(_spark((v - lo) / (hi - lo)) for v in tail)
    return marks.rjust(width)


def _distribution(durations: Sequence[float]) -> Dict[str, float]:
    values = np.asarray(durations, dtype=np.float64)
    if values.size == 0:
        return {
            "count": 0, "total_us": 0.0, "mean_us": 0.0,
            "p50_us": 0.0, "p99_us": 0.0, "max_us": 0.0,
        }
    return {
        "count": int(values.size),
        "total_us": float(values.sum()),
        "mean_us": float(values.mean()),
        "p50_us": float(np.percentile(values, 50)),
        "p99_us": float(np.percentile(values, 99)),
        "max_us": float(values.max()),
    }


def span_phase_breakdown(spans, root_name: str, cat: str = "phase") -> Dict:
    """Fig 11-style latency decomposition derived from spans alone.

    Takes a flat list of finished :class:`~repro.obs.Span` objects, finds
    every request root named ``root_name``, and attributes each root's
    duration to its direct child spans of category ``cat`` — the
    contiguous phases laid down by ``PhaseClock``. Because those phases
    tile the root span, per-phase totals sum to the end-to-end total (any
    residual shows up as ``unattributed_us``: time before the first mark
    or after the last, e.g. an error path that bailed between marks).
    """
    roots = [s for s in spans if s.name == root_name and s.finished]
    by_parent: Dict[int, List] = {}
    for span in spans:
        if span.cat == cat and span.parent_id is not None and span.finished:
            by_parent.setdefault(span.parent_id, []).append(span)

    phase_durations: Dict[str, List[float]] = {}
    order: List[str] = []
    attributed = 0.0
    for root in roots:
        for phase in by_parent.get(root.span_id, ()):
            if phase.name not in phase_durations:
                phase_durations[phase.name] = []
                order.append(phase.name)
            phase_durations[phase.name].append(phase.duration_us)
            attributed += phase.duration_us

    total = _distribution([r.duration_us for r in roots])
    return {
        "root": root_name,
        "count": len(roots),
        "total": total,
        "phases": {name: _distribution(phase_durations[name]) for name in order},
        "order": order,
        "unattributed_us": total["total_us"] - attributed,
    }


def format_breakdown(breakdown: Dict) -> str:
    """Render a :func:`span_phase_breakdown` as an aligned table."""
    total = breakdown["total"]
    if breakdown["count"] == 0:
        return f"(no finished {breakdown['root']!r} spans)"
    rows = []
    denominator = total["total_us"] or 1.0
    for name in breakdown["order"]:
        stats = breakdown["phases"][name]
        rows.append([
            name, stats["count"], stats["mean_us"], stats["p50_us"],
            stats["p99_us"], 100.0 * stats["total_us"] / denominator,
        ])
    unattributed = breakdown["unattributed_us"]
    if unattributed > 1e-9:
        rows.append(["(unattributed)", "", "", "", "", 100.0 * unattributed / denominator])
    rows.append([
        "total", total["count"], total["mean_us"], total["p50_us"],
        total["p99_us"], 100.0,
    ])
    table = format_table(
        ["phase", "count", "mean_us", "p50_us", "p99_us", "share_%"], rows
    )
    title = f"{breakdown['root']} latency breakdown"
    return f"{banner(title)}\n{table}"


def format_kv(pairs: Dict, floatfmt: str = ".2f") -> str:
    """Render a flat key/value mapping as aligned ``key : value`` lines
    (used by the chaos CLI's invariant report)."""
    if not pairs:
        return "(empty)"
    width = max(len(str(k)) for k in pairs)
    lines = []
    for key, value in pairs.items():
        if isinstance(value, float):
            value = format(value, floatfmt)
        lines.append(f"{str(key).ljust(width)} : {value}")
    return "\n".join(lines)
