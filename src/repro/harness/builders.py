"""Convenience builders: assemble cluster + backend(s) in one call.

These are the entry points examples and benchmarks use. A
:class:`HydraCluster` bundles the substrate cluster with a
:class:`~repro.core.HydraDeployment`; :func:`build_backend` constructs any
of the comparison backends on a raw cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines import (
    BaselineConfig,
    CompressedReplicationBackend,
    DirectRemoteMemory,
    ReplicationBackend,
    SSDBackupBackend,
    SwarmReplicationBackend,
)
from ..cluster import Cluster
from ..core import DatapathConfig, HydraConfig, HydraDeployment, ResilienceManager
from ..net import NetworkConfig
from ..sim import RandomSource

__all__ = ["HydraCluster", "build_hydra_cluster", "build_backend", "BACKEND_KINDS"]

BACKEND_KINDS = (
    "hydra",
    "replication",
    "swarm",
    "ssd_backup",
    "compressed",
    "direct",
)


@dataclass
class HydraCluster:
    """A cluster with Hydra deployed on every machine."""

    cluster: Cluster
    deployment: HydraDeployment

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def obs(self):
        """The cluster-wide observability bundle (tracer + metrics)."""
        return self.cluster.obs

    def remote_memory(self, client: int) -> ResilienceManager:
        """The Resilience Manager (remote memory pool) of machine ``client``."""
        return self.deployment.manager(client)


def build_hydra_cluster(
    machines: int = 8,
    k: int = 8,
    r: int = 2,
    delta: int = 1,
    seed: int = 0,
    slab_size_bytes: int = 1 << 20,
    memory_per_machine: int = 1 << 30,
    payload_mode: str = "real",
    control_period_us: float = 100_000.0,
    with_ssd: bool = False,
    network: Optional[NetworkConfig] = None,
    datapath: Optional[DatapathConfig] = None,
    config: Optional[HydraConfig] = None,
    start_monitors: bool = True,
) -> HydraCluster:
    """One-call Hydra test cluster with laptop-scale defaults.

    Note the defaults shrink SlabSize to 1 MiB and machine memory to 1 GiB
    so unit-scale experiments stay fast; pass paper-scale values for the
    cluster benchmarks.
    """
    cluster = Cluster(
        machines=machines,
        memory_per_machine=memory_per_machine,
        network=network,
        with_ssd=with_ssd,
        seed=seed,
    )
    if config is None:
        config = HydraConfig(
            k=k,
            r=r,
            delta=delta,
            slab_size_bytes=slab_size_bytes,
            payload_mode=payload_mode,
            control_period_us=control_period_us,
            datapath=datapath or DatapathConfig(),
        )
    deployment = HydraDeployment(
        cluster, config, seed=seed, start_monitors=start_monitors
    )
    return HydraCluster(cluster=cluster, deployment=deployment)


def build_backend(
    kind: str,
    cluster: Cluster,
    client: int = 0,
    slab_size_bytes: int = 1 << 20,
    payload_mode: str = "real",
    rng: Optional[RandomSource] = None,
    **kwargs,
):
    """Construct a baseline backend of ``kind`` on an existing cluster.

    ``kind`` is one of ``replication``, ``swarm``, ``ssd_backup``,
    ``compressed`` or ``direct`` (for Hydra use
    :func:`build_hydra_cluster`).
    """
    if kind == "hydra":
        raise ValueError("use build_hydra_cluster() for the hydra backend")
    config = BaselineConfig(slab_size_bytes=slab_size_bytes)
    rng = rng or RandomSource(client, f"{kind}{client}")
    if kind == "replication":
        return ReplicationBackend(
            cluster, client, config, rng, payload_mode=payload_mode, **kwargs
        )
    if kind == "swarm":
        return SwarmReplicationBackend(
            cluster, client, config, rng, payload_mode=payload_mode, **kwargs
        )
    if kind == "ssd_backup":
        return SSDBackupBackend(
            cluster, client, config, rng, payload_mode=payload_mode, **kwargs
        )
    if kind == "compressed":
        return CompressedReplicationBackend(
            cluster, client, config, rng, payload_mode=payload_mode, **kwargs
        )
    if kind == "direct":
        return DirectRemoteMemory(
            cluster, client, config, rng, payload_mode=payload_mode, **kwargs
        )
    raise ValueError(f"unknown backend kind {kind!r}; choose from {BACKEND_KINDS}")


class NamespacedPool:
    """A page-namespace view of a shared backend.

    Several containers on one machine share its Resilience Manager; each
    container gets its own page-id window so streams never collide.
    """

    def __init__(self, backend, base_page: int):
        self.backend = backend
        self.sim = backend.sim
        self.base_page = base_page

    def write(self, page_id: int, data=None, parent=None):
        return self.backend.write(self.base_page + page_id, data, parent=parent)

    def read(self, page_id: int, parent=None):
        return self.backend.read(self.base_page + page_id, parent=parent)

    @property
    def name(self):
        return self.backend.name
