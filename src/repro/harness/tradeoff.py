"""Figure 1: the performance-vs-efficiency tradeoff space.

For each resilience scheme, measure 4 KB remote read latency *in the
presence of a failure* (one remote machine hosting data is dead) against
the scheme's memory overhead:

* SSD backup — 1x overhead, disk-bound latency under failure;
* 2x / 3x replication — fast but 2-3x overhead;
* compressed + replicated — ~1.3x overhead, >10 µs latency;
* naive RS over RDMA — Hydra's coding with all four data-path
  optimizations disabled (the ~20 µs point);
* Hydra — 1.25x overhead, single-µs latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim import RandomSource
from .builders import build_backend, build_hydra_cluster
from .microbench import page_generator, run_process
from .scenarios import build_pool, victim_machines

__all__ = ["TradeoffPoint", "measure_tradeoff_point", "tradeoff_sweep", "SCHEMES"]

SCHEMES = (
    "ssd_backup",
    "replication_2x",
    "replication_3x",
    "swarm",
    "compressed",
    "rs_naive",
    "hydra",
)


@dataclass
class TradeoffPoint:
    """One scheme's position in the Figure 1 plane."""

    scheme: str
    memory_overhead: float
    read_p50_us: float
    read_p99_us: float
    write_p50_us: float
    write_p99_us: float


def _build(scheme: str, machines: int, seed: int):
    if scheme == "hydra":
        hydra = build_hydra_cluster(machines=machines, seed=seed)
        return hydra.cluster, hydra.remote_memory(0)
    if scheme == "rs_naive":
        from ..core import DatapathConfig

        hydra = build_hydra_cluster(
            machines=machines, seed=seed, datapath=DatapathConfig().all_off()
        )
        return hydra.cluster, hydra.remote_memory(0)
    if scheme == "replication_2x":
        cluster, pool = build_pool("replication", machines, seed, payload_mode="real")
        return cluster, pool
    if scheme == "replication_3x":
        from ..cluster import Cluster

        cluster = Cluster(machines=machines, memory_per_machine=1 << 30, seed=seed)
        pool = build_backend(
            "replication", cluster, payload_mode="real", copies=3
        )
        return cluster, pool
    if scheme in ("ssd_backup", "compressed", "swarm"):
        cluster, pool = build_pool(scheme, machines, seed, payload_mode="real")
        return cluster, pool
    raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")


def measure_tradeoff_point(
    scheme: str,
    machines: int = 12,
    seed: int = 0,
    n_pages: int = 48,
    ops: int = 250,
    with_failure: bool = True,
) -> TradeoffPoint:
    """Latency/overhead of one scheme, optionally with a dead remote host."""
    cluster, pool = _build(scheme, machines, seed)
    sim = cluster.sim
    make_page = page_generator()

    def warm():
        for page_id in range(n_pages):
            yield pool.write(page_id, make_page(page_id))

    run_process(sim, sim.process(warm(), name="warm"), until=1e9)

    if with_failure:
        victims = victim_machines(pool, 1)
        if victims:
            cluster.machine(victims[0]).fail()
        sim.run(until=sim.now + 1000.0)  # let disconnects propagate

    rng = RandomSource(seed, f"tradeoff/{scheme}")
    reads, writes = [], []

    def bench():
        for i in range(ops):
            page_id = rng.randint(0, n_pages - 1)
            start = sim.now
            yield pool.read(page_id)
            reads.append(sim.now - start)
        for i in range(ops):
            page_id = rng.randint(0, n_pages - 1)
            start = sim.now
            yield pool.write(page_id, make_page(page_id))
            writes.append(sim.now - start)

    run_process(sim, sim.process(bench(), name="bench"), until=1e9)
    from ..sim import summarize

    read_summary = summarize(reads, name=f"{scheme}.read")
    write_summary = summarize(writes, name=f"{scheme}.write")
    return TradeoffPoint(
        scheme=scheme,
        memory_overhead=pool.memory_overhead,
        read_p50_us=read_summary.p50,
        read_p99_us=read_summary.p99,
        write_p50_us=write_summary.p50,
        write_p99_us=write_summary.p99,
    )


def tradeoff_sweep(
    schemes: Optional[List[str]] = None,
    machines: int = 12,
    seed: int = 0,
    with_failure: bool = True,
) -> List[TradeoffPoint]:
    """Figure 1's full point set."""
    return [
        measure_tradeoff_point(s, machines=machines, seed=seed, with_failure=with_failure)
        for s in (schemes or SCHEMES)
    ]
