"""Wall-clock performance suite — ``python -m repro perf``.

Everything else in this repository measures *simulated* time; this module
measures how fast the simulator itself runs on the host. It exists to
catch performance regressions in the three layers the data path burns CPU
on:

* the discrete-event engine (``repro.sim.engine``) — events/second;
* the GF(2^8) Reed-Solomon codec (``repro.ec``) — MB/second for encode,
  decode, verify, correct, and the batched (vectorized) paths;
* the end-to-end Resilience Manager data path — pages/second through a
  full simulated cluster (RDMA model, gathers, background verify).

Every workload is seeded and deterministic: two runs on the same machine
execute the identical event sequence, so wall-clock differences are real.
The end-to-end scenario additionally emits *simulated-time* anchors
(``sim_now_us``, latency percentiles, a SHA-256 over every page read
back). Those must be byte-identical across machines and optimization
work; if an anchor moves, the change was not semantics-preserving.

Results are written as ``BENCH_perf.json`` (schema documented in
``docs/PERFORMANCE.md``). Compare runs with best-of-N wall times — the
suite already takes the minimum over ``repeats`` runs of each workload,
which is the standard way to denoise a loaded machine.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..ec import PageCodec
from ..sim import Simulator
from .builders import build_hydra_cluster
from .microbench import page_generator, run_process

__all__ = [
    "SCHEMA",
    "PERF_BENCH_NAMES",
    "run_perf_shard",
    "run_perf_suite",
    "deterministic_anchors",
    "compare_results",
    "format_results",
    "main",
]

SCHEMA = "hydra-perf/1"

PAGE_SIZE = 4096
_MB = 1024 * 1024

# Canonical benchmark order; also the shard decomposition for ``-j``.
PERF_BENCH_NAMES = (
    "engine_events",
    "engine_events_calendar",
    "ec_encode",
    "ec_decode",
    "ec_verify",
    "ec_correct",
    "ec_correct_guaranteed",
    "ec_correct_best_effort",
    "ec_batch_encode",
    "ec_batch_decode",
    "ec_slab_encode",
    "ec_slab_decode",
    "ec_slab_correct",
    "rdma_completion_batch",
    "rm_end_to_end",
    "rm_corrupted",
    "obs_overhead",
)

_EC_OPS = (
    "ec_encode",
    "ec_decode",
    "ec_verify",
    "ec_correct",
    "ec_correct_guaranteed",
    "ec_correct_best_effort",
    "ec_batch_encode",
    "ec_batch_decode",
    "ec_slab_encode",
    "ec_slab_decode",
    "ec_slab_correct",
)

# The raw-kernel slab benchmarks always run this many pages (1 MB of
# data at the 4 KB page size) regardless of --quick, so their MB/s is
# comparable across modes and matches the kernel's design point.
_SLAB_PAGES = 256

# Simulated-time (or size-derived) fields per benchmark that must be
# byte-identical across hosts, repeat counts, and ``-j`` values — the
# determinism contract the parallel runner is held to. Wall-clock fields
# (``seconds`` and the rates derived from it) are deliberately absent.
_ANCHOR_FIELDS: Dict[str, Tuple[str, ...]] = {
    "engine_events": ("events", "sim_now_us"),
    "engine_events_calendar": ("events", "sim_now_us"),
    "ec_encode": ("pages", "mb"),
    "ec_decode": ("pages", "mb"),
    "ec_verify": ("pages", "mb"),
    "ec_correct": ("pages", "mb"),
    "ec_correct_guaranteed": ("pages", "mb"),
    "ec_correct_best_effort": ("pages", "mb", "corrupt_pages"),
    "ec_batch_encode": ("pages", "mb"),
    "ec_batch_decode": ("pages", "mb"),
    "ec_slab_encode": ("pages", "mb"),
    "ec_slab_decode": ("pages", "mb"),
    "ec_slab_correct": ("pages", "mb"),
    "rdma_completion_batch": ("posts", "sim_now_us"),
    "rm_end_to_end": (
        "ops",
        "page_ops",
        "sim_now_us",
        "pages_sha256",
        "read_p50_us",
        "write_p50_us",
        "read_hist",
        "write_hist",
        "queue_entries",
    ),
    "rm_corrupted": (
        "ops",
        "sim_now_us",
        "pages_sha256",
        "corrected_reads",
        "healed_splits",
    ),
    "obs_overhead": (
        "ops",
        "sim_now_us",
        "pages_sha256",
        "frames",
        "health_transitions",
    ),
}

# Wall-clock throughput fields per benchmark, for ``--compare``: the new
# run regresses when any of these drops below baseline * (1 - tolerance).
_RATE_FIELDS = ("events_per_sec", "mb_per_sec", "pages_per_sec", "posts_per_sec")


def _suite_sizes(quick: bool) -> Tuple[int, int, int, int, int, int]:
    """(engine_events, calendar_events, ec_pages, correct_pages, rm_ops,
    rm_corrupt_ops).

    ``correct_pages`` sized for a multi-millisecond timed region: the
    guided localizer corrects a page in ~0.1 ms, so the old 8-page
    workload (sized for the combinatorial scan) timed mostly noise.
    ``calendar_events`` is larger than ``engine_events`` because the
    calendar burst path dispatches an order of magnitude faster — the
    timed region has to stay in the milliseconds.
    """
    if quick:
        return 40_000, 200_000, 256, 64, 300, 120
    return 200_000, 1_000_000, 2048, 384, 2000, 800


def _best_of(workload: Callable[[], dict], repeats: int) -> Tuple[float, dict]:
    """Run ``workload`` ``repeats`` times; return (best wall seconds, its
    payload). Minimum-of-N is robust against other load on the machine."""
    best_dt: Optional[float] = None
    best_payload: dict = {}
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        payload = workload()
        dt = time.perf_counter() - t0
        if best_dt is None or dt < best_dt:
            best_dt, best_payload = dt, payload
    return best_dt, best_payload


# ----------------------------------------------------------------------
# 1. Engine event throughput
# ----------------------------------------------------------------------
def bench_engine(n_events: int, repeats: int) -> dict:
    """Dispatch throughput of the discrete-event core: ``n_events``
    timeouts spread over 8 concurrent processes, no payload work."""

    def workload() -> dict:
        sim = Simulator()
        per_process = n_events // 8

        def ticker():
            for _ in range(per_process):
                yield sim.timeout(1.0)

        for i in range(8):
            sim.process(ticker(), name=f"ticker-{i}")
        sim.run()
        return {"entries": sim._active, "sim_now_us": sim.now}

    seconds, payload = _best_of(workload, repeats)
    return {
        "events": payload["entries"],
        "seconds": round(seconds, 6),
        "events_per_sec": round(payload["entries"] / seconds),
        "sim_now_us": payload["sim_now_us"],
    }


def bench_engine_calendar(n_events: int, repeats: int) -> dict:
    """Completion-burst throughput of the calendar-queue scheduler.

    The workload is shaped like the RDMA completion traffic that dominates
    event volume at rack scale: 8 staggered chains, each re-arming a
    64-wide fused completion batch (``call_later_batch``) at sub-bucket
    delays, so the scheduler sees O(1) bucket appends on insert and
    sorted batch drains on dispatch — the two paths the calendar design
    exists for. No payload work; the number is pure engine overhead.

    Deterministic: the chains re-arm until ``_active`` reaches
    ``n_events``, so the anchor fields (``events``, ``sim_now_us``) are a
    pure function of ``n_events``.
    """
    burst_width = 64
    delays = (0.3, 1.7, 0.9, 2.4, 0.1, 3.1, 0.6, 1.2)

    def workload() -> dict:
        sim = Simulator()
        nop = int  # cheapest deterministic no-op callable

        def make_chain(chain: int):
            beat = [chain]

            def rearm() -> None:
                if sim._seq < n_events:
                    beat[0] += 1
                    sim.call_later_batch(delays[beat[0] & 7], burst)

            burst = (nop,) * (burst_width - 1) + (rearm,)
            return rearm

        for chain in range(8):
            sim.call_later(delays[chain], make_chain(chain))
        sim.run()
        return {"entries": sim._active, "sim_now_us": round(sim.now, 6)}

    seconds, payload = _best_of(workload, repeats)
    return {
        "events": payload["entries"],
        "seconds": round(seconds, 6),
        "events_per_sec": round(payload["entries"] / seconds),
        "sim_now_us": payload["sim_now_us"],
    }


# ----------------------------------------------------------------------
# 2. Reed-Solomon codec throughput
# ----------------------------------------------------------------------
def _ec_pages(codec: PageCodec, n_pages: int) -> list:
    make_page = page_generator(codec.page_size, seed=99)
    return [make_page(i) for i in range(n_pages)]


def bench_ec(
    n_pages: int,
    correct_pages: int,
    repeats: int,
    k: int = 8,
    r: int = 2,
    ops: Optional[Sequence[str]] = None,
) -> Dict[str, dict]:
    """Batched and per-page codec throughput at the paper's RS(8+2) point.

    The headline ``ec_encode`` / ``ec_decode`` / ``ec_correct`` rows
    measure the slab-wide batch entry points — the path every RM hot loop
    now takes (encode-on-write, grouped decode-on-read, correction
    sweeps). ``decode`` uses a non-systematic split set (one data split
    replaced by a parity split) — the case late-binding reads actually
    hit; ``correct`` localizes one corrupted split per page from
    k+2Δ+1 = 11 splits (Δ=1) with *every* page corrupted, the worst case
    for the batched localizer. ``ec_verify`` and
    ``ec_correct_guaranteed`` keep exercising the per-page scalar codec,
    and the ``ec_slab_*`` rows time the raw (fixed 256-page) kernels with
    all staging prebuilt.

    ``ops`` restricts the run to a subset of :data:`PERF_BENCH_NAMES`'s
    ``ec_*`` entries (the parallel runner shards one op per worker);
    ``None`` runs all. Each op's setup and measurement are identical
    either way.
    """
    selected = tuple(_EC_OPS) if ops is None else tuple(ops)
    unknown = set(selected) - set(_EC_OPS)
    if unknown:
        raise ValueError(f"unknown ec benchmark(s): {sorted(unknown)}")
    codec = PageCodec(k, r, page_size=PAGE_SIZE)
    pages = _ec_pages(codec, n_pages)
    needs_encoded = set(selected) - {
        "ec_encode", "ec_batch_encode", "ec_correct_guaranteed",
    }
    enc_stack = codec.encode_batch(pages) if needs_encoded else None
    mb = n_pages * PAGE_SIZE / _MB
    indices = list(range(k - 1)) + [k]  # drop data split k-1, use parity k
    results: Dict[str, dict] = {}

    # -- encode (pages -> k+r split stacks, the batched write path) ----
    if "ec_encode" in selected:
        def encode_workload() -> dict:
            codec.encode_batch(pages)
            return {}

        seconds, _ = _best_of(encode_workload, repeats)
        results["ec_encode"] = {
            "pages": n_pages, "mb": round(mb, 3), "seconds": round(seconds, 6),
            "mb_per_sec": round(mb / seconds, 2),
        }

    # -- decode (non-systematic k of k+r, the late-binding read path) --
    if "ec_decode" in selected:
        received_stack = np.ascontiguousarray(enc_stack[:, indices])

        def decode_workload() -> dict:
            codec.decode_batch(indices, received_stack)
            return {}

        seconds, _ = _best_of(decode_workload, repeats)
        results["ec_decode"] = {
            "pages": n_pages, "mb": round(mb, 3), "seconds": round(seconds, 6),
            "mb_per_sec": round(mb / seconds, 2),
        }

    # -- verify (k+1 splits, the background consistency check; stays on
    # the per-page scalar codec on purpose) ----------------------------
    if "ec_verify" in selected:
        verify_sets = [
            {i: enc_stack[page, i] for i in range(k + 1)}
            for page in range(n_pages)
        ]

        def verify_workload() -> dict:
            ok = 0
            for splits in verify_sets:
                ok += codec.verify(splits)
            return {"ok": ok}

        seconds, payload = _best_of(verify_workload, repeats)
        if payload["ok"] != n_pages:
            raise RuntimeError("verify benchmark saw an inconsistent page")
        results["ec_verify"] = {
            "pages": n_pages, "mb": round(mb, 3), "seconds": round(seconds, 6),
            "mb_per_sec": round(mb / seconds, 2),
        }

    # -- correct (1 corrupted split among all k+r on every page, batch
    # majority decoding; the RM clamps correction fanout to n and
    # localizes best-effort) -------------------------------------------
    if "ec_correct" in selected:
        all_indices = list(range(codec.n))
        corrupt_stack = enc_stack[:correct_pages].copy()
        corrupt_stack[:, 2, :16] ^= 0xA5  # deterministic corruption
        correct_mb = correct_pages * PAGE_SIZE / _MB
        # Warm the compiled GF plan caches (decode plans, extras
        # transform, residual ratios) so the timed region measures
        # steady-state correction, not one-time plan compilation.
        codec.correct_batch(
            all_indices, corrupt_stack[:1], max_errors=1, best_effort=True
        )

        def correct_workload() -> dict:
            _, corrupted = codec.correct_batch(
                all_indices, corrupt_stack, max_errors=1, best_effort=True
            )
            return {"located": sum(bad == [2] for bad in corrupted)}

        seconds, payload = _best_of(correct_workload, repeats)
        if payload["located"] != correct_pages:
            raise RuntimeError("correct benchmark failed to localize corruption")
        results["ec_correct"] = {
            "pages": correct_pages, "mb": round(correct_mb, 3),
            "seconds": round(seconds, 6),
            "mb_per_sec": round(correct_mb / seconds, 2),
        }

    # -- correct, guaranteed mode (k+2Δ+1 = 11 splits at RS(8+3): any
    # single corruption is provably localized, no best-effort caveats) --
    if "ec_correct_guaranteed" in selected:
        codec_g = PageCodec(k, 3, page_size=PAGE_SIZE)
        guaranteed_sets = []
        for page in pages[:correct_pages]:
            splits = codec_g.encode(page)
            received_all = {i: splits[i].copy() for i in range(codec_g.n)}
            received_all[2][:16] ^= 0xA5  # deterministic corruption
            guaranteed_sets.append(received_all)
        guaranteed_mb = correct_pages * PAGE_SIZE / _MB
        # Same steady-state warm-up as ec_correct, for this codec's caches.
        codec_g.correct(guaranteed_sets[0], max_errors=1)

        def correct_guaranteed_workload() -> dict:
            located = 0
            for splits in guaranteed_sets:
                _, corrupted = codec_g.correct(splits, max_errors=1)
                located += corrupted == [2]
            return {"located": located}

        seconds, payload = _best_of(correct_guaranteed_workload, repeats)
        if payload["located"] != correct_pages:
            raise RuntimeError(
                "guaranteed correct benchmark failed to localize corruption"
            )
        results["ec_correct_guaranteed"] = {
            "pages": correct_pages, "mb": round(guaranteed_mb, 3),
            "seconds": round(seconds, 6),
            "mb_per_sec": round(guaranteed_mb / seconds, 2),
        }

    # -- batched best-effort correct (a corruption sweep: most pages are
    # clean and ride the batched residual check; every 16th page carries
    # one corrupted split that the per-page localizer must fix) ---------
    if "ec_correct_best_effort" in selected:
        all_indices = list(range(codec.n))
        sweep_stack = enc_stack.copy()
        dirty_pages = list(range(0, n_pages, 16))
        for page in dirty_pages:
            sweep_stack[page, 2, :16] ^= 0xA5  # deterministic corruption

        def correct_sweep_workload() -> dict:
            _, corrupted = codec.correct_batch(
                all_indices, sweep_stack, max_errors=1, best_effort=True
            )
            located = [page for page, bad in enumerate(corrupted) if bad == [2]]
            return {"located": located}

        seconds, payload = _best_of(correct_sweep_workload, repeats)
        if payload["located"] != dirty_pages:
            raise RuntimeError(
                "batched correct benchmark failed to localize corruption"
            )
        results["ec_correct_best_effort"] = {
            "pages": n_pages, "mb": round(mb, 3),
            "corrupt_pages": len(dirty_pages),
            "seconds": round(seconds, 6),
            "mb_per_sec": round(mb / seconds, 2),
        }

    # -- batched encode/decode (the vectorized slab paths) -------------
    if "ec_batch_encode" in selected:
        def batch_encode_workload() -> dict:
            codec.encode_batch(pages)
            return {}

        seconds, _ = _best_of(batch_encode_workload, repeats)
        results["ec_batch_encode"] = {
            "pages": n_pages, "mb": round(mb, 3), "seconds": round(seconds, 6),
            "mb_per_sec": round(mb / seconds, 2),
        }

    if "ec_batch_decode" in selected:
        stack = np.ascontiguousarray(enc_stack[:, indices])

        def batch_decode_workload() -> dict:
            codec.decode_batch(indices, stack)
            return {}

        seconds, _ = _best_of(batch_decode_workload, repeats)
        results["ec_batch_decode"] = {
            "pages": n_pages, "mb": round(mb, 3), "seconds": round(seconds, 6),
            "mb_per_sec": round(mb / seconds, 2),
        }

    # -- raw slab kernels (fixed 256-page slab, staging prebuilt): the
    # GF throughput ceiling the batch entry points are chasing ----------
    slab_selected = {"ec_slab_encode", "ec_slab_decode", "ec_slab_correct"}
    if slab_selected & set(selected):
        from ..ec.vectorized import correct_pages as slab_correct
        from ..ec.vectorized import decode_pages as slab_decode
        from ..ec.vectorized import encode_pages as slab_encode

        slab_mb = _SLAB_PAGES * PAGE_SIZE / _MB
        slab_pages = _ec_pages(codec, _SLAB_PAGES)
        slab_enc = codec.encode_batch(slab_pages)

        if "ec_slab_encode" in selected:
            slab_data = np.ascontiguousarray(slab_enc[:, :k])

            def slab_encode_workload() -> dict:
                slab_encode(codec.code, slab_data)
                return {}

            seconds, _ = _best_of(slab_encode_workload, repeats)
            results["ec_slab_encode"] = {
                "pages": _SLAB_PAGES, "mb": round(slab_mb, 3),
                "seconds": round(seconds, 6),
                "mb_per_sec": round(slab_mb / seconds, 2),
            }

        if "ec_slab_decode" in selected:
            slab_received = np.ascontiguousarray(slab_enc[:, indices])
            codec.code.decode_matrix(tuple(indices))  # warm the plan cache

            def slab_decode_workload() -> dict:
                slab_decode(codec.code, indices, slab_received)
                return {}

            seconds, _ = _best_of(slab_decode_workload, repeats)
            results["ec_slab_decode"] = {
                "pages": _SLAB_PAGES, "mb": round(slab_mb, 3),
                "seconds": round(seconds, 6),
                "mb_per_sec": round(slab_mb / seconds, 2),
            }

        if "ec_slab_correct" in selected:
            all_indices = list(range(codec.n))
            slab_corrupt = slab_enc.copy()
            slab_corrupt[:, 2, :16] ^= 0xA5  # every page corrupt
            slab_correct(
                codec.code, all_indices, slab_corrupt[:1],
                max_errors=1, best_effort=True,
            )

            def slab_correct_workload() -> dict:
                _, corrupted = slab_correct(
                    codec.code, all_indices, slab_corrupt,
                    max_errors=1, best_effort=True,
                )
                return {"located": sum(bad == [2] for bad in corrupted)}

            seconds, payload = _best_of(slab_correct_workload, repeats)
            if payload["located"] != _SLAB_PAGES:
                raise RuntimeError(
                    "slab correct benchmark failed to localize corruption"
                )
            results["ec_slab_correct"] = {
                "pages": _SLAB_PAGES, "mb": round(slab_mb, 3),
                "seconds": round(seconds, 6),
                "mb_per_sec": round(slab_mb / seconds, 2),
            }
    return results


# ----------------------------------------------------------------------
# 3. End-to-end pages/sec through the Resilience Manager
# ----------------------------------------------------------------------
class _PerfNode:
    """Minimal fabric endpoint for the raw verb benchmark: an id, a NIC,
    and an alive flag — no slabs, no RM, no control plane."""

    __slots__ = ("id", "nic", "alive")

    def __init__(self, machine_id: int, nic) -> None:
        self.id = machine_id
        self.nic = nic
        self.alive = True

    def deliver_message(self, src_id: int, message) -> None:  # pragma: no cover
        raise RuntimeError("perf nodes exchange no control messages")


def bench_rdma_completion_batch(posts: int, repeats: int) -> dict:
    """Raw RDMA verb throughput: split-sized write bursts across 8 QPs.

    Every round posts one 512 B one-sided WRITE per queue pair at a
    single simulated instant — the exact shape of the RM's data-split
    fan-out — then waits for the burst to complete before the next round.
    No erasure coding, no gathers, no RM: the measured rate isolates the
    post → latency-draw → completion-dispatch pipeline that every split
    of every page op pays. ``sim_now_us`` and ``posts`` are simulated
    anchors; a change means the latency model or RNG stream moved.
    """
    from ..net import Nic, RdmaFabric
    from ..net.config import NetworkConfig
    from ..obs import MetricsRegistry
    from ..sim import RandomSource

    fanout = 8
    rounds = posts // fanout

    def workload() -> dict:
        sim = Simulator()
        config = NetworkConfig()
        metrics = MetricsRegistry()
        fabric = RdmaFabric(sim, config, RandomSource(7, "perf-rdma"))
        for machine_id in range(fanout + 1):
            fabric.register(
                _PerfNode(machine_id, Nic(config, machine_id, metrics))
            )
        qps = [fabric.qp(0, target) for target in range(1, fanout + 1)]
        state = {"completed": 0}

        def apply() -> None:
            state["completed"] += 1

        def driver():
            for _ in range(rounds):
                acks = [qp.post_write(512, apply=apply) for qp in qps]
                yield sim.all_of(acks)

        run_process(sim, sim.process(driver(), name="perf-rdma"), until=1e12)
        if state["completed"] != rounds * fanout:
            raise RuntimeError("verb benchmark lost completions")
        return {"sim_now_us": sim.now}

    seconds, payload = _best_of(workload, repeats)
    total = rounds * fanout
    return {
        "posts": total,
        "seconds": round(seconds, 6),
        "posts_per_sec": round(total / seconds, 1),
        "sim_now_us": payload["sim_now_us"],
    }


def bench_rm_end_to_end(ops: int, repeats: int) -> dict:
    """The headline scenario: a full simulated cluster (12 machines,
    RS(8+2), Δ=1, real payloads, read verification on — the default
    configuration) running ``ops`` write+read pairs over 64 pages.

    Wall seconds are host performance; the ``sim_now_us`` /
    ``pages_sha256`` / latency anchors are simulated-time outputs that
    must not move when the host-side code gets faster.
    """

    def workload() -> dict:
        hydra = build_hydra_cluster(machines=12, k=8, r=2, delta=1, seed=1)
        rm = hydra.remote_memory(0)
        sim = hydra.sim
        make_page = page_generator()
        pages = [make_page(pid) for pid in range(64)]
        digest = hashlib.sha256()

        def driver():
            for i in range(ops):
                pid = i % 64
                yield rm.write(pid, pages[pid])
                data = yield rm.read(pid)
                digest.update(data)

        run_process(sim, sim.process(driver(), name="perf-rm"), until=1e12)
        return {
            "sim_now_us": sim.now,
            "pages_sha256": digest.hexdigest(),
            "read_p50_us": rm.read_latency.p50,
            "write_p50_us": rm.write_latency.p50,
            "read_hist": rm.read_latency.hist.to_dict(),
            "write_hist": rm.write_latency.hist.to_dict(),
            "queue_entries": sim._active,
        }

    seconds, payload = _best_of(workload, repeats)
    page_ops = 2 * ops  # each pair moves one page out and one page back
    return {
        "ops": ops,
        "page_ops": page_ops,
        "seconds": round(seconds, 6),
        "pages_per_sec": round(page_ops / seconds, 1),
        "sim_now_us": payload["sim_now_us"],
        "pages_sha256": payload["pages_sha256"],
        "read_p50_us": payload["read_p50_us"],
        "write_p50_us": payload["write_p50_us"],
        "read_hist": payload["read_hist"],
        "write_hist": payload["write_hist"],
        "queue_entries": payload["queue_entries"],
    }


def bench_rm_corrupted(ops: int, repeats: int) -> dict:
    """The corruption-heavy data path: the same cluster shape as
    :func:`bench_rm_end_to_end` (different seed) with a
    :class:`~repro.cluster.CorruptionInjector` flipping bytes in stored
    splits every fourth op, so a steady fraction of reads exercises the
    detect → correct → heal pipeline instead of the clean fast path.

    Anchors: besides ``sim_now_us`` and the read-back SHA (corrected reads
    must return the original bytes), the ``corrected_reads`` and
    ``healed_splits`` RM counters pin *how much* correction happened — if
    an optimization changes either, it changed semantics, not just speed.
    """

    def workload() -> dict:
        from ..cluster import CorruptionInjector
        from ..sim import RandomSource

        hydra = build_hydra_cluster(machines=12, k=8, r=2, delta=1, seed=3)
        rm = hydra.remote_memory(0)
        sim = hydra.sim
        injector = CorruptionInjector(sim, RandomSource(17, "perf-corrupt"))
        make_page = page_generator()
        pages = [make_page(pid) for pid in range(48)]
        digest = hashlib.sha256()

        def driver():
            for i in range(ops):
                pid = i % 48
                yield rm.write(pid, pages[pid])
                if i % 4 == 0:
                    victim = hydra.cluster.machine(1 + i % 11)
                    injector.corrupt_machine(victim, fraction=0.5)
                data = yield rm.read(pid)
                digest.update(data)

        run_process(sim, sim.process(driver(), name="perf-rm-corrupt"), until=1e12)
        return {
            "sim_now_us": sim.now,
            "pages_sha256": digest.hexdigest(),
            "corrected_reads": rm.events["corrected_reads"],
            "healed_splits": rm.events["healed_splits"],
        }

    seconds, payload = _best_of(workload, repeats)
    page_ops = 2 * ops
    if payload["corrected_reads"] == 0:
        raise RuntimeError("corrupted-path benchmark never exercised correction")
    return {
        "ops": ops,
        "page_ops": page_ops,
        "seconds": round(seconds, 6),
        "pages_per_sec": round(page_ops / seconds, 1),
        "sim_now_us": payload["sim_now_us"],
        "pages_sha256": payload["pages_sha256"],
        "corrected_reads": payload["corrected_reads"],
        "healed_splits": payload["healed_splits"],
    }


def bench_obs_overhead(ops: int, repeats: int) -> dict:
    """Wall-clock cost of the full telemetry stack on the hot data path.

    Runs the :func:`bench_rm_end_to_end` workload twice: once with the
    cluster sampler + SLO health monitor + flight recorder enabled (what
    every chaos run and ``repro top`` pay), once bare. The telemetry is
    read-only with respect to the simulation, so the simulated-time
    anchors (``sim_now_us``, ``pages_sha256``) must equal the bare run's
    — and ``rm_end_to_end``'s — exactly; only wall seconds may differ.
    ``overhead_pct`` is informational; the gated rate is the monitored
    run's ``pages_per_sec`` (the ≤5%% budget shows up as this staying
    within the ``--compare`` tolerance of its baseline).
    """

    def variant(monitored: bool) -> Callable[[], dict]:
        def workload() -> dict:
            hydra = build_hydra_cluster(machines=12, k=8, r=2, delta=1, seed=1)
            rm = hydra.remote_memory(0)
            sim = hydra.sim
            if monitored:
                # The data path spans only a few simulated ms, so sample
                # every 200 sim-us (~1 frame per 22 ops, 100x denser than
                # the production 20 ms ControlPeriod) — dense enough that
                # a sampler regression moves the number, sparse enough
                # that the steady-state cost stays inside the ~5% budget.
                hydra.cluster.obs.enable_monitoring(
                    hydra.cluster, rms=[rm], period_us=200.0
                )
            make_page = page_generator()
            pages = [make_page(pid) for pid in range(64)]
            digest = hashlib.sha256()

            def driver():
                for i in range(ops):
                    pid = i % 64
                    yield rm.write(pid, pages[pid])
                    data = yield rm.read(pid)
                    digest.update(data)

            run_process(sim, sim.process(driver(), name="perf-rm-obs"), until=1e12)
            payload = {
                "sim_now_us": sim.now,
                "pages_sha256": digest.hexdigest(),
            }
            if monitored:
                obs = hydra.cluster.obs
                payload["frames"] = obs.sampler.frames
                payload["health_transitions"] = len(obs.health.transitions)
            return payload

        return workload

    on_seconds, on_payload = _best_of(variant(True), repeats)
    off_seconds, off_payload = _best_of(variant(False), repeats)
    if on_payload["sim_now_us"] != off_payload["sim_now_us"] or (
        on_payload["pages_sha256"] != off_payload["pages_sha256"]
    ):
        raise RuntimeError(
            "telemetry perturbed the simulation: monitored and bare runs "
            "diverged on simulated-time anchors"
        )
    page_ops = 2 * ops
    return {
        "ops": ops,
        "page_ops": page_ops,
        "seconds": round(on_seconds, 6),
        "baseline_seconds": round(off_seconds, 6),
        "pages_per_sec": round(page_ops / on_seconds, 1),
        "baseline_pages_per_sec": round(page_ops / off_seconds, 1),
        "overhead_pct": round(100.0 * (on_seconds - off_seconds) / off_seconds, 2),
        "sim_now_us": on_payload["sim_now_us"],
        "pages_sha256": on_payload["pages_sha256"],
        "frames": on_payload["frames"],
        "health_transitions": on_payload["health_transitions"],
    }


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------
def run_perf_shard(name: str, quick: bool, repeats: int) -> Dict[str, dict]:
    """One shard of the suite: the benchmark(s) behind ``name``.

    Top-level (picklable) so the parallel runner can dispatch it to a
    worker process. Returns a ``{benchmark_name: payload}`` fragment that
    merges into the suite document; the payload is identical to what the
    serial suite computes for that benchmark.
    """
    (engine_events, calendar_events, ec_pages, correct_pages,
     rm_ops, rm_corrupt_ops) = _suite_sizes(quick)
    if name == "engine_events":
        return {"engine_events": bench_engine(engine_events, repeats)}
    if name == "engine_events_calendar":
        return {
            "engine_events_calendar": bench_engine_calendar(
                calendar_events, repeats
            )
        }
    if name in _EC_OPS:
        return bench_ec(ec_pages, correct_pages, repeats, ops=(name,))
    if name == "rdma_completion_batch":
        return {
            "rdma_completion_batch": bench_rdma_completion_batch(
                16_000 if quick else 96_000, repeats
            )
        }
    if name == "rm_end_to_end":
        return {"rm_end_to_end": bench_rm_end_to_end(rm_ops, repeats)}
    if name == "rm_corrupted":
        return {"rm_corrupted": bench_rm_corrupted(rm_corrupt_ops, repeats)}
    if name == "obs_overhead":
        return {"obs_overhead": bench_obs_overhead(rm_ops, repeats)}
    raise ValueError(f"unknown perf shard {name!r}")


def run_perf_suite(
    quick: bool = False,
    repeats: Optional[int] = None,
    jobs: Union[int, str, None] = 1,
    metrics=None,
    progress=None,
) -> dict:
    """Run every benchmark; returns the BENCH_perf.json document.

    ``jobs`` shards the suite one benchmark per worker process through
    :func:`repro.parallel.run_shards` (``"auto"`` = core count). The
    simulated-time anchors in the document are byte-identical for every
    ``jobs`` value (see :func:`deterministic_anchors`); only the
    wall-clock ``seconds`` fields vary run to run.
    """
    from ..parallel import ShardTask, require_ok, resolve_jobs, run_shards

    if repeats is None:
        repeats = 1 if quick else 3
    jobs = resolve_jobs(jobs)

    tasks = [
        ShardTask(
            key=(index, name),
            fn=run_perf_shard,
            args=(name, quick, repeats),
            label=f"perf:{name}",
        )
        for index, name in enumerate(PERF_BENCH_NAMES)
    ]
    results = require_ok(
        run_shards(
            tasks, jobs=jobs, name="perf", metrics=metrics, progress=progress
        ),
        "perf",
    )
    benchmarks: Dict[str, dict] = {}
    for result in results:
        benchmarks.update(result.value)

    return {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "jobs": jobs,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "benchmarks": benchmarks,
    }


def deterministic_anchors(doc: dict) -> str:
    """Canonical JSON of every deterministic field of a suite document.

    Two runs at the same seed — any host, any ``--repeats``, any ``-j`` —
    must produce byte-identical anchor JSON; the determinism gate test
    pins this. Wall-clock fields (``seconds``, rates, platform strings)
    are excluded because they describe the host, not the simulation.
    """
    anchors = {
        "schema": doc["schema"],
        "quick": doc["quick"],
        "benchmarks": {
            name: {field: doc["benchmarks"][name][field] for field in fields}
            for name, fields in _ANCHOR_FIELDS.items()
            if name in doc["benchmarks"]
        },
    }
    return json.dumps(anchors, indent=2, sort_keys=True) + "\n"


def compare_results(
    current: dict, baseline: dict, tolerance: float = 0.2
) -> list:
    """The regression gate behind ``--compare``: current vs baseline.

    Returns a list of human-readable failure strings (empty = pass):

    * every benchmark present in the baseline must exist in the current
      document (benchmarks only in the current run are new — ignored);
    * every wall-clock rate field (:data:`_RATE_FIELDS`) must satisfy
      ``current >= baseline * (1 - tolerance)``. Rates are host-dependent,
      so CI uses a loose tolerance; local A/B runs can use a tight one;
    * when both documents ran the same mode (``quick`` flags match), the
      simulated-time anchor fields must be *equal* — an anchor drift is a
      semantics change, never acceptable at any tolerance.
    """
    failures = []
    current_benchmarks = current.get("benchmarks", {})
    baseline_benchmarks = baseline.get("benchmarks", {})
    same_mode = current.get("quick") == baseline.get("quick")
    floor = 1.0 - tolerance
    for name, base_row in baseline_benchmarks.items():
        row = current_benchmarks.get(name)
        if row is None:
            failures.append(f"{name}: present in baseline but missing from run")
            continue
        for field in _RATE_FIELDS:
            if field not in base_row:
                continue
            base_rate = base_row[field]
            rate = row.get(field, 0.0)
            if rate < base_rate * floor:
                failures.append(
                    f"{name}: {field} {rate:,.1f} < {floor:.2f} x "
                    f"baseline {base_rate:,.1f}"
                )
        if not same_mode:
            continue
        for field in _ANCHOR_FIELDS.get(name, ()):
            if field not in base_row:
                continue  # baseline predates this anchor
            if row.get(field) != base_row[field]:
                failures.append(
                    f"{name}: anchor {field} moved: "
                    f"{base_row[field]!r} -> {row.get(field)!r}"
                )
    return failures


def format_results(doc: dict) -> str:
    """Human-readable one-line-per-benchmark summary."""
    lines = [
        f"hydra perf suite ({'quick' if doc['quick'] else 'full'}, "
        f"best of {doc['repeats']}) — python {doc['python']}, "
        f"numpy {doc['numpy']}"
    ]
    b = doc["benchmarks"]
    lines.append(
        f"  {'engine':<22} {b['engine_events']['events_per_sec']:>12,} events/s"
        f"  ({b['engine_events']['events']:,} queue entries)"
    )
    if "engine_events_calendar" in b:
        cal = b["engine_events_calendar"]
        lines.append(
            f"  {'engine (calendar)':<22} {cal['events_per_sec']:>12,} events/s"
            f"  ({cal['events']:,} fused completions)"
        )
    for name in _EC_OPS:
        row = b[name]
        lines.append(
            f"  {name:<22} {row['mb_per_sec']:>12,.1f} MB/s"
            f"  ({row['pages']} pages in {row['seconds']:.4f}s)"
        )
    if "rdma_completion_batch" in b:
        rb = b["rdma_completion_batch"]
        lines.append(
            f"  rdma_completion_batch  {rb['posts_per_sec']:>12,.1f} posts/s"
            f"  ({rb['posts']:,} verbs in {rb['seconds']:.3f}s)"
        )
    rm = b["rm_end_to_end"]
    lines.append(
        f"  rm_end_to_end          {rm['pages_per_sec']:>12,.1f} pages/s"
        f"  ({rm['page_ops']} page ops in {rm['seconds']:.3f}s, "
        f"sim t={rm['sim_now_us']:.1f}us)"
    )
    rc = b["rm_corrupted"]
    lines.append(
        f"  rm_corrupted           {rc['pages_per_sec']:>12,.1f} pages/s"
        f"  ({rc['corrected_reads']} corrected reads, "
        f"{rc['healed_splits']} healed splits in {rc['seconds']:.3f}s)"
    )
    if "obs_overhead" in b:
        ov = b["obs_overhead"]
        lines.append(
            f"  obs_overhead           {ov['pages_per_sec']:>12,.1f} pages/s"
            f"  (telemetry on, {ov['overhead_pct']:+.1f}% vs bare "
            f"{ov['baseline_pages_per_sec']:,.1f}, {ov['frames']} frames)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI: ``python -m repro perf [--quick] [--repeats N] [-j N|auto]
    [--output PATH] [--compare BASELINE] [--tolerance F]``.

    With ``--compare`` the run is gated against a baseline document
    (see :func:`compare_results`); regressions exit 3. The baseline is
    read *before* the suite runs, so comparing against the same path
    ``--output`` overwrites is safe.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = False
    repeats: Optional[int] = None
    jobs: Union[int, str] = 1
    output = "BENCH_perf.json"
    compare: Optional[str] = None
    tolerance = 0.2
    usage = (
        "python -m repro perf [--quick] [--repeats N] [-j N|auto] "
        "[--output PATH] [--compare BASELINE] [--tolerance F]"
    )
    while argv:
        arg = argv.pop(0)
        if arg == "--quick":
            quick = True
        elif arg == "--repeats":
            if not argv:
                print("--repeats needs a value", file=sys.stderr)
                return 2
            repeats = int(argv.pop(0))
        elif arg in ("-j", "--jobs"):
            if not argv:
                print(f"{arg} needs a value (or 'auto')", file=sys.stderr)
                return 2
            value = argv.pop(0)
            jobs = value if value == "auto" else int(value)
        elif arg == "--output":
            if not argv:
                print("--output needs a path", file=sys.stderr)
                return 2
            output = argv.pop(0)
        elif arg == "--compare":
            if not argv:
                print("--compare needs a baseline path", file=sys.stderr)
                return 2
            compare = argv.pop(0)
        elif arg == "--tolerance":
            if not argv:
                print("--tolerance needs a fraction in [0, 1)", file=sys.stderr)
                return 2
            tolerance = float(argv.pop(0))
            if not 0.0 <= tolerance < 1.0:
                print(f"--tolerance must be in [0, 1), got {tolerance}",
                      file=sys.stderr)
                return 2
        else:
            print(f"unknown argument {arg!r}; usage: {usage}", file=sys.stderr)
            return 2
    baseline: Optional[dict] = None
    if compare is not None:
        # Read up front: --output may overwrite the baseline path.
        try:
            with open(compare) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {compare!r}: {exc}", file=sys.stderr)
            return 2
        schema = baseline.get("schema") if isinstance(baseline, dict) else None
        if schema != SCHEMA:
            # Checked before the (slow) suite runs: a baseline from a
            # different schema era cannot gate anything meaningfully.
            print(
                f"baseline {compare!r} has schema {schema!r}, expected "
                f"{SCHEMA!r} — regenerate it with `python -m repro perf`",
                file=sys.stderr,
            )
            return 2
    doc = run_perf_suite(quick=quick, repeats=repeats, jobs=jobs, progress=print)
    with open(output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_results(doc))
    print(f"wrote {output}")
    if baseline is not None:
        failures = compare_results(doc, baseline, tolerance=tolerance)
        if failures:
            print(f"perf regression vs {compare} (tolerance {tolerance:.2f}):",
                  file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 3
        print(
            f"compare vs {compare}: ok "
            f"({len(baseline.get('benchmarks', {}))} benchmarks, "
            f"tolerance {tolerance:.2f})"
        )
    return 0
