"""Experiment harness: builders, microbenchmarks, scenarios, reports."""

from .builders import (
    BACKEND_KINDS,
    HydraCluster,
    NamespacedPool,
    build_backend,
    build_hydra_cluster,
)
from .cluster_run import ClusterExperiment, ClusterRunResult, ContainerSpec
from .microbench import LatencyResult, measure_latency, page_generator, run_process
from .report import (
    ascii_timeline,
    banner,
    format_breakdown,
    format_kv,
    format_series,
    format_table,
    span_phase_breakdown,
)
from .scenarios import (
    SCENARIOS,
    WORKLOADS,
    AppResult,
    ScenarioResult,
    build_pool,
    run_app,
    run_uncertainty_scenario,
    victim_machines,
)
from .tradeoff import SCHEMES, TradeoffPoint, measure_tradeoff_point, tradeoff_sweep

__all__ = [
    "BACKEND_KINDS",
    "HydraCluster",
    "NamespacedPool",
    "build_backend",
    "build_hydra_cluster",
    "ClusterExperiment",
    "ClusterRunResult",
    "ContainerSpec",
    "LatencyResult",
    "measure_latency",
    "page_generator",
    "run_process",
    "ascii_timeline",
    "banner",
    "format_breakdown",
    "format_kv",
    "format_series",
    "format_table",
    "span_phase_breakdown",
    "SCENARIOS",
    "WORKLOADS",
    "AppResult",
    "ScenarioResult",
    "build_pool",
    "run_app",
    "run_uncertainty_scenario",
    "victim_machines",
    "SCHEMES",
    "TradeoffPoint",
    "measure_tradeoff_point",
    "tradeoff_sweep",
]
