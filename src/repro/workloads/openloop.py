"""Open-loop load generation against the paged-memory data path.

A :class:`ClosedLoopWorkload` client waits for each operation before
issuing the next, so offered load collapses to service rate and the
latency-under-load curve is unmeasurable. :class:`OpenLoopWorkload`
decouples the two: an :class:`~repro.workloads.arrivals.ArrivalProcess`
schedules request arrivals independently of completions, requests queue
FIFO for a bounded pool of server slots (the frontend's worker threads),
and latency is measured from *scheduled arrival* to completion — so
queueing delay, the quantity that explodes past the saturation knee, is
part of every sample rather than being silently omitted (no coordinated
omission).

Requests are zipfian GET/SET traffic over a :class:`~repro.vmm.PagedMemory`
front-end, like :class:`~repro.workloads.MemcachedWorkload`, but every
random draw (gap, key, op type) happens in the single arrival process, so
a run's request sequence is a pure function of the seed regardless of how
completions interleave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..sim import Counter, LatencyRecorder, RandomSource, Resource, ThroughputWindow
from ..vmm import PagedMemory
from .arrivals import ArrivalProcess

__all__ = ["OpenLoopWorkload", "OpenLoopResult"]


@dataclass
class OpenLoopResult:
    """Everything one offered-load point contributes to a sweep."""

    offered_per_sec: float
    duration_us: float
    issued: int
    completed: int
    completed_in_window: int
    dropped: int
    queue_peak: int
    latency_samples: np.ndarray  # us, one per completed request
    stats: Counter = field(default_factory=Counter)

    @property
    def achieved_per_sec(self) -> float:
        """Completion throughput over the measurement window (requests
        that finished after the window count toward latency, not here)."""
        if self.duration_us <= 0:
            return 0.0
        return self.completed_in_window / (self.duration_us / 1e6)


class OpenLoopWorkload:
    """Open-loop zipfian GET/SET traffic with bounded service concurrency.

    Parameters
    ----------
    memory:
        The paged-memory front-end under test.
    rng:
        Random stream for key/op draws (arrival gaps come from the
        arrival process's own stream).
    arrivals:
        The arrival process supplying inter-arrival gaps.
    n_keys:
        Key-space size; keys map to pages via the same multiplicative
        hash the memcached model uses.
    concurrency:
        Server slots: requests beyond this queue FIFO. This is what makes
        offered load above capacity *visible* — the queue, and with it
        the arrival-to-completion latency, grows without bound.
    queue_limit:
        Optional admission cap: arrivals finding this many requests
        waiting are dropped (counted, never timed). ``None`` = no drops.
    compute_us:
        Post-access server compute per request.
    """

    name = "openloop"

    def __init__(
        self,
        memory: PagedMemory,
        rng: RandomSource,
        arrivals: ArrivalProcess,
        n_keys: int,
        get_fraction: float = 0.9,
        zipf_alpha: float = 0.99,
        concurrency: int = 2,
        queue_limit: Optional[int] = None,
        compute_us: float = 25.0,
        window_us: float = 50_000.0,
    ):
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1, got {n_keys}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if not 0 <= get_fraction <= 1:
            raise ValueError(f"get_fraction must be in [0,1], got {get_fraction}")
        self.memory = memory
        self.sim = memory.sim
        self.rng = rng
        self.arrivals = arrivals
        self.n_keys = n_keys
        self.get_fraction = get_fraction
        self.concurrency = concurrency
        self.queue_limit = queue_limit
        self.compute_us = compute_us
        # Unbounded-in-practice reservoir: sweep statistics (bootstrap
        # over raw samples) need every latency verbatim, not the
        # histogram approximation the default 4096-sample reservoir
        # degrades to on long runs.
        self.latency = LatencyRecorder(f"{self.name}.op", reservoir_limit=1 << 22)
        self.throughput = ThroughputWindow(window_us, name=f"{self.name}.tput")
        self.stats = Counter()
        self._zipf = rng.zipf_sampler(n_keys, zipf_alpha)
        self._slots = Resource(self.sim, capacity=concurrency)
        self._queue_peak = 0

    # ------------------------------------------------------------------
    def _request(self, arrived_us: float, page: int, write: bool):
        """One request: queue for a slot, touch the page, compute."""
        grant = self._slots.request()
        self._queue_peak = max(self._queue_peak, self._slots.queue_length)
        yield grant
        try:
            yield self.memory.access(page, write=write)
            if self.compute_us > 0:
                yield self.sim.timeout(self.compute_us)
        finally:
            self._slots.release()
        self.latency.record(self.sim.now - arrived_us)
        self.throughput.record(self.sim.now)
        self.stats.incr("completed")

    def run(self, duration_us: float):
        """Start the generator; the returned process completes once every
        admitted request has drained (arrivals stop at ``duration_us``).

        The process's value is the :class:`OpenLoopResult`.
        """
        if duration_us <= 0:
            raise ValueError(f"duration_us must be > 0, got {duration_us}")
        sim = self.sim

        def generator():
            start = sim.now
            end = start + duration_us
            inflight: List = []
            while True:
                gap = self.arrivals.next_gap()
                if sim.now + gap >= end:
                    break
                yield sim.timeout(gap)
                self.stats.incr("issued")
                if (
                    self.queue_limit is not None
                    and self._slots.queue_length >= self.queue_limit
                ):
                    self.stats.incr("dropped")
                    continue
                key = self._zipf.sample()
                page = (key * 2654435761) % self.n_keys
                write = self.rng.random() >= self.get_fraction
                inflight.append(
                    sim.process(
                        self._request(sim.now, page, write),
                        name=f"ol-req{self.stats['issued']}",
                    )
                )
            # Snapshot window-bounded throughput before draining.
            yield sim.timeout(max(0.0, end - sim.now))
            completed_in_window = self.stats["completed"]
            if inflight:
                yield sim.all_of(inflight)
            return OpenLoopResult(
                offered_per_sec=self.arrivals.rate_per_sec,
                duration_us=duration_us,
                issued=self.stats["issued"],
                completed=self.stats["completed"],
                completed_in_window=completed_in_window,
                dropped=self.stats["dropped"],
                queue_peak=self._queue_peak,
                latency_samples=np.asarray(
                    self.latency.samples, dtype=np.float64
                ),
                stats=self.stats,
            )

        return sim.process(generator(), name=f"{self.name}-run")
