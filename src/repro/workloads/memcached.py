"""Memcached with the Facebook production mixes (ETC and SYS).

From the SIGMETRICS'12 workload analysis the paper cites [18]:

* **ETC** is the general-purpose pool and is overwhelmingly GET-dominant
  (GET:SET around 30:1) — we use a 97 % GET ratio;
* **SYS** is the server-side system-data pool and is SET-intensive —
  we use a 60 % SET ratio.

Key popularity is zipfian; each value occupies one page. Memcached's slab
allocator keeps values resident until the container memory limit forces
them out to remote memory via the pager.
"""

from __future__ import annotations

from ..sim import RandomSource
from ..vmm import PagedMemory
from .base import ClosedLoopWorkload

__all__ = ["MemcachedWorkload", "ETC_GET_FRACTION", "SYS_GET_FRACTION"]

ETC_GET_FRACTION = 0.97
SYS_GET_FRACTION = 0.40


class MemcachedWorkload(ClosedLoopWorkload):
    """Closed-loop GET/SET traffic over paged memory."""

    name = "memcached"

    def __init__(
        self,
        memory: PagedMemory,
        rng: RandomSource,
        n_keys: int,
        get_fraction: float = ETC_GET_FRACTION,
        clients: int = 8,
        compute_us: float = 5.0,
        zipf_alpha: float = 0.99,
        window_us: float = 500_000.0,
    ):
        super().__init__(memory.sim, clients=clients, window_us=window_us)
        if not 0 <= get_fraction <= 1:
            raise ValueError(f"get_fraction must be in [0,1], got {get_fraction}")
        self.memory = memory
        self.rng = rng
        self.n_keys = n_keys
        self.get_fraction = get_fraction
        self.compute_us = compute_us
        self._zipf = rng.zipf_sampler(n_keys, zipf_alpha)

    @classmethod
    def etc(cls, memory: PagedMemory, rng: RandomSource, n_keys: int, **kwargs):
        """The GET-dominant ETC pool."""
        return cls(memory, rng, n_keys, get_fraction=ETC_GET_FRACTION, **kwargs)

    @classmethod
    def sys(cls, memory: PagedMemory, rng: RandomSource, n_keys: int, **kwargs):
        """The SET-intensive SYS pool."""
        return cls(memory, rng, n_keys, get_fraction=SYS_GET_FRACTION, **kwargs)

    def _one_operation(self, client_id: int):
        key = self._zipf.sample()
        page = (key * 2654435761) % self.n_keys
        is_get = self.rng.random() < self.get_fraction
        if is_get:
            yield self.memory.access(page, write=False)
            self.stats.incr("gets")
        else:
            yield self.memory.access(page, write=True)
            self.stats.incr("sets")
        yield self.sim.timeout(self.compute_us)
