"""Arrival processes for open-loop load generation.

Closed-loop drivers (``ClosedLoopWorkload``) issue the next operation only
after the previous one completes, so they can never push a backend past
saturation — the coordinated-omission blind spot. The processes here
generate *arrival times* independently of service completions, which is
what a population of millions of independent clients looks like to a
remote-memory pool:

* :class:`PoissonArrivals` — memoryless constant-rate traffic, the
  baseline offered-load model;
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process
  (on/off): exponentially-distributed bursts at a high rate separated by
  exponentially-distributed idle/low-rate gaps, the §2.2 "request burst"
  uncertainty as a stationary process;
* :class:`DiurnalArrivals` — a nonhomogeneous Poisson process whose rate
  follows a sinusoidal day/night cycle, sampled exactly via
  Lewis-Shedler thinning.

Every process draws from a :class:`~repro.sim.RandomSource`, so a whole
sweep is reproducible from one seed, and each exposes
:meth:`~ArrivalProcess.expected_count` (the rate integral ∫λ(t)dt) so
tests can check generated counts against the analytic mean.

All rates are in operations per *second* at the API (the unit humans
sweep in); simulation time is microseconds throughout.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim import RandomSource

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "make_arrivals",
]

ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")

_US_PER_SEC = 1e6


class ArrivalProcess:
    """Base class: a stream of inter-arrival gaps in microseconds.

    Subclasses implement :meth:`next_gap`; the internal clock ``self.t``
    advances by each gap, so nonhomogeneous processes know where in their
    cycle they are. One instance is one stream — build a fresh instance
    (same seed) to replay it.
    """

    kind = "base"

    def __init__(self, rng: RandomSource, rate_per_sec: float):
        if rate_per_sec <= 0:
            raise ValueError(f"rate_per_sec must be > 0, got {rate_per_sec}")
        self.rng = rng
        self.rate_per_sec = rate_per_sec
        self.rate_per_us = rate_per_sec / _US_PER_SEC
        self.t = 0.0  # process-local time of the last arrival (us)

    def next_gap(self) -> float:
        """Microseconds until the next arrival; advances the clock."""
        raise NotImplementedError

    def expected_count(self, t0_us: float, t1_us: float) -> float:
        """The rate integral ∫λ(t)dt over ``[t0, t1]`` — the analytic
        mean of the number of arrivals in that window."""
        raise NotImplementedError

    def arrival_times(self, duration_us: float) -> List[float]:
        """All arrival times in ``[t, t + duration)`` from the current
        clock (absolute, in process-local microseconds)."""
        horizon = self.t + duration_us
        times: List[float] = []
        while True:
            self.next_gap()
            if self.t >= horizon:
                return times
            times.append(self.t)


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson traffic: i.i.d. exponential inter-arrivals."""

    kind = "poisson"

    def next_gap(self) -> float:
        gap = self.rng.exponential(1.0 / self.rate_per_us)
        self.t += gap
        return gap

    def expected_count(self, t0_us: float, t1_us: float) -> float:
        return self.rate_per_us * (t1_us - t0_us)


class MMPPArrivals(ArrivalProcess):
    """Two-state (on/off) Markov-modulated Poisson process.

    The process alternates between a *burst* state (rate
    ``rate_per_sec * burst_multiplier``) and an *idle* state (rate
    ``rate_per_sec * idle_multiplier``); state holding times are
    exponential with means ``mean_burst_us`` / ``mean_idle_us``. With the
    default multipliers the long-run average rate equals ``rate_per_sec``
    at the default 20 % duty cycle, so MMPP sweeps are comparable
    point-for-point with Poisson sweeps at the same nominal rate.

    The generator tracks time and arrivals attributed to each state
    (``time_in_burst_us`` etc.) so tests can check the duty cycle and the
    per-state rates directly.
    """

    kind = "bursty"

    def __init__(
        self,
        rng: RandomSource,
        rate_per_sec: float,
        mean_burst_us: float = 2_000.0,
        mean_idle_us: float = 8_000.0,
        burst_multiplier: float = 4.0,
        idle_multiplier: float = 0.25,
    ):
        super().__init__(rng, rate_per_sec)
        if mean_burst_us <= 0 or mean_idle_us <= 0:
            raise ValueError("state holding-time means must be > 0")
        if burst_multiplier <= idle_multiplier:
            raise ValueError(
                f"burst_multiplier ({burst_multiplier}) must exceed "
                f"idle_multiplier ({idle_multiplier})"
            )
        self.mean_burst_us = mean_burst_us
        self.mean_idle_us = mean_idle_us
        self.burst_rate_per_us = self.rate_per_us * burst_multiplier
        self.idle_rate_per_us = self.rate_per_us * idle_multiplier
        self.in_burst = False  # start idle: bursts arrive, not persist
        self._state_left_us = rng.exponential(mean_idle_us)
        self.time_in_burst_us = 0.0
        self.time_in_idle_us = 0.0
        self.burst_arrivals = 0
        self.idle_arrivals = 0

    @property
    def duty_cycle(self) -> float:
        """Stationary fraction of time spent in the burst state."""
        return self.mean_burst_us / (self.mean_burst_us + self.mean_idle_us)

    def mean_rate_per_us(self) -> float:
        """Long-run average arrival rate (per microsecond)."""
        duty = self.duty_cycle
        return duty * self.burst_rate_per_us + (1 - duty) * self.idle_rate_per_us

    def _flip_state(self) -> None:
        if self.in_burst:
            self.time_in_burst_us += self._state_left_us
        else:
            self.time_in_idle_us += self._state_left_us
        self.in_burst = not self.in_burst
        mean = self.mean_burst_us if self.in_burst else self.mean_idle_us
        self._state_left_us = self.rng.exponential(mean)

    def next_gap(self) -> float:
        gap = 0.0
        while True:
            rate = self.burst_rate_per_us if self.in_burst else self.idle_rate_per_us
            candidate = (
                self.rng.exponential(1.0 / rate) if rate > 0 else math.inf
            )
            if candidate < self._state_left_us:
                # Arrival lands within the current state.
                self._state_left_us -= candidate
                if self.in_burst:
                    self.time_in_burst_us += candidate
                    self.burst_arrivals += 1
                else:
                    self.time_in_idle_us += candidate
                    self.idle_arrivals += 1
                gap += candidate
                self.t += candidate
                return gap
            # State expires first: advance to the boundary and redraw —
            # the memorylessness of the exponential makes discarding the
            # candidate draw exact, not an approximation.
            gap += self._state_left_us
            self.t += self._state_left_us
            self._flip_state()

    def expected_count(self, t0_us: float, t1_us: float) -> float:
        # Stationary expectation (exact as the window spans many cycles).
        return self.mean_rate_per_us() * (t1_us - t0_us)


class DiurnalArrivals(ArrivalProcess):
    """Nonhomogeneous Poisson with a sinusoidal day/night rate:

    ``λ(t) = rate * (1 + amplitude * sin(2π t / period))``

    sampled exactly with Lewis-Shedler thinning: candidate arrivals are
    drawn from a homogeneous process at ``λ_max = rate * (1 + amplitude)``
    and accepted with probability ``λ(t)/λ_max``. The compressed default
    period keeps several "days" inside one simulated run.
    """

    kind = "diurnal"

    def __init__(
        self,
        rng: RandomSource,
        rate_per_sec: float,
        amplitude: float = 0.6,
        period_us: float = 100_000.0,
        phase: float = 0.0,
    ):
        super().__init__(rng, rate_per_sec)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period_us <= 0:
            raise ValueError(f"period_us must be > 0, got {period_us}")
        self.amplitude = amplitude
        self.period_us = period_us
        self.phase = phase
        self._max_rate_per_us = self.rate_per_us * (1.0 + amplitude)

    def rate_at(self, t_us: float) -> float:
        """Instantaneous rate λ(t) in arrivals per microsecond."""
        omega = 2.0 * math.pi / self.period_us
        return self.rate_per_us * (
            1.0 + self.amplitude * math.sin(omega * t_us + self.phase)
        )

    def next_gap(self) -> float:
        start = self.t
        while True:
            self.t += self.rng.exponential(1.0 / self._max_rate_per_us)
            accept = self.rate_at(self.t) / self._max_rate_per_us
            if self.rng.random() < accept:
                return self.t - start

    def expected_count(self, t0_us: float, t1_us: float) -> float:
        # ∫ rate*(1 + a*sin(ωt + φ)) dt, closed form.
        omega = 2.0 * math.pi / self.period_us
        base = self.rate_per_us * (t1_us - t0_us)
        wave = (
            self.rate_per_us
            * self.amplitude
            / omega
            * (math.cos(omega * t0_us + self.phase) - math.cos(omega * t1_us + self.phase))
        )
        return base + wave


def make_arrivals(
    kind: str,
    rng: RandomSource,
    rate_per_sec: float,
    period_us: Optional[float] = None,
) -> ArrivalProcess:
    """Construct an arrival process by kind name (CLI plumbing)."""
    if kind == "poisson":
        return PoissonArrivals(rng, rate_per_sec)
    if kind == "bursty":
        return MMPPArrivals(rng, rate_per_sec)
    if kind == "diurnal":
        if period_us is not None:
            return DiurnalArrivals(rng, rate_per_sec, period_us=period_us)
        return DiurnalArrivals(rng, rate_per_sec)
    raise ValueError(f"unknown arrival kind {kind!r}; choose from {ARRIVAL_KINDS}")
