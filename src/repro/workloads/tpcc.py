"""TPC-C-style transactional workload on a VoltDB-like in-memory store.

VoltDB partitions tables in memory and executes transactions serially per
partition; what remote memory sees is each transaction touching a handful
of hot-ish pages (warehouse/district rows are hot, customer/order rows
follow a skewed distribution). The model:

* a working set of ``n_pages`` pages (the database);
* each transaction reads ``reads_per_txn`` and writes ``writes_per_txn``
  pages drawn from a zipfian popularity distribution (locality knob);
* ``compute_us`` of CPU work per transaction (scaled down from real
  VoltDB so simulations stay tractable — see workloads.base docstring).

A *burst* mode multiplies the write count and removes think time,
reproducing §2.2's scenario 4.
"""

from __future__ import annotations

from ..sim import RandomSource
from ..vmm import PagedMemory
from .base import ClosedLoopWorkload

__all__ = ["TpccWorkload"]


class TpccWorkload(ClosedLoopWorkload):
    """Closed-loop TPC-C-like transactions over paged memory."""

    name = "tpcc"

    def __init__(
        self,
        memory: PagedMemory,
        rng: RandomSource,
        n_pages: int,
        clients: int = 4,
        reads_per_txn: int = 8,
        writes_per_txn: int = 4,
        compute_us: float = 40.0,
        think_us: float = 0.0,
        zipf_alpha: float = 0.85,
        write_zipf_alpha: float = None,
        window_us: float = 500_000.0,
    ):
        super().__init__(memory.sim, clients=clients, window_us=window_us)
        self.memory = memory
        self.rng = rng
        self.n_pages = n_pages
        self.reads_per_txn = reads_per_txn
        self.writes_per_txn = writes_per_txn
        self.compute_us = compute_us
        self.think_us = think_us
        self._zipf = rng.zipf_sampler(n_pages, zipf_alpha)
        # Writes may be more concentrated than reads (hot rows get updated;
        # cold rows are mostly scanned) — separate sampler when requested.
        if write_zipf_alpha is None:
            self._write_zipf = self._zipf
        else:
            self._write_zipf = rng.zipf_sampler(n_pages, write_zipf_alpha)
        self._burst_multiplier = 1
        self._bursting = False

    def begin_burst(self, write_multiplier: int = 4) -> None:
        """Enter a prolonged write burst (§2.2 scenario 4).

        Burst writes also spread across the whole page space (bulk loads /
        log flushes touch cold data), which is what pressures the page-out
        path rather than re-dirtying resident hot pages.
        """
        self._burst_multiplier = write_multiplier
        self._bursting = True

    def end_burst(self) -> None:
        self._burst_multiplier = 1
        self._bursting = False

    def _one_operation(self, client_id: int):
        # Read set, then write set, like a NewOrder touching stock rows.
        for _ in range(self.reads_per_txn):
            page = self._sample_page()
            yield self.memory.access(page, write=False)
        writes = self.writes_per_txn * self._burst_multiplier
        for _ in range(writes):
            if self._bursting:
                page = self.rng.randint(0, self.n_pages - 1)
            else:
                page = self._sample_page(write=True)
            yield self.memory.access(page, write=True)
        yield self.sim.timeout(self.compute_us)
        if self.think_us:
            yield self.sim.timeout(self.think_us)

    def _sample_page(self, write: bool = False) -> int:
        # Scatter the zipf ranks across the page space so hot pages are not
        # physically clustered in one slab.
        sampler = self._write_zipf if write else self._zipf
        rank = sampler.sample()
        return (rank * 2654435761) % self.n_pages
