"""PageRank over a Twitter-scale-shaped graph: PowerGraph vs GraphX.

The paper runs PageRank with the Twitter social graph on PowerGraph and
GraphX (§7.2) and observes a sharp contrast:

* **PowerGraph** has an optimized, locality-aware heap — remote paging is
  nearly transparent;
* **GraphX** thrashes: its shuffle-heavy dataflow touches a working set
  larger than the partition it is processing, with poor locality.

The model captures exactly that distinction. A graph of ``n_pages``
partition pages is processed for ``iterations`` supersteps:

* ``engine="powergraph"`` sweeps partitions sequentially and touches a
  small zipfian set of *mirror* pages per partition (locality);
* ``engine="graphx"`` visits partitions in random order and touches a
  ``shuffle_factor``-times larger uniform-random working set per
  partition (thrashing).

An operation (for throughput accounting) is one partition step; the
interesting metric is the completion time of :meth:`run`.
"""

from __future__ import annotations

from ..sim import RandomSource
from ..vmm import PagedMemory
from .base import ClosedLoopWorkload

__all__ = ["PageRankWorkload"]

_ENGINES = ("powergraph", "graphx")


class PageRankWorkload(ClosedLoopWorkload):
    """Iterative PageRank sweeps with engine-dependent locality."""

    name = "pagerank"

    def __init__(
        self,
        memory: PagedMemory,
        rng: RandomSource,
        n_pages: int,
        iterations: int = 3,
        engine: str = "powergraph",
        mirrors_per_partition: int = 2,
        shuffle_factor: int = 3,
        compute_us: float = 10.0,
        window_us: float = 500_000.0,
    ):
        super().__init__(memory.sim, clients=1, window_us=window_us)
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self.memory = memory
        self.rng = rng
        self.n_pages = n_pages
        self.iterations = iterations
        self.engine = engine
        self.mirrors_per_partition = mirrors_per_partition
        self.shuffle_factor = shuffle_factor
        self.compute_us = compute_us
        self._zipf = rng.zipf_sampler(n_pages, 0.9)
        self._plan = self._make_plan()
        self._cursor = 0

    def _make_plan(self):
        """The sequence of (partition, neighbor-pages) steps for all
        iterations; the engine determines order and neighbor count."""
        plan = []
        for _iteration in range(self.iterations):
            order = list(range(self.n_pages))
            if self.engine == "graphx":
                self.rng.shuffle(order)
            for partition in order:
                if self.engine == "powergraph":
                    neighbors = [
                        self._zipf.sample() for _ in range(self.mirrors_per_partition)
                    ]
                else:
                    neighbors = [
                        self.rng.randint(0, self.n_pages - 1)
                        for _ in range(self.mirrors_per_partition * self.shuffle_factor)
                    ]
                plan.append((partition, neighbors))
        return plan

    @property
    def total_steps(self) -> int:
        return len(self._plan)

    def run_to_completion(self):
        """Run the full PageRank job; the process value is the makespan in
        microseconds."""

        def job():
            start = self.sim.now
            proc = self.run(total_ops=self.total_steps)
            yield proc
            return self.sim.now - start

        return self.sim.process(job(), name=f"pagerank-{self.engine}")

    def _one_operation(self, client_id: int):
        if self._cursor >= len(self._plan):
            return  # budget should prevent this; guard anyway
        partition, neighbors = self._plan[self._cursor]
        self._cursor += 1
        yield self.memory.access(partition, write=False)
        for neighbor in neighbors:
            yield self.memory.access(neighbor, write=False)
        # Write the updated rank page for this partition.
        yield self.memory.access(partition, write=True)
        yield self.sim.timeout(self.compute_us)
