"""fio-like 4 KB random read/write driver for the VFS path.

Reproduces the Figure 10b methodology: "we use fio to generate one million
random read/write requests of 4 KB block I/O" against the remote block
device, with a configurable queue depth of concurrent workers.
"""

from __future__ import annotations

from typing import Optional

from ..sim import RandomSource
from ..vfs import RemoteBlockDevice
from .base import ClosedLoopWorkload

__all__ = ["FioWorkload"]


class FioWorkload(ClosedLoopWorkload):
    """Random block I/O at fixed read fraction and queue depth."""

    name = "fio"

    def __init__(
        self,
        device: RemoteBlockDevice,
        rng: RandomSource,
        n_blocks: int,
        read_fraction: float = 0.5,
        queue_depth: int = 4,
        make_data=None,
        window_us: float = 500_000.0,
    ):
        super().__init__(device.sim, clients=queue_depth, window_us=window_us)
        if not 0 <= read_fraction <= 1:
            raise ValueError(f"read_fraction must be in [0,1], got {read_fraction}")
        self.device = device
        self.rng = rng
        self.n_blocks = n_blocks
        self.read_fraction = read_fraction
        self.make_data = make_data
        self._written: set = set()

    def prefill(self, blocks: Optional[int] = None):
        """Simulation process: write the address space once so random
        reads always hit initialized blocks (fio's prefill phase)."""
        count = blocks if blocks is not None else self.n_blocks

        def run():
            for block_id in range(count):
                data = self.make_data(block_id) if self.make_data else None
                yield self.device.write_block(block_id, data)
                self._written.add(block_id)

        return self.sim.process(run(), name="fio-prefill")

    def _one_operation(self, client_id: int):
        if self.rng.random() < self.read_fraction and self._written:
            block_id = self.rng.randint(0, self.n_blocks - 1)
            if block_id not in self._written:
                block_id = next(iter(self._written))
            yield self.device.read_block(block_id)
            self.stats.incr("read_ops")
        else:
            block_id = self.rng.randint(0, self.n_blocks - 1)
            data = self.make_data(block_id) if self.make_data else None
            yield self.device.write_block(block_id, data)
            self._written.add(block_id)
            self.stats.incr("write_ops")
