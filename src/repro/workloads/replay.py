"""Epoch-sliced trace replay against the paged-memory data path.

Production remote-memory traffic is nonstationary: rate, key popularity,
and object sizes drift hour to hour. Following the hopperkv
``replay_workload.py`` idiom, a trace here is a sequence of *epochs*,
each carrying its own arrival rate, key distribution (zipf exponent +
hot-set offset, so the popular keys *move* between epochs), operation
mix, and a discrete value-size distribution (pages per operation).
Replay walks the epochs in order, generating open-loop Poisson arrivals
within each epoch and recording per-epoch latency/throughput, so a curve
over epochs shows how the backend tracks a shifting working set.

Traces serialize to/from JSON (``ReplayTrace.to_json``), and
:meth:`ReplayTrace.synthetic` builds a deterministic diurnal-shaped trace
from a seed for experiments that have no captured trace on hand.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..sim import Counter, LatencyRecorder, RandomSource, Resource
from ..vmm import PagedMemory
from .arrivals import PoissonArrivals

__all__ = ["TraceEpoch", "ReplayTrace", "TraceReplayWorkload", "EpochResult"]

TRACE_SCHEMA = "hydra-trace/1"


@dataclass(frozen=True)
class TraceEpoch:
    """One slice of a trace: stationary within, different from its
    neighbors."""

    duration_us: float
    rate_per_sec: float
    zipf_alpha: float = 0.99
    key_offset: int = 0  # rotates the hot set across epochs
    get_fraction: float = 0.9
    size_pages: Sequence[int] = (1,)
    size_weights: Sequence[float] = (1.0,)

    def validate(self, key_space: int) -> None:
        if self.duration_us <= 0:
            raise ValueError(f"epoch duration must be > 0, got {self.duration_us}")
        if self.rate_per_sec <= 0:
            raise ValueError(f"epoch rate must be > 0, got {self.rate_per_sec}")
        if not 0 <= self.get_fraction <= 1:
            raise ValueError(f"get_fraction must be in [0,1], got {self.get_fraction}")
        if len(self.size_pages) != len(self.size_weights) or not self.size_pages:
            raise ValueError("size_pages and size_weights must be equal-length")
        if min(self.size_pages) < 1:
            raise ValueError("size_pages entries must be >= 1")
        if not 0 <= self.key_offset < max(1, key_space):
            raise ValueError(
                f"key_offset {self.key_offset} outside key space {key_space}"
            )


@dataclass
class ReplayTrace:
    """A named sequence of epochs over one key space."""

    name: str
    key_space: int
    epochs: List[TraceEpoch] = field(default_factory=list)

    def validate(self) -> None:
        if self.key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {self.key_space}")
        if not self.epochs:
            raise ValueError(f"trace {self.name!r} has no epochs")
        for epoch in self.epochs:
            epoch.validate(self.key_space)

    @property
    def duration_us(self) -> float:
        return sum(epoch.duration_us for epoch in self.epochs)

    # -- transport -----------------------------------------------------
    def to_json(self) -> str:
        doc = {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "key_space": self.key_space,
            "epochs": [asdict(epoch) for epoch in self.epochs],
        }
        for entry in doc["epochs"]:
            entry["size_pages"] = list(entry["size_pages"])
            entry["size_weights"] = list(entry["size_weights"])
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ReplayTrace":
        doc = json.loads(text)
        if doc.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"trace schema {doc.get('schema')!r} != {TRACE_SCHEMA!r}"
            )
        trace = cls(
            name=doc["name"],
            key_space=int(doc["key_space"]),
            epochs=[
                TraceEpoch(
                    duration_us=float(e["duration_us"]),
                    rate_per_sec=float(e["rate_per_sec"]),
                    zipf_alpha=float(e.get("zipf_alpha", 0.99)),
                    key_offset=int(e.get("key_offset", 0)),
                    get_fraction=float(e.get("get_fraction", 0.9)),
                    size_pages=tuple(int(s) for s in e.get("size_pages", (1,))),
                    size_weights=tuple(
                        float(w) for w in e.get("size_weights", (1.0,))
                    ),
                )
                for e in doc["epochs"]
            ],
        )
        trace.validate()
        return trace

    # -- generation ----------------------------------------------------
    @classmethod
    def synthetic(
        cls,
        seed: int = 0,
        epochs: int = 6,
        key_space: int = 512,
        epoch_us: float = 50_000.0,
        base_rate_per_sec: float = 10_000.0,
        peak_multiplier: float = 2.5,
    ) -> "ReplayTrace":
        """A deterministic diurnal-shaped trace: rates follow one sine
        "day" across the epochs, the hot set rotates by a random stride
        each epoch, and the size mix drifts around (1, 2, 4) pages."""
        rng = RandomSource(seed, "trace/synthetic")
        mid = (peak_multiplier + 1.0) / 2.0
        swing = (peak_multiplier - 1.0) / 2.0
        out: List[TraceEpoch] = []
        for i in range(epochs):
            shape = mid + swing * math.sin(2.0 * math.pi * i / epochs)
            jitter = rng.uniform(0.9, 1.1)
            heavy = rng.uniform(0.0, 0.1)
            out.append(
                TraceEpoch(
                    duration_us=epoch_us,
                    rate_per_sec=round(base_rate_per_sec * shape * jitter, 3),
                    zipf_alpha=round(rng.uniform(0.8, 1.2), 4),
                    key_offset=rng.randint(0, key_space - 1),
                    get_fraction=round(rng.uniform(0.7, 0.97), 4),
                    size_pages=(1, 2, 4),
                    size_weights=(
                        round(0.8 - heavy, 4),
                        round(0.15 + heavy / 2, 4),
                        round(0.05 + heavy / 2, 4),
                    ),
                )
            )
        trace = cls(name=f"synthetic-{seed}", key_space=key_space, epochs=out)
        trace.validate()
        return trace


@dataclass
class EpochResult:
    """Per-epoch measurement row."""

    index: int
    rate_per_sec: float
    issued: int
    completed_in_epoch: int
    p50_us: float
    p99_us: float
    mean_us: float


class TraceReplayWorkload:
    """Replay a :class:`ReplayTrace` open-loop against paged memory.

    Within an epoch arrivals are Poisson at the epoch rate; each request
    draws its key from the epoch's zipf distribution shifted by the
    epoch's ``key_offset`` and touches ``size_pages`` consecutive pages
    (multi-page values page in/out as a unit). Latency is measured from
    scheduled arrival to completion through a bounded server-slot pool,
    exactly like :class:`~repro.workloads.OpenLoopWorkload`.
    """

    name = "replay"

    def __init__(
        self,
        memory: PagedMemory,
        rng: RandomSource,
        trace: ReplayTrace,
        concurrency: int = 2,
        compute_us: float = 25.0,
    ):
        trace.validate()
        self.memory = memory
        self.sim = memory.sim
        self.rng = rng
        self.trace = trace
        self.concurrency = concurrency
        self.compute_us = compute_us
        self.stats = Counter()
        self._slots = Resource(self.sim, capacity=concurrency)
        self.epoch_results: List[EpochResult] = []
        self.latency = LatencyRecorder(f"{self.name}.op", reservoir_limit=1 << 22)

    # ------------------------------------------------------------------
    def _request(self, arrived_us: float, first_page: int, pages: int,
                 write: bool, recorder: LatencyRecorder):
        yield self._slots.request()
        try:
            for offset in range(pages):
                page = (first_page + offset) % self.trace.key_space
                yield self.memory.access(page, write=write)
            if self.compute_us > 0:
                yield self.sim.timeout(self.compute_us)
        finally:
            self._slots.release()
        latency = self.sim.now - arrived_us
        recorder.record(latency)
        self.latency.record(latency)
        self.stats.incr("completed")

    def run(self):
        """Replay every epoch in order; the returned process's value is
        the list of :class:`EpochResult` rows."""
        sim = self.sim

        def replay():
            inflight: List = []
            for index, epoch in enumerate(self.trace.epochs):
                arrivals = PoissonArrivals(
                    self.rng.child(f"epoch{index}/arrivals"), epoch.rate_per_sec
                )
                zipf = self.rng.child(f"epoch{index}/keys").zipf_sampler(
                    self.trace.key_space, epoch.zipf_alpha
                )
                op_rng = self.rng.child(f"epoch{index}/ops")
                recorder = LatencyRecorder(
                    f"{self.name}.epoch{index}", reservoir_limit=1 << 22
                )
                start = sim.now
                end = start + epoch.duration_us
                issued = 0
                completed_before = self.stats["completed"]
                while True:
                    gap = arrivals.next_gap()
                    if sim.now + gap >= end:
                        break
                    yield sim.timeout(gap)
                    issued += 1
                    rank = zipf.sample()
                    key = (rank + epoch.key_offset) % self.trace.key_space
                    first_page = (key * 2654435761) % self.trace.key_space
                    pages = op_rng.weighted_choice(
                        epoch.size_pages, epoch.size_weights
                    )
                    write = op_rng.random() >= epoch.get_fraction
                    inflight.append(
                        sim.process(
                            self._request(
                                sim.now, first_page, pages, write, recorder
                            ),
                            name=f"replay-e{index}",
                        )
                    )
                yield sim.timeout(max(0.0, end - sim.now))
                completed = self.stats["completed"] - completed_before
                if recorder.count:
                    summary = recorder.summary()
                    p50, p99, mean = summary.p50, summary.p99, summary.mean
                else:
                    p50 = p99 = mean = 0.0
                self.epoch_results.append(
                    EpochResult(
                        index=index,
                        rate_per_sec=epoch.rate_per_sec,
                        issued=issued,
                        completed_in_epoch=completed,
                        p50_us=p50,
                        p99_us=p99,
                        mean_us=mean,
                    )
                )
            if inflight:
                yield sim.all_of(inflight)
            return self.epoch_results

        return sim.process(replay(), name=f"{self.name}-run")

    def samples(self) -> np.ndarray:
        return np.asarray(self.latency.samples, dtype=np.float64)

    def epoch_table(self) -> List[Dict]:
        return [asdict(row) for row in self.epoch_results]
