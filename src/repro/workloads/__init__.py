"""Workload models: TPC-C/VoltDB, Memcached ETC/SYS, PageRank, fio."""

from .base import ClosedLoopWorkload
from .fio import FioWorkload
from .graph import PageRankWorkload
from .memcached import ETC_GET_FRACTION, SYS_GET_FRACTION, MemcachedWorkload
from .tpcc import TpccWorkload

__all__ = [
    "ClosedLoopWorkload",
    "FioWorkload",
    "PageRankWorkload",
    "ETC_GET_FRACTION",
    "SYS_GET_FRACTION",
    "MemcachedWorkload",
    "TpccWorkload",
]
