"""Workload models: TPC-C/VoltDB, Memcached ETC/SYS, PageRank, fio,
open-loop load generation, and epoch-sliced trace replay."""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrivals,
)
from .base import ClosedLoopWorkload
from .fio import FioWorkload
from .graph import PageRankWorkload
from .memcached import ETC_GET_FRACTION, SYS_GET_FRACTION, MemcachedWorkload
from .openloop import OpenLoopResult, OpenLoopWorkload
from .replay import EpochResult, ReplayTrace, TraceEpoch, TraceReplayWorkload
from .tpcc import TpccWorkload

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "DiurnalArrivals",
    "MMPPArrivals",
    "PoissonArrivals",
    "make_arrivals",
    "ClosedLoopWorkload",
    "FioWorkload",
    "PageRankWorkload",
    "ETC_GET_FRACTION",
    "SYS_GET_FRACTION",
    "MemcachedWorkload",
    "OpenLoopResult",
    "OpenLoopWorkload",
    "EpochResult",
    "ReplayTrace",
    "TraceEpoch",
    "TraceReplayWorkload",
    "TpccWorkload",
]
