"""Common scaffolding for application workload models.

The paper's applications (VoltDB/TPC-C, Memcached/Facebook, PowerGraph &
GraphX/PageRank) only interact with remote memory through their *page
access streams*; the workload models here generate streams with the same
statistics — transaction page touches, zipfian key popularity, iterative
graph sweeps — over the :class:`~repro.vmm.PagedMemory` front-end.

Simulated time is compressed relative to the paper's wall-clock runs
(compute constants are scaled so a run finishes in millions, not
trillions, of simulated microseconds); all comparisons are within the same
compression, so relative results are preserved.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Counter, LatencyRecorder, Process, ThroughputWindow

__all__ = ["ClosedLoopWorkload"]


class ClosedLoopWorkload:
    """Base for closed-loop, multi-client workloads.

    Subclasses implement :meth:`_one_operation` (a generator performing a
    single logical operation — a transaction, a GET/SET, an iteration
    step). ``clients`` concurrent client loops run operations back to
    back until the op budget or the deadline is exhausted.
    """

    name = "workload"

    def __init__(self, sim, clients: int = 1, window_us: float = 500_000.0):
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        self.sim = sim
        self.clients = clients
        self.latency = LatencyRecorder(f"{self.name}.op")
        self.throughput = ThroughputWindow(window_us, name=f"{self.name}.tput")
        self.stats = Counter()
        self._stop = False

    # ------------------------------------------------------------------
    def run(
        self,
        total_ops: Optional[int] = None,
        duration_us: Optional[float] = None,
    ) -> Process:
        """Start the workload; the returned process completes when every
        client finishes. At least one stopping condition is required."""
        if total_ops is None and duration_us is None:
            raise ValueError("need total_ops and/or duration_us")
        self._stop = False
        deadline = self.sim.now + duration_us if duration_us is not None else None
        budget = [total_ops]  # shared mutable op budget across clients

        def client_loop(client_id: int):
            while not self._stop:
                if deadline is not None and self.sim.now >= deadline:
                    break
                if budget[0] is not None:
                    if budget[0] <= 0:
                        break
                    budget[0] -= 1
                start = self.sim.now
                yield from self._one_operation(client_id)
                self.latency.record(self.sim.now - start)
                self.throughput.record(self.sim.now)
                self.stats.incr("ops")

        def supervisor():
            procs = [
                self.sim.process(client_loop(i), name=f"{self.name}-client{i}")
                for i in range(self.clients)
            ]
            yield self.sim.all_of(procs)
            return self.stats["ops"]

        return self.sim.process(supervisor(), name=f"{self.name}-run")

    def stop(self) -> None:
        """Ask all clients to stop after their current operation."""
        self._stop = True

    # ------------------------------------------------------------------
    def _one_operation(self, client_id: int):
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator

    def throughput_series(self):
        """(window_start_us, ops_per_second) arrays for timeline figures."""
        return self.throughput.series()
