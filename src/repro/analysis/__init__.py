"""Analytical models: availability, load balancing, TCO."""

from .availability import (
    Requirements,
    correctable_corruptions,
    data_loss_probability,
    replication_loss_probability,
    requirements,
    simulate_data_loss,
)
from .load_balance import (
    FOUR_CHOICES,
    HYDRA_K2_D4,
    RANDOM,
    TWO_CHOICES,
    PlacementPolicy,
    imbalance_curve,
    simulate_imbalance,
)
from .tco import (
    AMAZON,
    AZURE,
    DEFAULT_RDMA,
    GOOGLE,
    CloudPricing,
    RdmaCost,
    tco_savings_percent,
    tco_table,
)

__all__ = [
    "Requirements",
    "correctable_corruptions",
    "data_loss_probability",
    "replication_loss_probability",
    "requirements",
    "simulate_data_loss",
    "FOUR_CHOICES",
    "HYDRA_K2_D4",
    "RANDOM",
    "TWO_CHOICES",
    "PlacementPolicy",
    "imbalance_curve",
    "simulate_imbalance",
    "AMAZON",
    "AZURE",
    "DEFAULT_RDMA",
    "GOOGLE",
    "CloudPricing",
    "RdmaCost",
    "tco_savings_percent",
    "tco_table",
]
