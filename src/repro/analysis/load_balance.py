"""Balls-into-bins load-balancing analysis (§5.3, Figure 9).

Placing ``n`` slabs on ``n`` machines:

* uniformly at random -> max load Θ(log n / log log n);
* best of ``d`` random choices -> Θ(log log n / log d) [Azar et al.];
* Hydra: each logical slab is split ``k`` ways and the k pieces are
  placed on the least-loaded ``k`` of ``d`` sampled machines (batch
  placement) -> O(log log n / (k log(d/k))) when d >= 2k [Park].

:func:`simulate_imbalance` measures the three policies empirically; the
figure plots max-load / mean-load versus cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..sim import RandomSource

__all__ = ["PlacementPolicy", "simulate_imbalance", "imbalance_curve"]


@dataclass(frozen=True)
class PlacementPolicy:
    """A placement strategy for the balls-into-bins experiment.

    ``splits`` pieces per ball, each 1/splits of the ball's weight;
    ``choices`` machines sampled per ball (batch placement picks the
    least-loaded ``splits`` of them).
    """

    name: str
    splits: int
    choices: int

    def __post_init__(self):
        if self.splits < 1:
            raise ValueError(f"splits must be >= 1, got {self.splits}")
        if self.choices < self.splits:
            raise ValueError(
                f"choices ({self.choices}) must be >= splits ({self.splits})"
            )


RANDOM = PlacementPolicy("random", splits=1, choices=1)
TWO_CHOICES = PlacementPolicy("d=2", splits=1, choices=2)
FOUR_CHOICES = PlacementPolicy("d=4", splits=1, choices=4)
HYDRA_K2_D4 = PlacementPolicy("k=2,d=4", splits=2, choices=4)


def simulate_imbalance(
    policy: PlacementPolicy,
    machines: int,
    balls: int,
    rng: RandomSource,
) -> float:
    """Place ``balls`` (each of unit weight) and return max/mean load."""
    if machines < policy.choices:
        raise ValueError(f"{machines} machines < {policy.choices} choices")
    loads = np.zeros(machines, dtype=np.float64)
    generator = rng.numpy
    weight = 1.0 / policy.splits
    for _ in range(balls):
        if policy.choices == 1:
            targets = generator.integers(0, machines, size=1)
        else:
            sampled = generator.choice(machines, size=policy.choices, replace=False)
            order = np.argsort(loads[sampled], kind="stable")
            targets = sampled[order[: policy.splits]]
        loads[targets] += weight
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0


def imbalance_curve(
    policies: Sequence[PlacementPolicy],
    machine_counts: Sequence[int],
    rng: RandomSource,
    trials: int = 3,
    balls_per_machine: int = 1,
) -> Dict[str, List[float]]:
    """Figure 9's data: mean imbalance per policy across cluster sizes."""
    curves: Dict[str, List[float]] = {p.name: [] for p in policies}
    for n in machine_counts:
        for policy in policies:
            samples = [
                simulate_imbalance(
                    policy, n, n * balls_per_machine, rng.child(f"{policy.name}/{n}/{t}")
                )
                for t in range(trials)
            ]
            curves[policy.name].append(float(np.mean(samples)))
    return curves
