"""Availability under correlated failures (§5.1-§5.2, Table 1, Figure 8).

Data loss for an erasure-coded range occurs when a correlated event kills
more than ``r`` of its ``k + r`` slabs before regeneration. With ``N``
machines and a fraction ``f`` failing concurrently, the failed set is a
uniform random subset, so the number of a range's hosts inside it is
hypergeometric:

    P(loss) = sum_{i=r+1}^{k+r}  C(k+r, i) * C(N-k-r, N*f - i) / C(N, N*f)

(The paper's §5.2 formula expresses the same hypergeometric tail.)
Replication with ``c`` copies is the ``k=1, r=c-1`` special case; disk
backup never loses data to *remote* failures (the local disk holds a full
copy) — its cost is paid in latency instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb, floor
from typing import List

from ..sim import RandomSource

__all__ = [
    "data_loss_probability",
    "replication_loss_probability",
    "simulate_data_loss",
    "Requirements",
    "requirements",
    "correctable_corruptions",
]


def data_loss_probability(k: int, r: int, machines: int, failure_fraction: float) -> float:
    """Exact P(data loss) for an RS(k, r) range under a correlated event.

    ``failure_fraction`` of the ``machines`` fail simultaneously; loss
    happens when more than ``r`` of the range's ``k + r`` hosts are among
    them.
    """
    if k < 1 or r < 0:
        raise ValueError(f"invalid code (k={k}, r={r})")
    n = k + r
    if machines < n:
        raise ValueError(f"cluster of {machines} cannot host {n} slabs distinctly")
    if not 0 <= failure_fraction <= 1:
        raise ValueError(f"failure_fraction must be in [0,1], got {failure_fraction}")
    failed = floor(machines * failure_fraction)
    if failed <= r:
        return 0.0
    total = comb(machines, failed)
    loss = 0
    for i in range(r + 1, min(n, failed) + 1):
        loss += comb(n, i) * comb(machines - n, failed - i)
    return loss / total


def replication_loss_probability(
    copies: int, machines: int, failure_fraction: float
) -> float:
    """P(loss) for ``copies``-way replication: all copies must die."""
    return data_loss_probability(1, copies - 1, machines, failure_fraction)


def simulate_data_loss(
    k: int,
    r: int,
    machines: int,
    failure_fraction: float,
    trials: int,
    rng: RandomSource,
) -> float:
    """Monte-Carlo cross-check of :func:`data_loss_probability`."""
    n = k + r
    failed_count = floor(machines * failure_fraction)
    losses = 0
    ids = list(range(machines))
    hosts = set(range(n))  # by symmetry, fix the range's hosts
    for _ in range(trials):
        failed = rng.sample(ids, failed_count)
        dead_hosts = sum(1 for m in failed if m in hosts)
        if dead_hosts > r:
            losses += 1
    return losses / trials


@dataclass(frozen=True)
class Requirements:
    """One row of Table 1: splits and memory needed for a guarantee."""

    scenario: str
    errors: int
    min_splits: int
    memory_overhead: float


def requirements(k: int, r: int, delta: int) -> List[Requirements]:
    """Table 1 for the given code parameters.

    Rows: tolerate ``r`` failures; detect ``delta`` corruptions; locate and
    correct ``delta`` corruptions.
    """
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    return [
        Requirements("failure", r, k, 1 + r / k),
        Requirements("error detection", delta, k + delta, 1 + delta / k),
        Requirements(
            "error correction", delta, k + 2 * delta + 1, 1 + (2 * delta + 1) / k
        ),
    ]


def correctable_corruptions(k: int, r: int) -> int:
    """Hydra can correct floor(r / 2) corruptions with all n splits (§5.1)."""
    return r // 2
