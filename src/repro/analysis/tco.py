"""TCO savings model (§7.5, Table 4).

The savings of memory disaggregation are the revenue from leasing the
machine's otherwise-stranded memory, divided by the resilience scheme's
memory overhead, minus the three-year TCO of the RDMA hardware — all
relative to the machine's three-year rental price. The paper's worked
example (Google, Hydra):

    ((5.18 * 30 * 36) / 1.25 - 970) / (1553 * 36) * 100 % = 6.3 %
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = [
    "CloudPricing",
    "RdmaCost",
    "tco_savings_percent",
    "tco_table",
    "GOOGLE",
    "AMAZON",
    "AZURE",
    "DEFAULT_RDMA",
]


@dataclass(frozen=True)
class CloudPricing:
    """Monthly pricing of a standard machine and of 1 % of its memory."""

    provider: str
    machine_monthly_usd: float
    one_percent_memory_monthly_usd: float


@dataclass(frozen=True)
class RdmaCost:
    """Per-machine RDMA hardware TCO over the analysis horizon."""

    adapter_usd: float = 600.0
    switch_usd: float = 318.0
    operating_usd: float = 52.0

    @property
    def total_usd(self) -> float:
        return self.adapter_usd + self.switch_usd + self.operating_usd


# Table 4's pricing rows (sourced from the paper).
GOOGLE = CloudPricing("Google", 1553.0, 5.18)
AMAZON = CloudPricing("Amazon", 2211.0, 9.21)
AZURE = CloudPricing("Microsoft", 2242.0, 5.92)
DEFAULT_RDMA = RdmaCost()


def tco_savings_percent(
    pricing: CloudPricing,
    memory_overhead: float,
    unused_memory_percent: float = 30.0,
    months: int = 36,
    rdma: RdmaCost = DEFAULT_RDMA,
) -> float:
    """Three-year TCO savings (percent of machine cost) for a scheme with
    the given memory overhead leasing ``unused_memory_percent`` of memory.
    """
    if memory_overhead < 1.0:
        raise ValueError(f"memory overhead must be >= 1, got {memory_overhead}")
    if not 0 <= unused_memory_percent <= 100:
        raise ValueError(f"unused memory % out of range: {unused_memory_percent}")
    revenue = (
        pricing.one_percent_memory_monthly_usd * unused_memory_percent * months
    ) / memory_overhead
    net = revenue - rdma.total_usd
    return net / (pricing.machine_monthly_usd * months) * 100.0


def tco_table(
    schemes: Dict[str, float],
    providers: List[CloudPricing] = (GOOGLE, AMAZON, AZURE),
    unused_memory_percent: float = 30.0,
) -> Dict[str, Dict[str, float]]:
    """Table 4: savings percentage per scheme per provider.

    ``schemes`` maps scheme name -> memory overhead (Hydra 1.25, 2x
    replication 2.0).
    """
    table: Dict[str, Dict[str, float]] = {}
    for scheme, overhead in schemes.items():
        table[scheme] = {
            pricing.provider: tco_savings_percent(
                pricing, overhead, unused_memory_percent
            )
            for pricing in providers
        }
    return table
