"""``python -m repro top`` — a live per-machine cluster health dashboard.

Runs the 50-machine chaos fixture (machines, faults, steady workload —
all seeded) with full telemetry enabled and renders what an operator
console would show: per-machine health / free memory / slab counts /
RDMA queue depth, cluster-wide latency percentiles from the log-bucketed
histograms, windowed rates, SLO verdicts, and the most recent health
transitions from the flight recorder.

Two modes:

* **live** (default) — one compact status line per ``--interval`` sampler
  frames while the simulation runs, then the full dashboard;
* ``--once`` — only the final dashboard, for CI: the output is a pure
  function of the seed, byte-identical across runs and machines.

``--out`` additionally writes the dashboard to a file (the CI artifact),
``--prometheus`` writes a Prometheus text-exposition scrape of the whole
registry at end of run.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

__all__ = ["fixture_config", "render_dashboard", "main"]


def fixture_config(machines: int = 50):
    """The §7.4-scale dashboard fixture: a 50-machine chaos campaign
    (crashes, corruption, background flows, memory pressure) sized to
    finish in CI-smoke time."""
    from ..chaos import ChaosConfig

    return ChaosConfig(
        machines=machines,
        pages=32,
        events=10,
        horizon_us=2_000_000.0,
        settle_us=5_000_000.0,
        op_gap_us=10_000.0,
        burst_ops=20,
    )


def _fmt_us(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1000.0:
        return f"{value / 1000.0:.2f}ms"
    return f"{value:.1f}us"


def live_line(frame: Dict) -> str:
    """One compact status line per sampler frame (live mode)."""
    machines = frame["machines"]
    down = sum(1 for row in machines.values() if not row["alive"])
    read = frame.get("read", {})
    return (
        f"t={frame['at_us'] / 1e6:8.3f}s  "
        f"reads n={read.get('count', 0):<6d} "
        f"window p99={_fmt_us(read.get('window_p99_us')):>9}  "
        f"regens={frame['open_regens']:<2d} "
        f"heal_backlog={frame['healing_backlog']:<2d} "
        f"down={down}/{len(machines)}"
    )


def render_dashboard(result, seed: int) -> str:
    """The full dashboard from one finished chaos run (deterministic)."""
    from ..harness.report import format_table, sparkline

    cluster = result.cluster
    obs = cluster.obs
    sampler, health, registry = obs.sampler, obs.health, obs.metrics
    frame = sampler.last_frame or {"machines": {}, "rates": {}}
    sim_now = cluster.sim.now

    lines: List[str] = []
    state = "BREACHED" if health.breached else "OK"
    lines.append(
        f"repro top — seed {seed}, {len(cluster.machines)} machines, "
        f"t={sim_now / 1e6:.3f}s sim"
    )
    lines.append(
        f"health: {state}  |  slo transitions: {len(health.transitions)}"
        f"  |  invariant violations: {len(result.violations)}"
        f"  |  flight records: {obs.flight.total} ({obs.flight.dropped} dropped)"
    )

    for direction in ("read", "write"):
        stats = frame.get(direction, {})
        if not stats.get("count"):
            continue
        lines.append(
            f"{direction + 's':<7}: n={stats['count']:<7d} "
            f"p50={_fmt_us(stats.get('p50_us')):>9}  "
            f"p99={_fmt_us(stats.get('p99_us')):>9}  "
            f"last-window p99={_fmt_us(stats.get('window_p99_us')):>9}"
        )
    lines.append(
        f"open regens: {frame.get('open_regens', 0)}  |  "
        f"healing backlog: {frame.get('healing_backlog', 0)}  |  "
        f"health transitions by rule: {health.breach_counts() or '{}'}"
    )

    # Control plane (only when metadata replication is enabled).
    control = result.report.get("control_plane")
    if control:
        failovers = control.get("failovers", [])
        fenced = sum(
            1 for store in control.get("stores", {}).values() if store.get("fenced")
        )
        commits = sum(
            store.get("commits", 0) for store in control.get("stores", {}).values()
        )
        lines.append(
            f"control plane: {control.get('replicas', 0)} metadata replicas  |  "
            f"commits: {commits}  |  failovers: {len(failovers)}  |  "
            f"fenced stores: {fenced}"
        )
        for entry in failovers:
            lines.append(
                f"  t={entry.get('at_us', 0.0) / 1e6:8.3f}s  domain {entry['domain']} "
                f"-> machine {entry['successor']} (term {entry['term']}, "
                f"{entry.get('log_records', 0)} records, "
                f"{entry.get('regens_restarted', 0)} regens restarted)"
            )

    # SLO rule verdicts.
    verdicts = []
    for rule in health.rules:
        breached = [
            machine
            for (name, machine), st in sorted(
                health.states.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
            )
            if name == rule.name and st == "breach"
        ]
        verdict = "ok" if not breached else f"BREACH({len(breached)})"
        verdicts.append(f"{rule.name}{rule.op}{rule.threshold:g}:{verdict}")
    lines.append("slo: " + "  ".join(verdicts))
    lines.append("")

    # Per-machine table.
    rows = []
    for machine in sorted(cluster.machines, key=lambda m: m.id):
        row = frame["machines"].get(machine.id, {})
        free_series = registry.get(f"sample.machine.{machine.id}.free_frac")
        depth_series = registry.get(f"sample.machine.{machine.id}.queue_depth")
        q_peak = (
            int(max(depth_series.values))
            if depth_series is not None and len(depth_series)
            else 0
        )
        tx = registry.get(f"nic.{machine.id}.bytes_tx")
        state = "down"
        if machine.alive:
            state = health.machine_state(machine.id)
        rows.append(
            [
                machine.id,
                state,
                f"{100.0 * row.get('free_frac', machine.free_bytes / machine.total_memory_bytes):5.1f}",
                row.get("free_slabs", len(machine.free_slabs())),
                row.get("mapped_slabs", len(machine.mapped_slabs())),
                row.get("queue_depth", 0),
                q_peak,
                f"{(tx.value if tx is not None else 0) / (1 << 20):8.1f}",
                sparkline(
                    free_series.values if free_series is not None else (), width=12
                ),
            ]
        )
    lines.append(
        format_table(
            ["mach", "state", "free%", "free_slabs", "mapped", "qdepth",
             "qpeak", "tx_mib", "free_history"],
            rows,
        )
    )

    # Recent health transitions from the structured event log.
    if health.transitions:
        lines.append("")
        lines.append("recent health transitions:")
        for event in health.transitions[-6:]:
            where = (
                "cluster" if event["machine"] is None
                else f"machine {event['machine']}"
            )
            lines.append(
                f"  t={event['at_us'] / 1e6:8.3f}s  {event['rule']:<20} "
                f"{where:<11} {event['from']}->{event['to']} "
                f"(value {event['value']:.4g}, threshold {event['threshold']:g})"
            )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    """CLI entry: ``python -m repro top [--once] [--seed N]
    [--machines N] [--interval K] [--out PATH] [--prometheus PATH]``."""
    import argparse

    from ..chaos import run_chaos
    from .export import prometheus_text

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Cluster health dashboard over a seeded chaos fixture.",
    )
    parser.add_argument("--once", action="store_true",
                        help="render only the final dashboard (CI mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--machines", type=int, default=50)
    parser.add_argument("--interval", type=int, default=25,
                        help="live mode: frames between status lines")
    parser.add_argument("--out", help="also write the dashboard to a file")
    parser.add_argument("--prometheus",
                        help="write a Prometheus text-format scrape")
    args = parser.parse_args(argv)

    config = fixture_config(machines=args.machines)
    listener = None
    if not args.once:
        interval = max(1, args.interval)
        frames = {"n": 0}

        def listener(frame):
            frames["n"] += 1
            if frames["n"] % interval == 0:
                print(live_line(frame))

    result = run_chaos(args.seed, config=config, frame_listener=listener)
    dashboard = render_dashboard(result, args.seed)
    if not args.once:
        print()
    print(dashboard, end="")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(dashboard)
        print(f"wrote {args.out}")
    if args.prometheus:
        with open(args.prometheus, "w") as fh:
            fh.write(prometheus_text(result.cluster.obs.metrics))
        print(f"wrote {args.prometheus}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
