"""Trace exporters: JSON-lines and Chrome ``trace_event`` format.

Two formats, two audiences:

* **JSONL** — one span per line, lossless, made for programmatic
  round-trips (tests, offline breakdown analysis, diffing two runs);
* **Chrome trace_event** — load the file into ``chrome://tracing`` or
  https://ui.perfetto.dev and *see* late-binding reads racing stragglers.
  Simulated microseconds map 1:1 onto the format's ``ts``/``dur`` unit;
  each machine becomes a process track (``pid``) and each sampled request
  gets its own lane (``tid`` = trace id) so overlapping requests never
  corrupt each other's nesting.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .tracing import Span

__all__ = [
    "span_to_dict",
    "span_from_dict",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
]


def span_to_dict(span: Span) -> Dict:
    """Lossless JSON form of one finished span."""
    return {
        "span_id": span.span_id,
        "trace_id": span.trace_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "cat": span.cat,
        "machine_id": span.machine_id,
        "start_us": span.start_us,
        "end_us": span.end_us,
        "tags": span.tags,
    }


def span_from_dict(data: Dict) -> Span:
    """Reconstruct a detached span (no tracer) from its JSON form."""
    span = Span(
        tracer=None,
        span_id=data["span_id"],
        trace_id=data["trace_id"],
        parent_id=data.get("parent_id"),
        name=data["name"],
        cat=data.get("cat", "span"),
        machine_id=data.get("machine_id"),
        start_us=data["start_us"],
        tags=dict(data.get("tags") or {}),
    )
    span.end_us = data.get("end_us")
    return span


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write finished spans as JSON-lines; returns the span count."""
    count = 0
    with open(path, "w") as fh:
        for span in spans:
            if span.end_us is None:
                continue
            fh.write(json.dumps(span_to_dict(span), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Span]:
    spans: List[Span] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


def chrome_trace(spans: Iterable[Span]) -> Dict:
    """Build a Chrome ``trace_event`` document from finished spans.

    Uses complete ("X") events. ``pid`` is the machine, ``tid`` the trace
    lane; span/parent ids ride along in ``args`` so tooling can rebuild
    the tree from the exported file alone.
    """
    events: List[Dict] = []
    pids = set()
    for span in spans:
        if span.end_us is None:
            continue
        pid = span.machine_id if span.machine_id is not None else -1
        pids.add(pid)
        args = dict(span.tags)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.end_us - span.start_us,
                "pid": pid,
                "tid": span.trace_id,
                "args": args,
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": "cluster" if pid < 0 else f"machine {pid}"},
        }
        for pid in sorted(pids)
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "simulated microseconds"},
    }


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write a Chrome/Perfetto-loadable trace; returns the event count."""
    document = chrome_trace(spans)
    with open(path, "w") as fh:
        json.dump(document, fh)
    return sum(1 for e in document["traceEvents"] if e["ph"] == "X")
