"""Telemetry exporters: JSON-lines, Chrome ``trace_event``, Prometheus.

Three formats, three audiences:

* **JSONL** — one span per line, lossless, made for programmatic
  round-trips (tests, offline breakdown analysis, diffing two runs);
* **Chrome trace_event** — load the file into ``chrome://tracing`` or
  https://ui.perfetto.dev and *see* late-binding reads racing stragglers.
  Simulated microseconds map 1:1 onto the format's ``ts``/``dur`` unit;
  each machine becomes a process track (``pid``) and each sampled request
  gets its own lane (``tid`` = trace id) so overlapping requests never
  corrupt each other's nesting. Registry time series additionally export
  as counter ("C") events — Perfetto renders them as counter tracks
  alongside the spans (free fraction, queue depth, windowed p99);
* **Prometheus text exposition** — a point-in-time scrape of the whole
  registry (counters, histograms with cumulative ``le`` buckets, latency
  summaries, gauges) for piping the simulated cluster into standard
  dashboards or just diffing two runs with standard tooling.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from ..sim.trace import Histogram, LatencyRecorder, ThroughputWindow, TimeSeries
from .metrics import MetricsRegistry, ScalarCounter
from .tracing import Span

__all__ = [
    "span_to_dict",
    "span_from_dict",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "counter_events",
    "prometheus_text",
]


def span_to_dict(span: Span) -> Dict:
    """Lossless JSON form of one finished span."""
    return {
        "span_id": span.span_id,
        "trace_id": span.trace_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "cat": span.cat,
        "machine_id": span.machine_id,
        "start_us": span.start_us,
        "end_us": span.end_us,
        "tags": span.tags,
    }


def span_from_dict(data: Dict) -> Span:
    """Reconstruct a detached span (no tracer) from its JSON form."""
    span = Span(
        tracer=None,
        span_id=data["span_id"],
        trace_id=data["trace_id"],
        parent_id=data.get("parent_id"),
        name=data["name"],
        cat=data.get("cat", "span"),
        machine_id=data.get("machine_id"),
        start_us=data["start_us"],
        tags=dict(data.get("tags") or {}),
    )
    span.end_us = data.get("end_us")
    return span


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write finished spans as JSON-lines; returns the span count."""
    count = 0
    with open(path, "w") as fh:
        for span in spans:
            if span.end_us is None:
                continue
            fh.write(json.dumps(span_to_dict(span), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Span]:
    spans: List[Span] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


def chrome_trace(spans: Iterable[Span], counters: Iterable[Dict] = ()) -> Dict:
    """Build a Chrome ``trace_event`` document from finished spans.

    Uses complete ("X") events. ``pid`` is the machine, ``tid`` the trace
    lane; span/parent ids ride along in ``args`` so tooling can rebuild
    the tree from the exported file alone. ``counters`` appends
    pre-built counter ("C") events (see :func:`counter_events`) so
    Perfetto shows gauge tracks next to the request spans.
    """
    events: List[Dict] = []
    pids = set()
    for span in spans:
        if span.end_us is None:
            continue
        pid = span.machine_id if span.machine_id is not None else -1
        pids.add(pid)
        args = dict(span.tags)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.end_us - span.start_us,
                "pid": pid,
                "tid": span.trace_id,
                "args": args,
            }
        )
    counters = list(counters)
    pids.update(event["pid"] for event in counters)
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": "cluster" if pid < 0 else f"machine {pid}"},
        }
        for pid in sorted(pids)
    ]
    return {
        "traceEvents": metadata + events + counters,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "simulated microseconds"},
    }


def write_chrome_trace(
    spans: Iterable[Span], path: str, counters: Iterable[Dict] = ()
) -> int:
    """Write a Chrome/Perfetto-loadable trace; returns the event count."""
    document = chrome_trace(spans, counters=counters)
    with open(path, "w") as fh:
        json.dump(document, fh)
    return sum(1 for e in document["traceEvents"] if e["ph"] == "X")


def counter_events(registry: MetricsRegistry, prefix: str = "sample.") -> List[Dict]:
    """Chrome counter ("C") events from every registry time series.

    Each ``sample.machine.<id>.*`` series lands on that machine's process
    track; cluster-wide series (windowed p99, open regens) land on the
    cluster track (``pid`` -1). One event per recorded point — sampler
    series are bounded by run length / ControlPeriod, never by op count.
    """
    events: List[Dict] = []
    for name in registry.names():
        if prefix and not name.startswith(prefix):
            continue
        metric = registry.get(name)
        if not isinstance(metric, TimeSeries):
            continue
        pid = -1
        label = name
        parts = name.split(".")
        if len(parts) >= 4 and parts[0] == "sample" and parts[1] == "machine":
            try:
                pid = int(parts[2])
                label = ".".join(parts[3:])
            except ValueError:
                pid = -1
        for time_us, value in zip(metric.times, metric.values):
            events.append(
                {
                    "name": label,
                    "ph": "C",
                    "ts": time_us,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
    return events


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_number(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """Prometheus text exposition (v0.0.4) of the whole registry.

    Dotted registry names become the ``name`` label of a per-kind metric
    family — ``rm.0.read`` does not have to be mangled into an identifier
    and relabeling stays trivial. Output is sorted by registry name, so
    two scrapes of identical registries are byte-identical.
    """
    counters: List[str] = []
    gauges: List[str] = []
    throughputs: List[str] = []
    summaries: List[str] = []
    histograms: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        label = f'name="{_prom_escape(name)}"'
        if isinstance(metric, ScalarCounter):
            counters.append(f"{namespace}_counter_total{{{label}}} {metric.value}")
        elif isinstance(metric, LatencyRecorder):
            if metric.count == 0:
                continue
            for pct in (50.0, 90.0, 99.0):
                summaries.append(
                    f'{namespace}_latency_us{{{label},quantile="{pct / 100:g}"}} '
                    f"{_prom_number(metric.percentile(pct))}"
                )
            summaries.append(
                f"{namespace}_latency_us_sum{{{label}}} "
                f"{_prom_number(metric.hist.sum)}"
            )
            summaries.append(
                f"{namespace}_latency_us_count{{{label}}} {metric.count}"
            )
        elif isinstance(metric, Histogram):
            if metric.count == 0:
                continue
            for upper, cumulative in metric.cumulative_buckets():
                histograms.append(
                    f"{namespace}_histogram_bucket"
                    f'{{{label},le="{_prom_number(upper)}"}} {cumulative}'
                )
            histograms.append(
                f'{namespace}_histogram_bucket{{{label},le="+Inf"}} '
                f"{metric.count}"
            )
            histograms.append(
                f"{namespace}_histogram_sum{{{label}}} {_prom_number(metric.sum)}"
            )
            histograms.append(
                f"{namespace}_histogram_count{{{label}}} {metric.count}"
            )
        elif isinstance(metric, TimeSeries):
            if len(metric):
                gauges.append(
                    f"{namespace}_gauge{{{label}}} {_prom_number(metric.last())}"
                )
        elif isinstance(metric, ThroughputWindow):
            throughputs.append(
                f"{namespace}_throughput_total{{{label}}} {metric.total()}"
            )
    lines: List[str] = []
    for family, kind, rows in (
        (f"{namespace}_counter_total", "counter", counters),
        (f"{namespace}_gauge", "gauge", gauges),
        (f"{namespace}_throughput_total", "counter", throughputs),
        (f"{namespace}_latency_us", "summary", summaries),
        (f"{namespace}_histogram", "histogram", histograms),
    ):
        if not rows:
            continue
        lines.append(f"# HELP {family} Simulated-cluster telemetry ({family}).")
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(rows)
    return "\n".join(lines) + "\n"
