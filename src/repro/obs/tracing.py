"""Span-based distributed tracing on **simulated time**.

Every figure in the paper is a claim about where microseconds go: which
verb overlaps which, who waits for the k-th split, what the corruption
state machine costs. The tracer answers these questions per request
instead of per percentile: instrumented code opens :class:`Span`\\ s whose
start/end timestamps are the simulator clock (microseconds), parented
into trees that follow a request across machines and background
processes.

Design constraints driving the API:

* **Generator processes interleave.** There is no thread-local "current
  span" that survives a ``yield``, so context propagates *explicitly*:
  parent spans are passed into child processes and sub-calls (the
  ``parent=`` argument on the pool protocol, the ``span=`` argument on
  RDMA verbs). This is the same discipline real tracing systems use
  across async hops.
* **Tracing must be free when off.** ``Tracer.start_trace`` is the single
  sampling gate; with ``sample_every == 0`` it returns ``None`` after one
  integer compare and every instrumentation site degrades to a ``None``
  check. Phantom-payload cluster runs stay tractable by sampling
  1-in-N requests (deterministic under the seeded RNG).
* **Breakdowns must sum.** :class:`PhaseClock` marks *contiguous* phase
  boundaries under a root span: each ``mark(name)`` retroactively covers
  exactly ``[previous mark, now]``, so the phase durations of a request
  tile its end-to-end latency with zero gaps or overlaps — the property
  the Fig 11-style span-derived decomposition relies on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim import RandomSource

__all__ = ["Span", "Tracer", "PhaseClock", "NULL_PHASES"]


class Span:
    """One named interval of simulated time, part of a trace tree.

    ``start_us``/``end_us`` are simulator microseconds. ``machine_id``
    says where the work happened (the Chrome exporter maps it to a
    process track). ``tags`` carry request-specific detail (page id,
    fan-out, per-verb latency parts).
    """

    __slots__ = (
        "tracer",
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "cat",
        "machine_id",
        "start_us",
        "end_us",
        "tags",
    )

    def __init__(
        self,
        tracer: Optional["Tracer"],
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        name: str,
        cat: str,
        machine_id: Optional[int],
        start_us: float,
        tags: Optional[Dict[str, Any]] = None,
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.machine_id = machine_id
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.tags: Dict[str, Any] = tags if tags is not None else {}

    # -- lifecycle ---------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            raise ValueError(f"span {self.name!r} has not finished")
        return self.end_us - self.start_us

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def child(
        self,
        name: str,
        cat: Optional[str] = None,
        machine_id: Optional[int] = None,
        tags: Optional[Dict[str, Any]] = None,
    ) -> "Span":
        """A child span starting now. The child may outlive this span
        (asynchronous parity writes, background verification)."""
        return self.tracer._new_span(
            name,
            cat=cat if cat is not None else self.cat,
            machine_id=machine_id if machine_id is not None else self.machine_id,
            tags=tags,
            parent=self,
        )

    def finish(self, end_us: Optional[float] = None) -> None:
        """End the span (idempotent); records it with the tracer."""
        if self.end_us is not None:
            return
        self.end_us = self.tracer.sim.now if end_us is None else end_us
        self.tracer._record(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self.finish()

    def __repr__(self) -> str:
        end = f"{self.end_us:.3f}" if self.end_us is not None else "…"
        return (
            f"<Span {self.name} id={self.span_id} trace={self.trace_id} "
            f"[{self.start_us:.3f}, {end}]us>"
        )


class Tracer:
    """Creates spans against a simulator clock; owns sampling + storage.

    ``sample_every`` selects the fraction of root traces kept: ``0``
    disables tracing entirely (every ``start_trace`` returns ``None``),
    ``1`` traces everything, ``N > 1`` keeps roughly 1-in-N requests via
    the seeded RNG so runs are reproducible.
    """

    def __init__(
        self,
        sim,
        sample_every: int = 1,
        rng: Optional[RandomSource] = None,
        max_spans: int = 2_000_000,
    ):
        if sample_every < 0:
            raise ValueError(f"sample_every must be >= 0, got {sample_every}")
        self.sim = sim
        self.spans: List[Span] = []  # finished spans, in finish order
        self.dropped = 0
        self.max_spans = max_spans
        self._sample_every = int(sample_every)
        self._rng = rng if rng is not None else RandomSource(0, "tracer")
        self._next_id = 0

    # -- sampling ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._sample_every > 0

    @property
    def sample_every(self) -> int:
        return self._sample_every

    def set_sampling(self, sample_every: int) -> None:
        if sample_every < 0:
            raise ValueError(f"sample_every must be >= 0, got {sample_every}")
        self._sample_every = int(sample_every)

    # -- span creation -----------------------------------------------------
    def start_trace(
        self,
        name: str,
        machine_id: Optional[int] = None,
        cat: str = "request",
        tags: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Root span of a new trace — THE sampling decision point.

        Returns ``None`` when tracing is disabled or this request lost
        the 1-in-N draw; instrumentation treats ``None`` as "not traced".
        """
        every = self._sample_every
        if every == 0:
            return None
        if every > 1 and not self._rng.bernoulli(1.0 / every):
            return None
        return self._new_span(name, cat=cat, machine_id=machine_id, tags=tags, parent=None)

    def start_span(
        self,
        name: str,
        machine_id: Optional[int] = None,
        cat: str = "background",
        tags: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Unsampled root span for rare, high-value events (slab
        regeneration, corruption recovery): traced whenever the tracer is
        enabled at all."""
        if self._sample_every == 0:
            return None
        return self._new_span(name, cat=cat, machine_id=machine_id, tags=tags, parent=None)

    def span_at(
        self,
        name: str,
        parent: Span,
        start_us: float,
        end_us: float,
        cat: str = "phase",
        tags: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """A retroactive, already-finished child span covering
        ``[start_us, end_us]`` — the primitive behind :class:`PhaseClock`."""
        span = self._new_span(
            name, cat=cat, machine_id=parent.machine_id, tags=tags,
            parent=parent, start_us=start_us,
        )
        span.finish(end_us)
        return span

    def phases(self, span: Optional[Span]) -> "PhaseClock":
        """A phase clock for ``span`` (a shared no-op when not traced)."""
        return PhaseClock(span) if span is not None else NULL_PHASES

    def _new_span(
        self,
        name: str,
        cat: str,
        machine_id: Optional[int],
        tags: Optional[Dict[str, Any]],
        parent: Optional[Span],
        start_us: Optional[float] = None,
    ) -> Span:
        self._next_id += 1
        span_id = self._next_id
        return Span(
            self,
            span_id=span_id,
            trace_id=parent.trace_id if parent is not None else span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            cat=cat,
            machine_id=machine_id,
            start_us=self.sim.now if start_us is None else start_us,
            tags=tags,
        )

    # -- storage -----------------------------------------------------------
    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def finished_spans(self) -> List[Span]:
        return list(self.spans)

    def reset(self) -> None:
        """Drop all recorded spans (between experiment repetitions)."""
        self.spans.clear()
        self.dropped = 0


class _NullPhases:
    """No-op stand-in used when a request is not traced."""

    __slots__ = ()

    def mark(self, name: str, **tags) -> None:
        return None


NULL_PHASES = _NullPhases()


class PhaseClock:
    """Tiles a root span with contiguous phase child spans.

    ``mark(name)`` creates a child covering exactly ``[previous mark,
    now]`` (zero-width phases are skipped), so the sum of a request's
    phase durations equals its end-to-end latency — no double counting,
    no gaps. Call ``mark`` immediately after each ``yield``-bearing stage.

    The clock starts at *creation* time (== ``span.start_us`` when created
    where the span starts): a clock created mid-request (e.g. by a
    subclass stage) covers only time from that point on, so two clocks on
    one span can never produce overlapping phases.
    """

    __slots__ = ("span", "last")

    def __init__(self, span: Span):
        self.span = span
        self.last = span.tracer.sim.now

    def mark(self, name: str, **tags) -> Optional[Span]:
        now = self.span.tracer.sim.now
        if now <= self.last:
            return None
        child = self.span.tracer.span_at(
            name, self.span, self.last, now, tags=tags or None
        )
        self.last = now
        return child
