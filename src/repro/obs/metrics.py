"""Unified, hierarchically named metrics registry.

Before this module existed, counters lived in per-object bags
(``ResilienceManager.events``, pager ``stats`` dicts, raw ints on NICs)
and harness code had to know where each one hid. The registry gives every
instrument a dotted name (``rm.0.events.writes``, ``nic.3.bytes_tx``,
``vmm.fault``) in one namespace with get-or-create semantics, so a
whole-cluster report is one :meth:`MetricsRegistry.snapshot` call.

Instrument kinds (the classes behind figure data stay in
:mod:`repro.sim.trace`; the registry owns and names instances):

* :class:`ScalarCounter` — one monotonically increasing value;
* :class:`CounterGroup` — a prefix-scoped facade compatible with the old
  ``Counter`` bag API (``incr(key)`` / ``[key]`` / ``.counts``) whose
  entries are registry-owned scalar counters;
* ``LatencyRecorder`` / ``TimeSeries`` / ``ThroughputWindow`` — the
  existing measurement primitives, registered by name;
* ``Histogram`` — the log-bucketed HDR-style distribution instrument
  (constant memory, deterministic shard merge), registered by name.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.trace import Histogram, LatencyRecorder, ThroughputWindow, TimeSeries

__all__ = ["ScalarCounter", "CounterGroup", "MetricsRegistry"]


class ScalarCounter:
    """A single named, monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"ScalarCounter({self.name}={self.value})"


class CounterGroup:
    """A bag of counters under one prefix — the old ``Counter`` API.

    ``group.incr("writes")`` increments the registry counter
    ``<prefix>.writes``; ``group["writes"]`` reads it back (0 when never
    incremented), and ``group.counts`` returns a plain dict snapshot, so
    existing callers of :class:`repro.sim.Counter` migrate untouched.
    """

    __slots__ = ("registry", "prefix", "_cache")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self.registry = registry
        self.prefix = prefix
        self._cache: Dict[str, ScalarCounter] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        counter = self._cache.get(key)
        if counter is None:
            counter = self.registry.counter(f"{self.prefix}.{key}")
            self._cache[key] = counter
        counter.value += amount

    def __getitem__(self, key: str) -> int:
        counter = self._cache.get(key)
        if counter is None:
            # The counter may exist in the registry via another group view.
            existing = self.registry.get(f"{self.prefix}.{key}")
            if isinstance(existing, ScalarCounter):
                self._cache[key] = existing
                return existing.value
            return 0
        return counter.value

    @property
    def counts(self) -> Dict[str, int]:
        prefix = f"{self.prefix}."
        return {
            name[len(prefix):]: metric.value
            for name, metric in self.registry.find(self.prefix).items()
            if isinstance(metric, ScalarCounter) and name.startswith(prefix)
        }

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"Counter({inner})"


class MetricsRegistry:
    """Owns named metric instances; dotted names form the hierarchy.

    All accessors are get-or-create: asking twice for the same name
    returns the same object, and asking for an existing name as a
    different kind raises ``ValueError`` (a naming bug, not a race).
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._groups: Dict[str, CounterGroup] = {}

    # -- get-or-create accessors -------------------------------------------
    def _get_or_create(self, name: str, kind, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, wanted {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> ScalarCounter:
        return self._get_or_create(name, ScalarCounter, lambda: ScalarCounter(name))

    def counter_group(self, prefix: str) -> CounterGroup:
        group = self._groups.get(prefix)
        if group is None:
            group = CounterGroup(self, prefix)
            self._groups[prefix] = group
        return group

    def latency(self, name: str) -> LatencyRecorder:
        return self._get_or_create(name, LatencyRecorder, lambda: LatencyRecorder(name))

    def histogram(self, name: str, subbuckets: int = 32) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, subbuckets=subbuckets)
        )

    def timeseries(self, name: str) -> TimeSeries:
        return self._get_or_create(name, TimeSeries, lambda: TimeSeries(name))

    def throughput(self, name: str, window_us: float = 1_000_000.0) -> ThroughputWindow:
        return self._get_or_create(
            name, ThroughputWindow, lambda: ThroughputWindow(window_us, name)
        )

    # -- lookup ------------------------------------------------------------
    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def items(self):
        """``(name, metric)`` pairs, name-sorted (stable scan order)."""
        return sorted(self._metrics.items())

    def find(self, prefix: str) -> Dict[str, object]:
        """All metrics at or below ``prefix`` in the dotted hierarchy."""
        scoped = f"{prefix}."
        return {
            name: metric
            for name, metric in self._metrics.items()
            if name == prefix or name.startswith(scoped)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- reporting -----------------------------------------------------------
    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, object]:
        """A JSON-friendly view of every (or one subtree of) metric.

        Counters flatten to ints; latency recorders and histograms to
        percentile summary dicts (``{"count": 0}`` when empty); time
        series keep their distribution (min/mean/max, not just the last
        value); throughput windows carry total *and* windowed rate.
        """
        source = self._metrics if prefix is None else self.find(prefix)
        out: Dict[str, object] = {}
        for name in sorted(source):
            metric = source[name]
            if isinstance(metric, ScalarCounter):
                out[name] = metric.value
            elif isinstance(metric, LatencyRecorder):
                if metric.count == 0:
                    out[name] = {"count": 0}
                else:
                    summary = metric.summary()
                    out[name] = {
                        "count": summary.count,
                        "mean": summary.mean,
                        "p50": summary.p50,
                        "p90": summary.p90,
                        "p99": summary.p99,
                        "max": summary.max,
                    }
            elif isinstance(metric, Histogram):
                if metric.count == 0:
                    out[name] = {"count": 0}
                else:
                    entry = {
                        "count": metric.count,
                        "mean": metric.mean,
                        "min": metric.min,
                        "max": metric.max,
                    }
                    entry.update(metric.percentiles())
                    out[name] = entry
            elif isinstance(metric, TimeSeries):
                entry = {"count": len(metric), "last": None}
                if len(metric):
                    values = metric.values
                    entry.update(
                        last=metric.last(),
                        min=float(min(values)),
                        mean=metric.mean(),
                        max=float(max(values)),
                    )
                out[name] = entry
            elif isinstance(metric, ThroughputWindow):
                entry = {"total": metric.total(), "window_us": metric.window_us}
                _, per_sec = metric.series()
                if per_sec.size:
                    entry["rate_mean_per_sec"] = float(per_sec.mean())
                    entry["rate_peak_per_sec"] = float(per_sec.max())
                out[name] = entry
            else:  # pragma: no cover - future metric kinds
                out[name] = repr(metric)
        return out
