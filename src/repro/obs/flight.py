"""Flight recorder: a bounded ring of recent telemetry events.

Black-box style: the cluster continuously notes cheap structured records
(sampler frames' metric deltas, health transitions, chaos fault events,
invariant violations) into a fixed-size ring. In steady state the ring
just overwrites itself at zero marginal memory; when something goes
wrong — an invariant violation or an SLO breach — the chaos bundle dumps
the ring as ``flight.json``, giving the investigator the last N things
the cluster did *before* the failure without having had tracing enabled.

Records carry only simulated time, never wall-clock, so a dump is
byte-identical across replays of the same seed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """A deque-backed ring of ``{"kind", "at_us", ...}`` records."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.total = 0  # records ever noted, including overwritten ones

    def note(self, kind: str, at_us: float, **fields) -> None:
        """Append one record; O(1), overwrites the oldest when full."""
        record: Dict = {"kind": kind, "at_us": at_us}
        record.update(fields)
        self._ring.append(record)
        self.total += 1

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Records lost to ring overwrite."""
        return self.total - len(self._ring)

    def records(self, kind: Optional[str] = None) -> List[Dict]:
        """The retained records, oldest first (optionally one kind)."""
        if kind is None:
            return list(self._ring)
        return [record for record in self._ring if record["kind"] == kind]

    def to_dict(self) -> Dict:
        """JSON form for bundle dumps: ring contents plus loss counters."""
        return {
            "capacity": self.capacity,
            "total": self.total,
            "dropped": self.dropped,
            "records": list(self._ring),
        }

    def clear(self) -> None:
        self._ring.clear()
        self.total = 0
