"""Observability: simulated-time tracing + unified metrics registry.

The observability spine of the reproduction: a :class:`Tracer` producing
per-request span trees on the simulator clock, a
:class:`MetricsRegistry` unifying the counters/recorders that used to be
scattered per object, and exporters to JSON-lines and Chrome
``trace_event`` (Perfetto) formats.

One :class:`Observability` bundle is created per cluster and threaded
through the fabric, Resilience Managers, Resource Monitors, pager, and
baselines, so `python -m repro trace <scenario>` can decompose any
request end to end. Tracing defaults to OFF (sampling 0) — it costs one
branch per request until enabled.
"""

from dataclasses import dataclass

from ..sim import RandomSource
from .export import (
    chrome_trace,
    read_jsonl,
    span_from_dict,
    span_to_dict,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import CounterGroup, MetricsRegistry, ScalarCounter
from .tracing import NULL_PHASES, PhaseClock, Span, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "PhaseClock",
    "NULL_PHASES",
    "MetricsRegistry",
    "ScalarCounter",
    "CounterGroup",
    "chrome_trace",
    "read_jsonl",
    "span_from_dict",
    "span_to_dict",
    "write_chrome_trace",
    "write_jsonl",
]


@dataclass
class Observability:
    """The tracer + registry pair shared by one cluster."""

    tracer: Tracer
    metrics: MetricsRegistry

    @classmethod
    def create(cls, sim, sample_every: int = 0, seed: int = 0) -> "Observability":
        """A fresh bundle; tracing disabled unless ``sample_every > 0``."""
        return cls(
            tracer=Tracer(
                sim, sample_every=sample_every, rng=RandomSource(seed, "tracer")
            ),
            metrics=MetricsRegistry(),
        )

    def enable_tracing(self, sample_every: int = 1) -> None:
        """Turn on span collection mid-run (chaos runs trace everything so
        a violation's repro bundle can ship the full Perfetto timeline)."""
        self.tracer.set_sampling(sample_every)

    def export_trace(self, path: str) -> int:
        """Write every finished span as a Chrome/Perfetto trace; returns
        the exported event count."""
        return write_chrome_trace(self.tracer.finished_spans(), path)
