"""Observability: simulated-time tracing, metrics, health, dashboards.

The observability spine of the reproduction: a :class:`Tracer` producing
per-request span trees on the simulator clock, a
:class:`MetricsRegistry` unifying the counters/recorders/histograms that
used to be scattered per object, a :class:`ClusterSampler` +
:class:`HealthMonitor` pair turning cumulative metrics into windowed
rates and SLO verdicts, a :class:`FlightRecorder` ring for post-mortem
bundles, and exporters to JSON-lines, Chrome ``trace_event`` (Perfetto,
including counter tracks) and Prometheus text formats.

One :class:`Observability` bundle is created per cluster and threaded
through the fabric, Resilience Managers, Resource Monitors, pager, and
baselines, so ``python -m repro trace <scenario>`` can decompose any
request end to end and ``python -m repro top`` can render cluster
health. Tracing defaults to OFF (sampling 0) — it costs one branch per
request until enabled; sampling/health are opt-in via
:meth:`Observability.enable_monitoring`.
"""

from dataclasses import dataclass, field

from ..sim import Histogram, RandomSource
from .export import (
    chrome_trace,
    counter_events,
    prometheus_text,
    read_jsonl,
    span_from_dict,
    span_to_dict,
    write_chrome_trace,
    write_jsonl,
)
from .flight import FlightRecorder
from .health import HealthMonitor, SloRule, default_slo_rules
from .metrics import CounterGroup, MetricsRegistry, ScalarCounter
from .sampler import ClusterSampler
from .tracing import NULL_PHASES, PhaseClock, Span, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "PhaseClock",
    "NULL_PHASES",
    "MetricsRegistry",
    "ScalarCounter",
    "CounterGroup",
    "Histogram",
    "ClusterSampler",
    "HealthMonitor",
    "SloRule",
    "default_slo_rules",
    "FlightRecorder",
    "chrome_trace",
    "counter_events",
    "prometheus_text",
    "read_jsonl",
    "span_from_dict",
    "span_to_dict",
    "write_chrome_trace",
    "write_jsonl",
]


@dataclass
class Observability:
    """The tracer + registry + flight-recorder bundle of one cluster."""

    tracer: Tracer
    metrics: MetricsRegistry
    flight: FlightRecorder = field(default_factory=FlightRecorder)
    sampler: "ClusterSampler" = field(default=None, repr=False)
    health: "HealthMonitor" = field(default=None, repr=False)

    @classmethod
    def create(cls, sim, sample_every: int = 0, seed: int = 0) -> "Observability":
        """A fresh bundle; tracing disabled unless ``sample_every > 0``."""
        return cls(
            tracer=Tracer(
                sim, sample_every=sample_every, rng=RandomSource(seed, "tracer")
            ),
            metrics=MetricsRegistry(),
        )

    def enable_monitoring(
        self,
        cluster,
        rms=(),
        *,
        period_us: float = 20_000.0,
        rules=None,
    ) -> "ClusterSampler":
        """Attach and start a sampler + health monitor on ``cluster``.

        Idempotent per bundle. The sampler is read-only with respect to
        the simulation (no RNG draws, no state mutation), so turning
        monitoring on never changes a seeded run's data-path outcome.
        """
        if self.sampler is None:
            self.sampler = ClusterSampler(
                cluster,
                rms=rms,
                period_us=period_us,
                registry=self.metrics,
                flight=self.flight,
            )
            self.health = HealthMonitor(
                rules, registry=self.metrics, flight=self.flight
            )
            self.sampler.add_listener(self.health.observe)
            self.sampler.start()
        return self.sampler

    def enable_tracing(self, sample_every: int = 1) -> None:
        """Turn on span collection mid-run (chaos runs trace everything so
        a violation's repro bundle can ship the full Perfetto timeline)."""
        self.tracer.set_sampling(sample_every)

    def export_trace(self, path: str) -> int:
        """Write every finished span as a Chrome/Perfetto trace; returns
        the exported event count. When monitoring is on, the sampler's
        time series ride along as Perfetto counter tracks."""
        counters = counter_events(self.metrics) if self.sampler is not None else ()
        return write_chrome_trace(
            self.tracer.finished_spans(), path, counters=counters
        )
