"""``python -m repro trace`` — run a scenario with tracing on, export it.

Builds a small cluster, enables span sampling, drives one of three
scenarios, then writes the trace (Chrome ``trace_event`` JSON and/or
JSONL) and prints the span-derived latency breakdown — the same
decomposition Fig 11 of the paper reports, but recovered purely from the
trace instead of dedicated timers.

Load the Chrome JSON at https://ui.perfetto.dev (or ``chrome://tracing``):
each simulated machine renders as a process track, each request as a
span tree of phases and RDMA verbs.
"""

from __future__ import annotations

import argparse
import os
import sys

SCENARIOS = ("microbench", "pager", "failure")
BACKENDS = ("hydra", "replication", "ssd_backup", "compressed", "direct")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "scenario", nargs="?", default="microbench", choices=SCENARIOS,
        help="workload to trace (default: microbench)",
    )
    parser.add_argument(
        "--backend", default="hydra", choices=BACKENDS,
        help="remote-memory pool under trace (default: hydra)",
    )
    parser.add_argument("--machines", type=int, default=12, help="cluster size")
    parser.add_argument("--ops", type=int, default=200, help="read operations")
    parser.add_argument("--pages", type=int, default=64, help="distinct pages")
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--sample", type=int, default=1,
        help="trace 1-in-N requests; 1 = every request (default: 1)",
    )
    parser.add_argument(
        "--payload", default="real", choices=("real", "phantom"),
        help="carry real page bytes or phantom metadata (default: real)",
    )
    parser.add_argument(
        "--out", default="trace.json",
        help="output path (default: trace.json; jsonl swaps the extension)",
    )
    parser.add_argument(
        "--format", default="chrome", choices=("chrome", "jsonl", "both"),
        help="Chrome trace_event JSON, span JSONL, or both (default: chrome)",
    )
    return parser


def _build_pool(args):
    """(sim, obs, pool, read_root, write_root) for the chosen backend."""
    if args.backend == "hydra":
        from ..harness.builders import build_hydra_cluster

        hydra = build_hydra_cluster(
            machines=args.machines, seed=args.seed, payload_mode=args.payload
        )
        pool = hydra.remote_memory(0)
        return hydra.sim, hydra.obs, pool, "rm.read", "rm.write"

    from ..cluster import Cluster
    from ..harness.builders import build_backend

    cluster = Cluster(
        machines=args.machines,
        seed=args.seed,
        with_ssd=(args.backend == "ssd_backup"),
    )
    pool = build_backend(
        args.backend, cluster, client=0, payload_mode=args.payload
    )
    return cluster.sim, cluster.obs, pool, f"{pool.name}.read", f"{pool.name}.write"


def _victim_machine(pool) -> int:
    """A remote machine currently hosting data for ``pool``."""
    space = getattr(pool, "space", None)
    if space is not None:  # Hydra: first split of the first slab group
        return space.get(0).handle(0).machine_id
    for handles in getattr(pool, "groups", {}).values():
        for handle in handles:
            if handle.available:
                return handle.machine_id
    raise RuntimeError("no remote machine hosts any data yet")


def _run_scenario(args, sim, obs, pool, fail_machine):
    from ..harness.microbench import page_generator, run_process

    make_page = page_generator()
    payload = (lambda pid: make_page(pid)) if args.payload == "real" else (lambda pid: None)

    def microbench():
        for pid in range(args.pages):
            yield pool.write(pid, payload(pid))
        for op in range(args.ops):
            yield pool.read(op % args.pages)

    def failure():
        for pid in range(args.pages):
            yield pool.write(pid, payload(pid))
        fail_machine(_victim_machine(pool))
        yield sim.timeout(200.0)
        for op in range(args.ops):
            yield pool.read(op % args.pages)
        # Let background regeneration / re-replication spans finish.
        yield sim.timeout(10_000_000.0)

    def pager():
        from ..vmm import PagedMemory

        memory = PagedMemory(
            pool,
            resident_pages=max(args.pages // 2, 1),
            verify_contents=(args.payload == "real"),
        )
        for pid in range(args.pages):
            yield memory.access(pid, write=True, data=payload(pid))
        for op in range(args.ops):  # sweep beyond the resident set: faults
            yield memory.access(op % args.pages)

    body = {"microbench": microbench, "pager": pager, "failure": failure}[args.scenario]
    run_process(sim, sim.process(body(), name=f"trace-{args.scenario}"), until=1e12)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from ..harness.report import format_breakdown, span_phase_breakdown
    from .export import write_chrome_trace, write_jsonl

    sim, obs, pool, read_root, write_root = _build_pool(args)
    obs.tracer.set_sampling(args.sample)

    def fail_machine(machine_id: int) -> None:
        cluster = getattr(pool, "cluster", None)
        machine = (cluster or pool.fabric).machine(machine_id)
        machine.fail()
        print(f"killed machine {machine_id} at t={sim.now:.0f} us")

    _run_scenario(args, sim, obs, pool, fail_machine)

    spans = obs.tracer.finished_spans()
    base, _ext = os.path.splitext(args.out)
    written = []
    if args.format in ("chrome", "both"):
        events = write_chrome_trace(spans, args.out if args.format == "chrome" else base + ".json")
        written.append((args.out if args.format == "chrome" else base + ".json", f"{events} events"))
    if args.format in ("jsonl", "both"):
        path = args.out if args.format == "jsonl" else base + ".jsonl"
        count = write_jsonl(spans, path)
        written.append((path, f"{count} spans"))

    roots = read_root if args.scenario != "pager" else "vmm.fault"
    print(format_breakdown(span_phase_breakdown(spans, roots)))
    if args.scenario != "pager":
        print(format_breakdown(span_phase_breakdown(spans, write_root)))

    traces = len({s.trace_id for s in spans})
    print(
        f"\n{len(spans)} spans across {traces} traces "
        f"(sampling 1-in-{args.sample}, dropped {obs.tracer.dropped})"
    )
    for path, what in written:
        print(f"wrote {path} ({what})")
    if args.format in ("chrome", "both"):
        print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
