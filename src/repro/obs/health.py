"""Declarative SLO rules and cluster health evaluation.

An :class:`SloRule` names one scalar the operator cares about, how to
extract it from a sampler frame, and the threshold it must respect. The
:class:`HealthMonitor` subscribes to a
:class:`~repro.obs.sampler.ClusterSampler` and, each frame, evaluates
every rule, tracking an ``ok``/``breach`` state per (rule, machine).
State *transitions* — not steady states — are emitted as structured
events, counted in the registry (``health.transitions``,
``health.breaches``), and noted into the flight recorder, so a
long healthy run costs nothing and a breach leaves a precise,
deterministic timeline.

The four default rules mirror the failure modes Hydra's evaluation
studies (§7): remote-read tail latency, regeneration backlog after
failures, corruption-healing lag, and per-machine free-slab watermark
(the headroom the ResourceMonitor is supposed to defend, Fig 7a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .flight import FlightRecorder
from .metrics import MetricsRegistry

__all__ = ["SloRule", "HealthMonitor", "default_slo_rules"]


@dataclass(frozen=True)
class SloRule:
    """One SLO: ``value(frame[, machine]) op threshold`` must hold.

    ``scope`` is ``"cluster"`` (evaluated once per frame) or
    ``"machine"`` (evaluated per machine row). ``op`` is ``"<="`` (value
    is a cost that must stay under the ceiling) or ``">="`` (value is a
    resource that must stay above the floor). ``value`` returning
    ``None`` means "no data this frame" and keeps the previous state.
    """

    name: str
    description: str
    threshold: float
    value: Callable[..., Optional[float]]
    op: str = "<="
    scope: str = "cluster"

    def healthy(self, value: float) -> bool:
        return value <= self.threshold if self.op == "<=" else value >= self.threshold


def default_slo_rules(
    *,
    read_p99_ceiling_us: float = 10_000.0,
    regen_backlog_max: int = 4,
    healing_backlog_max: int = 8,
    free_frac_floor: float = 0.05,
) -> List[SloRule]:
    """The standard Hydra rule set (thresholds are keyword-tunable)."""
    return [
        SloRule(
            name="read_p99",
            description="windowed remote-read p99 under the ceiling",
            threshold=read_p99_ceiling_us,
            value=lambda frame: frame.get("read", {}).get("window_p99_us"),
        ),
        SloRule(
            name="regen_backlog",
            description="open regenerations bounded (post-failure catch-up)",
            threshold=float(regen_backlog_max),
            value=lambda frame: frame.get("open_regens"),
        ),
        SloRule(
            name="healing_lag",
            description="detected-but-unhealed corruptions bounded",
            threshold=float(healing_backlog_max),
            value=lambda frame: frame.get("healing_backlog"),
        ),
        SloRule(
            name="free_slab_watermark",
            description="per-machine free memory above the watermark",
            threshold=free_frac_floor,
            op=">=",
            scope="machine",
            value=lambda frame, row: row["free_frac"] if row["alive"] else None,
        ),
    ]


class HealthMonitor:
    """Evaluates SLO rules against sampler frames; records transitions."""

    def __init__(
        self,
        rules: Optional[List[SloRule]] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        self.rules = list(rules) if rules is not None else default_slo_rules()
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO rule names: {names}")
        self.registry = registry
        self.flight = flight
        # (rule_name, machine_id-or-None) -> "ok" | "breach"
        self.states: Dict[tuple, str] = {}
        self.transitions: List[Dict] = []
        self.frames_evaluated = 0

    # ------------------------------------------------------------------
    def observe(self, frame: Dict) -> None:
        """Sampler listener: evaluate every rule against one frame."""
        self.frames_evaluated += 1
        at_us = frame["at_us"]
        for rule in self.rules:
            if rule.scope == "machine":
                for machine_id in sorted(frame["machines"]):
                    value = rule.value(frame, frame["machines"][machine_id])
                    self._apply(rule, machine_id, value, at_us)
            else:
                self._apply(rule, None, rule.value(frame), at_us)

    def _apply(self, rule: SloRule, machine_id, value, at_us: float) -> None:
        if value is None:
            return
        state = "ok" if rule.healthy(value) else "breach"
        key = (rule.name, machine_id)
        previous = self.states.get(key, "ok")
        self.states[key] = state
        if state == previous:
            return
        event = {
            "at_us": at_us,
            "rule": rule.name,
            "machine": machine_id,
            "from": previous,
            "to": state,
            "value": value,
            "threshold": rule.threshold,
        }
        self.transitions.append(event)
        if self.registry is not None:
            self.registry.counter("health.transitions").incr()
            if state == "breach":
                self.registry.counter(f"health.breaches.{rule.name}").incr()
        if self.flight is not None:
            self.flight.note("health", at_us, **{
                k: v for k, v in event.items() if k != "at_us"
            })

    # ------------------------------------------------------------------
    @property
    def breached(self) -> bool:
        """True if any (rule, machine) is currently in breach."""
        return any(state == "breach" for state in self.states.values())

    @property
    def ever_breached(self) -> bool:
        return any(event["to"] == "breach" for event in self.transitions)

    def machine_state(self, machine_id: int) -> str:
        """Worst current state affecting one machine (its own machine-
        scoped rules plus every cluster-scoped rule)."""
        for (rule, scope_id), state in self.states.items():
            if state == "breach" and scope_id in (machine_id, None):
                return "breach"
        return "ok"

    def breach_counts(self) -> Dict[str, int]:
        """Rule name -> number of ok->breach transitions (deterministic)."""
        counts: Dict[str, int] = {}
        for event in self.transitions:
            if event["to"] == "breach":
                counts[event["rule"]] = counts.get(event["rule"], 0) + 1
        return dict(sorted(counts.items()))

    def report(self) -> Dict:
        """JSON-able summary for chaos reports and the dashboard."""
        return {
            "rules": [
                {
                    "name": rule.name,
                    "description": rule.description,
                    "op": rule.op,
                    "threshold": rule.threshold,
                    "scope": rule.scope,
                }
                for rule in self.rules
            ],
            "frames_evaluated": self.frames_evaluated,
            "transitions": len(self.transitions),
            "breaches": self.breach_counts(),
            "currently_breached": sorted(
                f"{rule}@{machine if machine is not None else 'cluster'}"
                for (rule, machine), state in self.states.items()
                if state == "breach"
            ),
        }
