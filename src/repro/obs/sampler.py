"""Sim-time cluster sampler: periodic snapshots of the metrics registry.

Counters and latency histograms are cumulative — great for totals,
useless for "what is the cluster doing *right now*". The
:class:`ClusterSampler` runs as a simulation process that wakes every
ControlPeriod, diffs the registry against its previous snapshot, and
turns the deltas into:

* windowed **rates** (ops/s, bytes/s) for every scalar counter that
  moved;
* windowed **latency percentiles** (the read p99 *of the last window*,
  via histogram bucket subtraction — the quantity SLO rules care about);
* per-machine **gauges** (free fraction, free/mapped slab counts,
  outbound RDMA queue depth) recorded into registry time series under
  ``sample.*`` so exporters can render Perfetto counter tracks.

The sampler is strictly read-only with respect to the simulation: it
draws no random numbers and mutates no cluster state, so enabling it
never changes a seeded run's outcome — only adds its own wake-ups to
the event heap. Each frame is also noted into the
:class:`~repro.obs.flight.FlightRecorder` (compact form) and handed to
registered listeners (the :class:`~repro.obs.health.HealthMonitor`, the
``repro top`` renderer).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.trace import Histogram, LatencyRecorder
from .flight import FlightRecorder
from .metrics import MetricsRegistry, ScalarCounter

__all__ = ["ClusterSampler", "histogram_window"]


def histogram_window(current: Histogram, previous_buckets: Dict[int, int],
                     previous_zero: int) -> Histogram:
    """The histogram of samples recorded *since* the previous snapshot.

    Bucket counts are monotonic, so the window is a plain per-bucket
    subtraction; ``sum``/``min``/``max`` are not recoverable per window
    and stay unset (percentiles never need them).
    """
    window = Histogram(current.name, subbuckets=current.subbuckets)
    window.zero = current.zero - previous_zero
    window.count = window.zero
    for index, count in current.buckets.items():
        delta = count - previous_buckets.get(index, 0)
        if delta:
            window.buckets[index] = delta
            window.count += delta
    return window


class ClusterSampler:
    """Snapshots a cluster's registry into windowed series each period."""

    def __init__(
        self,
        cluster,
        rms=(),
        *,
        period_us: float = 20_000.0,
        registry: Optional[MetricsRegistry] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        if period_us <= 0:
            raise ValueError(f"period must be positive, got {period_us}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.rms = list(rms)
        self.period_us = period_us
        obs = getattr(cluster, "obs", None)
        self.registry = registry if registry is not None else obs.metrics
        self.flight = flight if flight is not None else getattr(obs, "flight", None)
        self.listeners: List[Callable[[Dict], None]] = []
        self.frames = 0
        self.last_frame: Optional[Dict] = None
        self._prev_counters: Dict[str, int] = {}
        self._prev_hists: Dict[str, tuple] = {}
        self._daemon = None
        # Hot-path caches: the registry only grows, so the scalar-counter
        # scan list is rebuilt only when the metric count changes, and
        # per-machine series handles are resolved once.
        self._scalar_cache: tuple = (-1, ())
        self._machine_series: Dict[int, tuple] = {}
        self._regen_series = self.registry.timeseries("sample.open_regens")

    def add_listener(self, listener: Callable[[Dict], None]) -> None:
        self.listeners.append(listener)

    def start(self) -> None:
        """Launch the periodic sampling loop (idempotent)."""
        if self._daemon is None:
            self._daemon = self.sim.process(self._loop(), name="cluster-sampler")

    def _loop(self):
        while True:
            yield self.sim.timeout(self.period_us)
            self.sample()

    # ------------------------------------------------------------------
    def sample(self) -> Dict:
        """Take one frame now; normally driven by :meth:`start`'s loop."""
        frame: Dict = {"at_us": self.sim.now, "machines": {}, "rates": {}}

        # -- per-machine gauges ----------------------------------------
        for machine in sorted(self.cluster.machines, key=lambda m: m.id):
            depth = self.cluster.fabric.queue_depth(machine.id)
            row = {
                "alive": machine.alive,
                "free_frac": machine.free_bytes / machine.total_memory_bytes,
                "free_slabs": len(machine.free_slabs()),
                "mapped_slabs": len(machine.mapped_slabs()),
                "queue_depth": depth,
            }
            frame["machines"][machine.id] = row
            series = self._machine_series.get(machine.id)
            if series is None:
                series = (
                    self.registry.timeseries(
                        f"sample.machine.{machine.id}.free_frac"
                    ),
                    self.registry.timeseries(
                        f"sample.machine.{machine.id}.queue_depth"
                    ),
                )
                self._machine_series[machine.id] = series
            series[0].record(self.sim.now, row["free_frac"])
            series[1].record(self.sim.now, depth)

        # -- counter deltas -> windowed rates --------------------------
        window_sec = self.period_us / 1e6
        if self._scalar_cache[0] != len(self.registry):
            self._scalar_cache = (
                len(self.registry),
                tuple(
                    (name, metric)
                    for name, metric in sorted(self.registry.items())
                    if isinstance(metric, ScalarCounter)
                    and not name.startswith("sample.")
                ),
            )
        prev = self._prev_counters
        for name, metric in self._scalar_cache[1]:
            value = metric.value
            delta = value - prev.get(name, 0)
            prev[name] = value
            if delta:
                frame["rates"][name] = delta / window_sec

        # -- windowed latency percentiles over the RM data paths -------
        for direction in ("read", "write"):
            recorders = [
                rm.read_latency if direction == "read" else rm.write_latency
                for rm in self.rms
            ]
            if recorders:
                frame[direction] = self._latency_window(direction, recorders)
        frame["open_regens"] = sum(rm.open_regen_count for rm in self.rms)
        frame["healing_backlog"] = sum(
            max(
                0,
                rm.events["corruption_detected"]
                - rm.events["corrected_reads"]
                - rm.events["uncorrectable_detections"],
            )
            for rm in self.rms
        )
        self._regen_series.record(self.sim.now, frame["open_regens"])

        # -- publish ---------------------------------------------------
        self.frames += 1
        self.last_frame = frame
        if self.flight is not None:
            self.flight.note(
                "sample",
                self.sim.now,
                rates={k: round(v, 3) for k, v in sorted(frame["rates"].items())},
                open_regens=frame["open_regens"],
                healing_backlog=frame["healing_backlog"],
                read_window_p99_us=frame.get("read", {}).get("window_p99_us"),
            )
        for listener in self.listeners:
            listener(frame)
        return frame

    def _latency_window(
        self, direction: str, recorders: List[LatencyRecorder]
    ) -> Dict:
        """Cumulative + last-window percentiles, merged across RMs."""
        cumulative = Histogram(direction)
        window = Histogram(direction)
        for recorder in recorders:
            hist = recorder.hist
            cumulative.merge(hist)
            prev_buckets, prev_zero = self._prev_hists.get(
                recorder.name, ({}, 0)
            )
            window.merge(histogram_window(hist, prev_buckets, prev_zero))
            self._prev_hists[recorder.name] = (dict(hist.buckets), hist.zero)
        out: Dict = {"count": cumulative.count, "window_count": window.count}
        if cumulative.count:
            out["p50_us"] = cumulative.percentile(50)
            out["p99_us"] = cumulative.percentile(99)
        if window.count:
            out["window_p99_us"] = window.percentile(99)
            self.registry.timeseries(
                f"sample.{direction}.window_p99_us"
            ).record(self.sim.now, out["window_p99_us"])
        return out
