"""Hydra: resilient and highly available remote memory (FAST 2022).

A complete reproduction of the Hydra system on a discrete-event substrate:

* :mod:`repro.sim` — discrete-event simulation kernel (time in µs);
* :mod:`repro.ec` — GF(2^8) Reed-Solomon codes and the per-page codec;
* :mod:`repro.net` — RDMA network model (RC queue pairs, one-sided verbs);
* :mod:`repro.cluster` — machines, slabs, SSDs, failure injection;
* :mod:`repro.core` — Hydra's Resilience Manager & Resource Monitor;
* :mod:`repro.baselines` — SSD backup, replication, compression, naive RS;
* :mod:`repro.vmm` / :mod:`repro.vfs` — the two disaggregation front-ends;
* :mod:`repro.workloads` — TPC-C/VoltDB-, Memcached-, PageRank-, fio-like
  workload models;
* :mod:`repro.analysis` — availability, load-balancing, and TCO models;
* :mod:`repro.harness` — experiment composition used by ``benchmarks/``.

Quickstart::

    from repro.harness import build_hydra_cluster

    cluster = build_hydra_cluster(machines=8, k=4, r=2, seed=7)
    pool = cluster.remote_memory(client=0)
    pool.write(0, b"\\x2a" * 4096)
    assert pool.read(0) == b"\\x2a" * 4096
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
