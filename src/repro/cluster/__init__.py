"""Cluster substrate: machines, slabs, SSDs, failure injection."""

from .builder import Cluster
from .disk import SSD, SSDConfig
from .failures import CorruptionInjector, FailureInjector, LocalMemoryPressure
from .machine import Machine
from .memory import PhantomSplit, Slab, SlabState, corrupt_payload, payloads_equal
from .slabtable import RackTopology, SlabTable, place_ranges

__all__ = [
    "Cluster",
    "SSD",
    "SSDConfig",
    "CorruptionInjector",
    "FailureInjector",
    "LocalMemoryPressure",
    "Machine",
    "PhantomSplit",
    "RackTopology",
    "Slab",
    "SlabState",
    "SlabTable",
    "corrupt_payload",
    "payloads_equal",
    "place_ranges",
]
