"""Slab storage and split payloads.

A *slab* is the coarse-grained memory unit the Resource Monitor exposes to
remote Resilience Managers (§3.2): a fixed-size region that stores one
split per page for some address range. Slabs move through a small state
machine::

    FREE -> MAPPED -> (UNAVAILABLE -> REGENERATING -> MAPPED) | FREE

Payloads come in two flavours:

* **real** — numpy uint8 arrays carrying actual erasure-coded bytes; used
  by correctness tests and small experiments;
* **phantom** — :class:`PhantomSplit` version/corruption markers; used by
  cluster-scale runs where carrying real bytes through millions of events
  would dominate runtime without changing any simulated timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

import numpy as np

from ..sim import RandomSource

__all__ = ["SlabState", "Slab", "PhantomSplit", "corrupt_payload", "payloads_equal"]


class SlabState(Enum):
    """Lifecycle of a slab on its host machine."""

    FREE = "free"  # allocated, not yet mapped by any Resilience Manager
    MAPPED = "mapped"  # serving splits for a remote address range
    UNAVAILABLE = "unavailable"  # marked failed/evicted by the RM
    REGENERATING = "regenerating"  # being rebuilt; writes disabled


@dataclass
class PhantomSplit:
    """A split payload without bytes: just enough state for resilience logic.

    ``version`` is the page write version the split encodes; a decode is
    valid only if the k splits it uses agree on the version. ``corrupt``
    models bit corruption the codec would detect via consistency checks.
    """

    version: int
    corrupt: bool = False


@dataclass
class Slab:
    """One slab of remote memory on a host machine.

    ``pages`` maps page index (within the owning address range) to that
    page's split payload at this slab's split position.
    """

    slab_id: int
    host_id: int
    size_bytes: int
    state: SlabState = SlabState.FREE
    owner_id: Optional[int] = None  # Resilience Manager (machine) id
    split_index: Optional[int] = None  # which of the k+r positions we hold
    range_id: Optional[int] = None  # owning address range
    writes_disabled: bool = False
    pages: Dict[int, object] = field(default_factory=dict)
    access_count: int = 0
    last_access_us: float = 0.0

    def map_to(self, owner_id: int, range_id: int, split_index: int) -> None:
        """Bind this slab to split position ``split_index`` of a range."""
        if self.state != SlabState.FREE:
            raise ValueError(f"slab {self.slab_id} is {self.state}, cannot map")
        self.state = SlabState.MAPPED
        self.owner_id = owner_id
        self.range_id = range_id
        self.split_index = split_index

    def unmap(self) -> None:
        """Return the slab to the free pool, dropping its contents."""
        self.state = SlabState.FREE
        self.owner_id = None
        self.range_id = None
        self.split_index = None
        self.writes_disabled = False
        self.pages.clear()
        self.access_count = 0

    def mark_unavailable(self) -> None:
        self.state = SlabState.UNAVAILABLE

    def begin_regeneration(self) -> None:
        """Writes are disabled during rebuild; reads may continue (§4.4)."""
        self.state = SlabState.REGENERATING
        self.writes_disabled = True

    def finish_regeneration(self) -> None:
        self.state = SlabState.MAPPED
        self.writes_disabled = False

    @property
    def touched_pages(self) -> int:
        return len(self.pages)


def corrupt_payload(payload: object, rng: RandomSource) -> object:
    """Return a corrupted copy of a split payload (real or phantom)."""
    if isinstance(payload, PhantomSplit):
        return PhantomSplit(version=payload.version, corrupt=True)
    if isinstance(payload, np.ndarray):
        corrupted = payload.copy()
        index = rng.randint(0, len(corrupted) - 1)
        # XOR with a random non-zero byte guarantees the value changes.
        corrupted[index] ^= rng.randint(1, 255)
        return corrupted
    raise TypeError(f"cannot corrupt payload of type {type(payload).__name__}")


def payloads_equal(a: object, b: object) -> bool:
    """Equality across both payload flavours."""
    if isinstance(a, PhantomSplit) and isinstance(b, PhantomSplit):
        return a.version == b.version and a.corrupt == b.corrupt
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return bool(np.array_equal(a, b))
    return False
