"""Local SSD model — the backing device of the disk-backup baseline.

Captures the three properties §2.2 blames for the baseline's collapse:

* access latency two orders of magnitude above RDMA;
* a bounded queue: once outstanding requests exceed the device queue
  depth, callers wait in FIFO order;
* bounded bandwidth: sustained bursts drain at the device write rate, so a
  prolonged burst ties request latency to the disk (scenario 4, Fig 2d).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Event, Resource, Simulator

__all__ = ["SSDConfig", "SSD"]


@dataclass
class SSDConfig:
    """Device parameters for a datacenter-class NVMe/SATA SSD.

    Defaults give ~80 µs reads and ~30 µs writes at low load with
    ~1 GB/s of sustained write bandwidth.
    """

    read_latency_us: float = 80.0
    write_latency_us: float = 30.0
    bandwidth_bytes_per_us: float = 1000.0  # ~1 GB/s
    queue_depth: int = 32


class SSD:
    """A queued block device with distinct read/write access latencies."""

    def __init__(self, sim: Simulator, config: SSDConfig = None):
        self.sim = sim
        self.config = config or SSDConfig()
        self._channels = Resource(sim, capacity=self.config.queue_depth)
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def read(self, size_bytes: int) -> Event:
        """Start a read; the returned event succeeds at completion."""
        self.reads += 1
        self.bytes_read += size_bytes
        return self.sim.process(
            self._access(size_bytes, self.config.read_latency_us), name="ssd-read"
        )

    def write(self, size_bytes: int) -> Event:
        """Start a write; the returned event succeeds at completion."""
        self.writes += 1
        self.bytes_written += size_bytes
        return self.sim.process(
            self._access(size_bytes, self.config.write_latency_us), name="ssd-write"
        )

    @property
    def queue_length(self) -> int:
        """Requests waiting behind the device queue (saturation signal)."""
        return self._channels.queue_length

    def _access(self, size_bytes: int, access_latency_us: float):
        request = self._channels.request()
        yield request
        try:
            transfer = size_bytes / self.config.bandwidth_bytes_per_us
            yield self.sim.timeout(access_latency_us + transfer)
        finally:
            self._channels.release()
