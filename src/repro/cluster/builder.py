"""Cluster assembly: simulator + fabric + machines in one call."""

from __future__ import annotations

from typing import List, Optional

from ..net import NetworkConfig, RdmaFabric
from ..obs import Observability
from ..sim import RandomSource, Simulator
from .disk import SSDConfig
from .machine import Machine

__all__ = ["Cluster"]


class Cluster:
    """A simulated cluster: one fabric plus ``n`` machines.

    Parameters
    ----------
    machines:
        Cluster size. The paper's testbed is 50.
    racks:
        Number of failure domains. Defaults to one rack per machine, the
        most permissive placement (every machine its own failure domain);
        pass fewer to exercise rack-aware placement constraints.
    memory_per_machine:
        DRAM per machine (paper: 64 GB).
    with_ssd:
        Attach a local SSD to every machine (the disk-backup baseline
        requires one).
    """

    def __init__(
        self,
        machines: int = 8,
        racks: Optional[int] = None,
        memory_per_machine: int = 64 << 30,
        network: Optional[NetworkConfig] = None,
        with_ssd: bool = False,
        ssd_config: Optional[SSDConfig] = None,
        seed: int = 0,
        sim: Optional[Simulator] = None,
    ):
        if machines < 1:
            raise ValueError(f"cluster needs at least one machine, got {machines}")
        self.sim = sim or Simulator()
        self.rng = RandomSource(seed, "cluster")
        self.obs = Observability.create(self.sim, seed=seed)
        self.fabric = RdmaFabric(
            self.sim, config=network, rng=self.rng.child("fabric"), obs=self.obs
        )
        rack_count = machines if racks is None else racks
        if rack_count < 1:
            raise ValueError(f"need at least one rack, got {racks}")
        disk = ssd_config or (SSDConfig() if with_ssd else None)
        self.machines: List[Machine] = [
            Machine(
                self.sim,
                self.fabric,
                machine_id=i,
                rack=i % rack_count,
                total_memory_bytes=memory_per_machine,
                ssd_config=disk,
            )
            for i in range(machines)
        ]

    def machine(self, machine_id: int) -> Machine:
        return self.machines[machine_id]

    def alive_machines(self) -> List[Machine]:
        return [m for m in self.machines if m.alive]

    def peers_of(self, machine_id: int) -> List[Machine]:
        """All alive machines except ``machine_id``."""
        return [m for m in self.machines if m.alive and m.id != machine_id]

    def metadata_peers(self, machine_id: int, count: int) -> List[int]:
        """The ``count`` machine ids after ``machine_id`` in id order
        (wrapping) — the deterministic replica set for that machine's RM
        metadata domain (repro.core.rm_replica). Liveness is intentionally
        ignored: the set is fixed at deployment time, like a static
        placement of registered memory regions."""
        ids = sorted(m.id for m in self.machines)
        index = ids.index(machine_id)
        ring = [ids[(index + off) % len(ids)] for off in range(1, len(ids))]
        return ring[: max(count, 0)]

    def __len__(self) -> int:
        return len(self.machines)
