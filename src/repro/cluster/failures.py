"""Uncertainty injectors — the four scenarios of §2.2.

1. *Remote failures / evictions* — :class:`FailureInjector` crashes (and
   optionally reboots) machines at scheduled times.
2. *Memory corruption* — :class:`CorruptionInjector` flips bytes inside
   stored splits (or marks phantom splits corrupt).
3. *Background network load* — lives in :mod:`repro.net.flows`.
4. *Request bursts* — a workload-side knob (see the workload generators).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import RandomSource, Simulator
from .machine import Machine
from .memory import SlabState, corrupt_payload

__all__ = ["FailureInjector", "CorruptionInjector", "LocalMemoryPressure"]


class FailureInjector:
    """Schedules machine crashes (and optional recoveries)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.crashed: List[int] = []

    def crash_at(
        self, machine: Machine, at_us: float, recover_after_us: Optional[float] = None
    ) -> None:
        """Crash ``machine`` at ``at_us``; reboot after ``recover_after_us``."""
        if at_us < self.sim.now:
            raise ValueError(f"crash time {at_us} is in the past")

        def run():
            yield self.sim.timeout(at_us - self.sim.now)
            machine.fail()
            if machine.id not in self.crashed:
                self.crashed.append(machine.id)
            if recover_after_us is not None:
                yield self.sim.timeout(recover_after_us)
                machine.recover()

        self.sim.process(run(), name=f"crash:{machine.id}")

    def crash_fraction_at(
        self, machines: List[Machine], fraction: float, at_us: float, rng: RandomSource
    ) -> List[Machine]:
        """Correlated failure: crash a random ``fraction`` of ``machines``
        simultaneously (§5.2's power-outage scenario). Returns the victims.

        Victims are sampled from the machines still alive — sampling an
        already-crashed machine would silently shrink the outage below
        ``fraction``. The fraction is measured against the full ``machines``
        list (the outage size the scenario asks for), capped by how many
        candidates remain.
        """
        candidates = [m for m in machines if m.alive]
        count = min(len(candidates), max(1, int(round(len(machines) * fraction))))
        victims = rng.sample(candidates, count)
        for victim in victims:
            self.crash_at(victim, at_us)
        return victims


class CorruptionInjector:
    """Corrupts stored splits on a victim machine.

    Corruption is applied to the *stored payloads*, so a subsequent remote
    read returns the corrupted split and the Resilience Manager's
    consistency check (real mode: RS verification; phantom mode: corrupt
    flag) must catch it.
    """

    def __init__(self, sim: Simulator, rng: RandomSource):
        self.sim = sim
        self.rng = rng
        self.corrupted_splits = 0

    def corrupt_machine(
        self, machine: Machine, fraction: float = 1.0, at_us: Optional[float] = None
    ) -> None:
        """Corrupt ``fraction`` of every mapped slab's pages on ``machine``.

        When ``at_us`` is given the corruption is scheduled; otherwise it is
        applied immediately.
        """
        if at_us is None:
            self._apply(machine, fraction)
            return
        if at_us < self.sim.now:
            raise ValueError(f"corruption time {at_us} is in the past")

        def run():
            yield self.sim.timeout(at_us - self.sim.now)
            self._apply(machine, fraction)

        self.sim.process(run(), name=f"corrupt:{machine.id}")

    def _apply(self, machine: Machine, fraction: float) -> None:
        for slab in machine.hosted_slabs.values():
            if slab.state != SlabState.MAPPED:
                continue
            for page_id in list(slab.pages):
                if self.rng.random() < fraction:
                    slab.pages[page_id] = corrupt_payload(slab.pages[page_id], self.rng)
                    self.corrupted_splits += 1


class LocalMemoryPressure:
    """Drives a machine's local-app memory up/down over time.

    Used to exercise the Resource Monitor's headroom logic (Fig 7): rising
    local pressure must trigger slab eviction; falling pressure must
    trigger proactive allocation.
    """

    def __init__(self, sim: Simulator, machine: Machine):
        self.sim = sim
        self.machine = machine

    def ramp(self, target_bytes: int, over_us: float, steps: int = 20) -> None:
        """Linearly ramp local usage to ``target_bytes`` over ``over_us``."""
        start = self.machine.local_app_bytes
        if steps < 1:
            raise ValueError("steps must be >= 1")

        def run():
            for step in range(1, steps + 1):
                yield self.sim.timeout(over_us / steps)
                value = start + (target_bytes - start) * step // steps
                self.machine.set_local_app_bytes(int(value))

        self.sim.process(run(), name=f"pressure:{self.machine.id}")
