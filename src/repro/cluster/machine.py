"""The machine model: DRAM, hosted slabs, NIC, liveness, control inbox.

Each machine plays two roles simultaneously, exactly as in Figure 3 of the
paper: its *Resilience Manager* (client side, :mod:`repro.core`) consumes
remote memory, while its *Resource Monitor* (server side) donates local
memory as slabs. This class is the substrate both sit on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..net import Nic, RdmaFabric, RemoteAccessError
from ..sim import Simulator, Store, TimeSeries
from .disk import SSD, SSDConfig
from .memory import Slab, SlabState

# States a one-sided verb may touch; module constant so the split access
# fast path skips rebuilding the tuple per verb.
_ACCESSIBLE_STATES = (SlabState.MAPPED, SlabState.REGENERATING)

__all__ = ["Machine"]


class Machine:
    """A cluster machine hosting local apps and donated memory slabs.

    Parameters
    ----------
    sim, fabric:
        The simulation kernel and the RDMA fabric to join.
    machine_id:
        Unique integer id.
    rack:
        Failure-domain label; slabs of one address range must land on
        distinct racks (§3.1, footnote on failure domains).
    total_memory_bytes:
        DRAM capacity.
    ssd_config:
        When given, the machine has a local SSD (needed by the disk-backup
        baseline).
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: RdmaFabric,
        machine_id: int,
        rack: int = 0,
        total_memory_bytes: int = 64 << 30,
        ssd_config: Optional[SSDConfig] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.id = machine_id
        self.rack = rack
        self.total_memory_bytes = total_memory_bytes
        self.nic = Nic(fabric.config, machine_id=machine_id, metrics=fabric.obs.metrics)
        self.alive = True
        self.ssd: Optional[SSD] = SSD(sim, ssd_config) if ssd_config else None

        self.local_app_bytes = 0  # DRAM consumed by this machine's own apps
        self.hosted_slabs: Dict[int, Slab] = {}
        self._slab_counter = 0
        # Incremental DRAM accounting: slab sizes are immutable after
        # allocate_slab, so the hosted total only moves on allocate,
        # release and crash — keeping free_bytes O(1) instead of a
        # sum() over every hosted slab on each control-loop tick.
        self._slab_bytes = 0

        self.inbox: Store = Store(sim)
        self._message_handlers: List[Callable[[int, Any], None]] = []
        self._failure_listeners: List[Callable[[int], None]] = []
        self.usage_series = TimeSeries(name=f"machine{machine_id}.memory")

        fabric.register(self)

    # -- memory accounting -------------------------------------------------
    @property
    def slab_bytes(self) -> int:
        """DRAM held by hosted slabs (any state — FREE slabs are allocated)."""
        return self._slab_bytes

    @property
    def used_bytes(self) -> int:
        return self.local_app_bytes + self.slab_bytes

    @property
    def free_bytes(self) -> int:
        return self.total_memory_bytes - self.used_bytes

    @property
    def memory_utilization(self) -> float:
        return self.used_bytes / self.total_memory_bytes

    def set_local_app_bytes(self, value: int) -> None:
        """Adjust the local-application working set (load driver hook)."""
        if value < 0:
            raise ValueError(f"negative local app memory: {value}")
        self.local_app_bytes = value

    # -- slab hosting --------------------------------------------------------
    def allocate_slab(self, size_bytes: int) -> Slab:
        """Carve a FREE slab out of local DRAM.

        Raises :class:`MemoryError` when the machine lacks headroom — the
        Resource Monitor is responsible for never over-allocating.
        """
        if size_bytes > self.free_bytes:
            raise MemoryError(
                f"machine {self.id}: cannot allocate {size_bytes} B slab "
                f"({self.free_bytes} B free)"
            )
        self._slab_counter += 1
        slab_id = self.id * 1_000_000 + self._slab_counter
        slab = Slab(slab_id=slab_id, host_id=self.id, size_bytes=size_bytes)
        self.hosted_slabs[slab_id] = slab
        self._slab_bytes += size_bytes
        return slab

    def release_slab(self, slab_id: int) -> None:
        """Drop a hosted slab entirely, returning its DRAM."""
        slab = self.hosted_slabs.pop(slab_id, None)
        if slab is not None:
            self._slab_bytes -= slab.size_bytes

    def free_slabs(self) -> List[Slab]:
        return [s for s in self.hosted_slabs.values() if s.state == SlabState.FREE]

    def mapped_slabs(self) -> List[Slab]:
        return [s for s in self.hosted_slabs.values() if s.state == SlabState.MAPPED]

    # -- one-sided access targets (called by the fabric at completion) ------
    def read_split(self, slab_id: int, page_id: int) -> Any:
        """Serve a one-sided READ. Missing pages read as ``None`` (garbage
        in real hardware); a missing/unmapped slab is an access fault."""
        slab = self.hosted_slabs.get(slab_id)
        if slab is None or slab.state not in _ACCESSIBLE_STATES:
            raise self._access_fault(slab_id, slab)
        slab.access_count += 1
        slab.last_access_us = self.sim.now
        return slab.pages.get(page_id)

    def write_split(self, slab_id: int, page_id: int, payload: Any) -> None:
        """Apply a one-sided WRITE. Writes to a regenerating slab fault
        (its memory region is revoked while being rebuilt, §4.4)."""
        slab = self.hosted_slabs.get(slab_id)
        if slab is None or slab.state not in _ACCESSIBLE_STATES:
            raise self._access_fault(slab_id, slab)
        if slab.writes_disabled:
            raise RemoteAccessError(
                f"slab {slab_id} on machine {self.id} has writes disabled"
            )
        slab.access_count += 1
        slab.last_access_us = self.sim.now
        slab.pages[page_id] = payload

    def _slab_for_access(self, slab_id: int) -> Slab:
        slab = self.hosted_slabs.get(slab_id)
        if slab is None or slab.state not in _ACCESSIBLE_STATES:
            raise self._access_fault(slab_id, slab)
        return slab

    def _access_fault(self, slab_id: int, slab: Optional[Slab]) -> RemoteAccessError:
        if slab is None:
            return RemoteAccessError(f"no slab {slab_id} on machine {self.id}")
        return RemoteAccessError(
            f"slab {slab_id} on machine {self.id} is {slab.state.value}"
        )

    # -- control-plane messages ------------------------------------------------
    def deliver_message(self, src_id: int, message: Any) -> None:
        """SEND/RECV delivery point: dispatch to handlers or queue."""
        if self._message_handlers:
            for handler in self._message_handlers:
                handler(src_id, message)
        else:
            self.inbox.put((src_id, message))

    def add_message_handler(self, handler: Callable[[int, Any], None]) -> None:
        self._message_handlers.append(handler)

    # -- liveness ------------------------------------------------------------
    def fail(self) -> None:
        """Crash: DRAM contents (all hosted slabs) are lost; QPs break."""
        if not self.alive:
            return
        self.alive = False
        self.hosted_slabs.clear()
        self._slab_bytes = 0
        self.fabric.on_machine_failed(self.id)
        for listener in self._failure_listeners:
            listener(self.id)

    def recover(self) -> None:
        """Reboot with empty memory."""
        if self.alive:
            return
        self.alive = True
        self.local_app_bytes = 0
        self.fabric.on_machine_recovered(self.id)

    def on_failure(self, listener: Callable[[int], None]) -> None:
        self._failure_listeners.append(listener)

    def record_usage(self) -> None:
        """Append current memory usage to the machine's time series."""
        self.usage_series.record(self.sim.now, self.used_bytes)

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (
            f"<Machine {self.id} rack={self.rack} {state} "
            f"used={self.used_bytes >> 20}MiB/{self.total_memory_bytes >> 20}MiB>"
        )
