"""Packed slab metadata and rack topology for rack-scale experiments.

The object model in :mod:`repro.cluster.machine` carries each slab as a
:class:`~repro.cluster.memory.Slab` dataclass plus dict entries — around
half a KiB of Python overhead per slab, fine at the 50-machine fixture
but ruinous at 1000 machines with per-(range, position) rows and
millions of resident page counters. This module keeps the same metadata
as parallel numpy arrays (struct of arrays):

====================  ========  =====================================
field                 dtype     meaning
====================  ========  =====================================
``state``             int8      FREE / MAPPED / UNAVAILABLE / REGEN
``host``              int32     hosting machine id
``owner``             int32     Resilience Manager machine id (-1 free)
``range_id``          int32     owning address range (-1 free)
``position``          int8      split index within the range's k+r
``pages``             int32     resident page-splits in this slab
====================  ========  =====================================

18 bytes per slab row, plus two int32 per-machine counters (free-slab
count, total hosted slabs). A 1000-machine sweep with 10 000 mapped
slabs and a million logical pages costs well under a megabyte of
metadata — the worked budget table lives in docs/SCALING.md.

:class:`RackTopology` maps machine ids to racks and pods and assigns
one of three interconnect latency classes to any (src, dst) pair:
intra-rack, inter-rack (same pod), inter-pod.

Everything here is deterministic: the placement helpers take an
explicit ``numpy.random.Generator`` and touch no global state, which is
what lets ``repro bench`` shard the rack-scale sweep across workers
byte-identically (tests/test_rack_scale.py pins this).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = [
    "STATE_FREE",
    "STATE_MAPPED",
    "STATE_UNAVAILABLE",
    "STATE_REGENERATING",
    "RackTopology",
    "SlabTable",
    "place_ranges",
]

STATE_FREE = 0
STATE_MAPPED = 1
STATE_UNAVAILABLE = 2
STATE_REGENERATING = 3


class RackTopology:
    """Machine → rack → pod layout with interconnect latency classes.

    Parameters mirror a folded-Clos datacenter: ``machines_per_rack``
    machines behind one ToR switch, ``racks_per_pod`` racks behind one
    aggregation layer. Latency classes (one-way, microseconds) follow
    the usual ordering intra-rack < inter-rack < inter-pod.
    """

    def __init__(
        self,
        machines: int,
        machines_per_rack: int = 40,
        racks_per_pod: int = 8,
        intra_rack_us: float = 1.2,
        inter_rack_us: float = 2.4,
        inter_pod_us: float = 4.8,
    ):
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        if machines_per_rack < 1 or racks_per_pod < 1:
            raise ValueError("machines_per_rack and racks_per_pod must be >= 1")
        self.machines = machines
        self.machines_per_rack = machines_per_rack
        self.racks_per_pod = racks_per_pod
        ids = np.arange(machines, dtype=np.int64)
        self.rack = (ids // machines_per_rack).astype(np.int32)
        self.pod = (self.rack // racks_per_pod).astype(np.int32)
        self.racks = int(self.rack[-1]) + 1
        self.pods = int(self.pod[-1]) + 1
        self.class_latency_us = np.array(
            [intra_rack_us, inter_rack_us, inter_pod_us], dtype=np.float64
        )

    def latency_class(self, src, dst) -> np.ndarray:
        """0 = same rack, 1 = same pod, 2 = cross-pod (vectorized)."""
        src = np.asarray(src)
        dst = np.asarray(dst)
        same_rack = self.rack[src] == self.rack[dst]
        same_pod = self.pod[src] == self.pod[dst]
        return np.where(same_rack, 0, np.where(same_pod, 1, 2)).astype(np.int8)

    def latency_us(self, src, dst) -> np.ndarray:
        return self.class_latency_us[self.latency_class(src, dst)]

    def machines_in_rack(self, rack: int) -> np.ndarray:
        return np.flatnonzero(self.rack == rack)

    @property
    def nbytes(self) -> int:
        return int(self.rack.nbytes + self.pod.nbytes + self.class_latency_us.nbytes)

    def __repr__(self) -> str:
        return (
            f"<RackTopology {self.machines} machines, {self.racks} racks, "
            f"{self.pods} pods>"
        )


class SlabTable:
    """Struct-of-arrays slab metadata for ``machines`` hosts.

    Rows are append-only (``allocate``) and move through the same state
    machine as :class:`~repro.cluster.memory.Slab`; crashed hosts leave
    UNAVAILABLE tombstone rows, matching the object model where a dead
    machine's slabs are gone but ranges still reference the positions.
    """

    BYTES_PER_SLAB = 18  # int8 + int32 + int32 + int32 + int8 + int32

    def __init__(self, machines: int, capacity: int = 1024):
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.machines = machines
        self._n = 0
        self.state = np.zeros(capacity, dtype=np.int8)
        self.host = np.full(capacity, -1, dtype=np.int32)
        self.owner = np.full(capacity, -1, dtype=np.int32)
        self.range_id = np.full(capacity, -1, dtype=np.int32)
        self.position = np.full(capacity, -1, dtype=np.int8)
        self.pages = np.zeros(capacity, dtype=np.int32)
        self.free_per_host = np.zeros(machines, dtype=np.int32)
        self.slabs_per_host = np.zeros(machines, dtype=np.int32)

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        return len(self.state)

    def _grow(self, need: int) -> None:
        new_cap = max(need, 2 * self.capacity)
        for name in ("state", "host", "owner", "range_id", "position", "pages"):
            old = getattr(self, name)
            grown = np.full(new_cap, -1, dtype=old.dtype)
            if name in ("state", "pages"):
                grown[:] = 0
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def allocate(self, hosts) -> np.ndarray:
        """Append FREE slab rows on ``hosts``; returns the new slab ids."""
        hosts = np.atleast_1d(np.asarray(hosts, dtype=np.int32))
        if hosts.size and (hosts.min() < 0 or hosts.max() >= self.machines):
            raise ValueError(f"host id out of range for {self.machines} machines")
        n = hosts.size
        if self._n + n > self.capacity:
            self._grow(self._n + n)
        ids = np.arange(self._n, self._n + n, dtype=np.int64)
        self.state[ids] = STATE_FREE
        self.host[ids] = hosts
        self._n += n
        np.add.at(self.free_per_host, hosts, 1)
        np.add.at(self.slabs_per_host, hosts, 1)
        return ids

    def map(self, ids, owners, ranges, positions) -> None:
        """FREE → MAPPED for a batch of slab ids."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        if not np.all(self.state[ids] == STATE_FREE):
            raise ValueError("map() requires FREE slabs")
        self.state[ids] = STATE_MAPPED
        self.owner[ids] = owners
        self.range_id[ids] = ranges
        self.position[ids] = positions
        np.add.at(self.free_per_host, self.host[ids], -1)

    def unmap(self, ids) -> None:
        """Back to the FREE pool, dropping contents (page counts)."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        self.state[ids] = STATE_FREE
        self.owner[ids] = -1
        self.range_id[ids] = -1
        self.position[ids] = -1
        self.pages[ids] = 0
        np.add.at(self.free_per_host, self.host[ids], 1)

    def fail_host(self, host: int) -> np.ndarray:
        """Crash ``host``: every hosted slab becomes an UNAVAILABLE
        tombstone (contents lost). Returns the affected slab ids."""
        live = self.state[: self._n]
        ids = np.flatnonzero(
            (self.host[: self._n] == host) & (live != STATE_UNAVAILABLE)
        ).astype(np.int64)
        freed = int(np.count_nonzero(self.state[ids] == STATE_FREE))
        self.state[ids] = STATE_UNAVAILABLE
        self.pages[ids] = 0
        self.free_per_host[host] -= freed
        self.slabs_per_host[host] = 0
        return ids

    # -- bulk views ------------------------------------------------------
    def mapped_ids(self) -> np.ndarray:
        return np.flatnonzero(self.state[: self._n] == STATE_MAPPED).astype(np.int64)

    def range_host_matrix(self, n_ranges: int, n_splits: int) -> np.ndarray:
        """(range, position) → host id matrix (-1 where unmapped)."""
        matrix = np.full((n_ranges, n_splits), -1, dtype=np.int32)
        ids = self.mapped_ids()
        matrix[self.range_id[ids], self.position[ids]] = self.host[ids]
        return matrix

    def mapped_load(self) -> np.ndarray:
        """Mapped-slab count per machine (the load-balance metric)."""
        ids = self.mapped_ids()
        return np.bincount(self.host[ids], minlength=self.machines).astype(np.int64)

    def page_load(self) -> np.ndarray:
        """Resident page-splits per machine."""
        ids = self.mapped_ids()
        return np.bincount(
            self.host[ids], weights=self.pages[ids], minlength=self.machines
        ).astype(np.int64)

    # -- memory model ----------------------------------------------------
    def field_nbytes(self) -> Dict[str, int]:
        fields = ("state", "host", "owner", "range_id", "position", "pages")
        out = {name: int(getattr(self, name).nbytes) for name in fields}
        out["free_per_host"] = int(self.free_per_host.nbytes)
        out["slabs_per_host"] = int(self.slabs_per_host.nbytes)
        return out

    @property
    def nbytes(self) -> int:
        return sum(self.field_nbytes().values())

    def __repr__(self) -> str:
        return (
            f"<SlabTable {self._n}/{self.capacity} slabs on "
            f"{self.machines} machines, {self.nbytes} B>"
        )


def place_ranges(
    table: SlabTable,
    topology: RackTopology,
    owners,
    n_splits: int,
    choices: int,
    rng: np.random.Generator,
    policy: str = "hydra",
    rack_distinct: Optional[bool] = None,
) -> np.ndarray:
    """Place one range per entry of ``owners``: allocate + map ``n_splits``
    slabs each and return the (ranges × n_splits) host matrix.

    Policies (§5.3 / Figure 9, generalized to k+r splits per range):

    * ``"random"`` — ``n_splits`` distinct machines uniformly at random;
    * ``"dchoices"`` — sample ``choices`` machines, keep the least-loaded
      ``n_splits`` (power of d choices, no rack awareness);
    * ``"hydra"`` — batch placement: sample ``choices`` machines, walk
      them least-loaded-first and keep at most one per rack (CodingSets-
      style failure-domain spreading); falls back to ignoring the rack
      constraint only when the sample cannot cover ``n_splits`` racks.

    Load is the mapped-slab count maintained incrementally in ``table``.
    Ties break by machine id via a stable argsort, so placement is a
    pure function of (table state, owners, rng stream).
    """
    owners = np.asarray(owners, dtype=np.int32)
    machines = table.machines
    if machines < n_splits:
        raise ValueError(f"{machines} machines cannot host {n_splits} splits")
    if policy not in ("random", "dchoices", "hydra"):
        raise ValueError(f"unknown placement policy {policy!r}")
    if rack_distinct is None:
        rack_distinct = policy == "hydra"
    choices = min(max(choices, n_splits), machines)
    load = np.zeros(machines, dtype=np.int64)
    ids = table.mapped_ids()
    if ids.size:
        np.add.at(load, table.host[ids], 1)
    hosts = np.empty((owners.size, n_splits), dtype=np.int32)
    positions = np.arange(n_splits, dtype=np.int8)
    for range_id, owner in enumerate(owners):
        if policy == "random":
            picked = rng.choice(machines, size=n_splits, replace=False)
        else:
            sampled = rng.choice(machines, size=choices, replace=False)
            order = np.argsort(load[sampled], kind="stable")
            candidates = sampled[order]
            if rack_distinct:
                racks = topology.rack[candidates]
                _unique, first = np.unique(racks, return_index=True)
                keep = candidates[np.sort(first)][:n_splits]
                if keep.size < n_splits:
                    # The sample spans too few racks; top up with the
                    # least-loaded remaining candidates regardless of rack.
                    rest = candidates[~np.isin(candidates, keep)]
                    keep = np.concatenate([keep, rest[: n_splits - keep.size]])
                picked = keep
            else:
                picked = candidates[:n_splits]
        picked = np.asarray(picked, dtype=np.int32)
        load[picked] += 1
        hosts[range_id] = picked
        slab_ids = table.allocate(picked)
        table.map(slab_ids, int(owner), range_id, positions)
    return hosts
