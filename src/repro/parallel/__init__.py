"""Deterministic multi-core experiment runner (``repro.parallel``).

:mod:`repro.parallel.runner` is the generic shard scheduler;
:mod:`repro.parallel.bench` drives the ``benchmarks/`` figure suite
through it (``python -m repro bench -j N``). The perf suite
(:mod:`repro.harness.perf`) and chaos soaks (:mod:`repro.chaos.soak`)
build their shards on the same runner, so all three CLIs share one
sharding/determinism contract (documented in ``docs/PERFORMANCE.md``).
"""

from .runner import (
    ShardFailure,
    ShardResult,
    ShardTask,
    merge_histogram_dicts,
    require_ok,
    resolve_jobs,
    run_shards,
)

__all__ = [
    "ShardFailure",
    "ShardResult",
    "ShardTask",
    "merge_histogram_dicts",
    "require_ok",
    "resolve_jobs",
    "run_shards",
]
