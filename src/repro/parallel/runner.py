"""Deterministic process-pool experiment runner.

Every experiment layer in this repository — the perf-regression suite,
chaos campaigns, the ``benchmarks/`` figure suite — decomposes into
*shards*: independent units of work that are fully determined by their
inputs (a seed, a config, a benchmark name). :func:`run_shards` fans
shards out across worker processes while preserving the one property all
of those layers lean on as their correctness oracle: **parallel output is
byte-identical to serial output at the same seed**.

The contract, enforced rather than assumed:

* **Shard independence** — a shard function is a top-level callable whose
  result depends only on its arguments. Shards derive any randomness from
  seeds passed in explicitly (e.g. per-shard
  :class:`~repro.sim.RandomSource` streams); the runner never injects
  wall-clock time, worker identity, or completion order into a shard.
* **Deterministic merge** — results are returned ordered by shard *key*
  (a sortable tuple), never by completion time. Two runs with different
  ``jobs`` values return the same sequence of values.
* **Worker-crash detection with bounded retry** — a worker that dies
  without reporting (OOM kill, segfault, ``os._exit``) is distinguished
  from a shard that *raised*: crashes are environmental and retried on a
  fresh worker up to ``max_retries`` times; exceptions are deterministic
  (the retry would reproduce them) and recorded as failures immediately.
* **Heartbeat via the metrics registry** — per-shard progress lines are
  derived from ``<name>.shards_done`` / ``<name>.shards_failed`` /
  ``<name>.worker_retries`` counters on the caller's
  :class:`~repro.obs.MetricsRegistry`, so an embedding harness can watch
  a run the same way it watches a simulation.

At ``jobs=1`` with ``serial_in_process=True`` (the default) shards run in
the calling process in key order — exactly the pre-parallel code path —
which is what the determinism gate compares parallel runs against.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..obs import MetricsRegistry

__all__ = [
    "ShardTask",
    "ShardResult",
    "ShardFailure",
    "run_shards",
    "resolve_jobs",
    "merge_histogram_dicts",
]


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalize a ``-j`` value: ``None``/``0``/``"auto"`` -> core count.

    Uses the scheduler affinity mask where available (containers often
    restrict it below ``os.cpu_count()``).
    """
    if jobs in (None, 0, "auto"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
    return count


@dataclass(frozen=True)
class ShardTask:
    """One independent unit of work.

    ``key`` is a sortable tuple that names the shard — (figure, scenario,
    seed), (index, benchmark name), (campaign seed,) — and fixes its
    position in the merged output. ``fn`` must be a *top-level* function
    (picklable for worker dispatch) whose result is picklable too.
    """

    key: Tuple
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""

    def display(self) -> str:
        return self.label or "/".join(str(part) for part in self.key)


@dataclass
class ShardResult:
    """Outcome of one shard, success or not."""

    key: Tuple
    label: str
    value: Any = None
    error: Optional[str] = None  # formatted traceback when the shard raised
    crashed: bool = False  # worker died without reporting, retries exhausted
    exitcode: Optional[int] = None  # last worker exit code on a crash
    attempts: int = 1
    seconds: float = 0.0  # wall seconds of the final attempt

    @property
    def ok(self) -> bool:
        return self.error is None and not self.crashed

    def failure_summary(self) -> str:
        if self.crashed:
            return (
                f"{self.label}: worker crashed (exit {self.exitcode}) "
                f"after {self.attempts} attempts"
            )
        if self.error is not None:
            last = self.error.strip().splitlines()[-1]
            return f"{self.label}: {last}"
        return f"{self.label}: ok"


class ShardFailure(RuntimeError):
    """Raised by callers that require every shard to succeed."""

    def __init__(self, message: str, results: Sequence[ShardResult] = ()):
        super().__init__(message)
        self.results = list(results)


def _worker_entry(fn, args, kwargs, conn) -> None:
    """Worker process body: run the shard, report exactly one message."""
    try:
        value = fn(*args, **kwargs)
        payload = ("ok", value)
    except BaseException:
        payload = ("err", traceback.format_exc())
    try:
        conn.send(payload)
    finally:
        conn.close()


def _default_context():
    """Prefer fork (cheap, Linux default); fall back to spawn elsewhere.

    Shard determinism never depends on the start method: results are a
    function of shard arguments alone.
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def run_shards(
    tasks: Sequence[ShardTask],
    jobs: Union[int, str, None] = 1,
    *,
    max_retries: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[str], None]] = None,
    name: str = "parallel",
    serial_in_process: bool = True,
    mp_context=None,
) -> List[ShardResult]:
    """Run every task; return :class:`ShardResult` s **ordered by key**.

    ``jobs`` caps concurrent worker processes (``"auto"`` = core count).
    With ``jobs == 1`` and ``serial_in_process`` the shards run in the
    calling process — the reference serial execution. Otherwise each
    attempt gets its own worker process; a worker that exits without
    reporting is retried on a fresh worker up to ``max_retries`` times
    (``<name>.worker_retries`` counts these), while a shard that raises
    is recorded as failed immediately — exceptions are deterministic, so
    a retry would only reproduce them.

    The function itself never raises for shard failures; inspect
    ``result.ok`` (or use a caller-side helper) so partial campaigns can
    still be merged and reported.
    """
    ordered = sorted(tasks, key=lambda task: task.key)
    keys = [task.key for task in ordered]
    if len(set(keys)) != len(keys):
        raise ValueError("shard keys must be unique (deterministic merge)")
    jobs = resolve_jobs(jobs)
    registry = metrics if metrics is not None else MetricsRegistry()
    done_counter = registry.counter(f"{name}.shards_done")
    failed_counter = registry.counter(f"{name}.shards_failed")
    retry_counter = registry.counter(f"{name}.worker_retries")
    emit = progress if progress is not None else (lambda line: None)

    total = len(ordered)
    results: Dict[Tuple, ShardResult] = {}

    def note(result: ShardResult) -> None:
        results[result.key] = result
        (done_counter if result.ok else failed_counter).incr()
        finished = done_counter.value + failed_counter.value
        status = "ok"
        if result.crashed:
            status = "CRASHED"
        elif result.error is not None:
            status = "FAILED"
        emit(
            f"[{name} {finished}/{total}] {result.label} {status} "
            f"in {result.seconds:.2f}s (done={done_counter.value} "
            f"failed={failed_counter.value} retries={retry_counter.value})"
        )

    if jobs == 1 and serial_in_process:
        for task in ordered:
            start = time.perf_counter()
            try:
                value = task.fn(*task.args, **task.kwargs)
                result = ShardResult(
                    task.key,
                    task.display(),
                    value=value,
                    seconds=time.perf_counter() - start,
                )
            except Exception:
                result = ShardResult(
                    task.key,
                    task.display(),
                    error=traceback.format_exc(),
                    seconds=time.perf_counter() - start,
                )
            note(result)
        return [results[key] for key in keys]

    ctx = mp_context or _default_context()
    pending: List[ShardTask] = list(reversed(ordered))  # pop() -> key order
    active: Dict[Any, tuple] = {}  # conn -> (task, proc, attempt, started)

    def launch(task: ShardTask, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_entry,
            args=(task.fn, task.args, task.kwargs, child_conn),
            name=f"{name}:{task.display()}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds the only write end now
        active[parent_conn] = (task, proc, attempt, time.perf_counter())

    try:
        while pending or active:
            while pending and len(active) < jobs:
                launch(pending.pop(), attempt=1)
            # A connection becomes ready on a result message or on EOF
            # (worker death) — never on partial data, so recv() below
            # returns promptly in both cases.
            ready = multiprocessing.connection.wait(list(active))
            for conn in ready:
                task, proc, attempt, started = active.pop(conn)
                message = None
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                finally:
                    conn.close()
                proc.join()
                seconds = time.perf_counter() - started
                if message is None:
                    if attempt <= max_retries:
                        retry_counter.incr()
                        emit(
                            f"[{name}] {task.display()} worker crashed "
                            f"(exit {proc.exitcode}); retrying on a fresh "
                            f"worker ({attempt}/{max_retries})"
                        )
                        launch(task, attempt + 1)
                        continue
                    note(
                        ShardResult(
                            task.key,
                            task.display(),
                            crashed=True,
                            exitcode=proc.exitcode,
                            attempts=attempt,
                            seconds=seconds,
                        )
                    )
                elif message[0] == "ok":
                    note(
                        ShardResult(
                            task.key,
                            task.display(),
                            value=message[1],
                            attempts=attempt,
                            seconds=seconds,
                        )
                    )
                else:
                    note(
                        ShardResult(
                            task.key,
                            task.display(),
                            error=message[1],
                            attempts=attempt,
                            seconds=seconds,
                        )
                    )
    finally:
        for conn, (task, proc, _attempt, _started) in active.items():
            proc.terminate()
            proc.join()
            conn.close()

    return [results[key] for key in keys]


def merge_histogram_dicts(payloads: Sequence[dict]):
    """Merge :meth:`~repro.sim.trace.Histogram.to_dict` payloads from
    independent shards into one :class:`~repro.sim.trace.Histogram`.

    Bucket counts add, so the result is independent of shard completion
    order — merged buckets and percentiles are byte-identical to what a
    serial run recording every sample into one histogram would produce.
    This is the aggregation step soaks and perf shards use to report
    cluster-wide latency distributions under ``-j N``.
    """
    from ..sim.trace import Histogram

    if not payloads:
        raise ValueError("merge_histogram_dicts needs at least one payload")
    merged = Histogram.from_dict(payloads[0])
    for payload in payloads[1:]:
        merged.merge(Histogram.from_dict(payload))
    return merged


def require_ok(results: Sequence[ShardResult], what: str) -> List[ShardResult]:
    """Raise :class:`ShardFailure` listing every failed shard, else pass
    the results through."""
    failed = [result for result in results if not result.ok]
    if failed:
        details = "; ".join(result.failure_summary() for result in failed)
        raise ShardFailure(
            f"{len(failed)}/{len(results)} {what} shards failed: {details}",
            results=results,
        )
    return list(results)
