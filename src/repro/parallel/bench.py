"""Sharded figure-suite driver — ``python -m repro bench [-j N]``.

The ``benchmarks/`` directory regenerates every paper table and figure as
a pytest module (``bench_fig01_tradeoff.py`` …). Serially that is minutes
of independent work, so this module shards it across worker processes
through :mod:`repro.parallel.runner`: one shard per benchmark module,
except Figures 17-18 and Table 3, which share the session-scoped
50-machine cluster experiment and therefore travel as a single
``cluster`` shard (splitting them would rebuild the experiment three
times).

Each shard runs ``pytest`` *in its worker process* with stdout captured,
then reports the exit code plus a SHA-256 per report file it wrote
(``benchmarks/conftest.py`` records them in ``WRITTEN_REPORTS``). The
report hashes are the determinism contract: every figure is seeded
simulated-time output, so two runs at any ``-j`` produce byte-identical
``benchmarks/results/*.txt`` — pinned by
``tests/test_parallel_determinism.py`` via :func:`bench_report_digest`.

Shards always execute in worker processes, even at ``-j 1``: running
``pytest.main`` inside the calling process would collide with an outer
pytest session (the determinism gate test drives this module from one).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .runner import ShardTask, resolve_jobs, run_shards

__all__ = [
    "BENCH_SCHEMA",
    "CLUSTER_FILES",
    "discover_shards",
    "run_bench_shard",
    "run_bench",
    "bench_report_digest",
    "main",
]

BENCH_SCHEMA = "hydra-bench/1"

# These three share the session-scoped ``cluster_runs`` fixture (one
# 50-machine experiment per backend); grouping them into one shard runs
# that experiment once instead of three times.
CLUSTER_FILES = (
    "bench_fig17_cluster_load.py",
    "bench_fig18_cluster_completion.py",
    "bench_tab03_cluster_latency.py",
)


def discover_shards(
    bench_dir: str = "benchmarks", substring: Optional[str] = None
) -> List[Tuple[str, Tuple[str, ...]]]:
    """``(shard_name, file_paths)`` for every figure/table module.

    One shard per ``bench_*.py`` in ``bench_dir`` (top level only — the
    wall-clock suite under ``benchmarks/perf/`` belongs to ``repro
    perf``), with :data:`CLUSTER_FILES` merged into a ``cluster`` shard.
    Sorted by shard name so the decomposition — and therefore the merged
    output order — is deterministic. ``substring`` filters shard names.
    """
    try:
        entries = sorted(os.listdir(bench_dir))
    except FileNotFoundError:
        raise FileNotFoundError(
            f"benchmark directory {bench_dir!r} not found "
            "(run from the repository root or pass --dir)"
        ) from None
    shards: Dict[str, List[str]] = {}
    for entry in entries:
        if not (entry.startswith("bench_") and entry.endswith(".py")):
            continue
        path = os.path.join(bench_dir, entry)
        if entry in CLUSTER_FILES:
            shards.setdefault("cluster", []).append(path)
        else:
            shards[entry[len("bench_"):-len(".py")]] = [path]
    picked = sorted(
        (name, tuple(files))
        for name, files in shards.items()
        if substring is None or substring in name
    )
    return picked


def run_bench_shard(
    name: str, files: Sequence[str], results_dir: Optional[str] = None
) -> dict:
    """One shard: an in-process pytest run over ``files``, summarized.

    Top-level (picklable) for worker dispatch; must only run in a worker
    process (see module docstring). ``results_dir`` redirects
    ``write_report`` output for this shard's process via the
    ``REPRO_BENCH_RESULTS_DIR`` env var.
    """
    import contextlib
    import io

    import pytest

    if results_dir:
        os.environ["REPRO_BENCH_RESULTS_DIR"] = os.path.abspath(results_dir)
    # A forked worker inherits the parent's modules; the benchmark
    # conftest must be imported fresh so WRITTEN_REPORTS and RESULTS_DIR
    # belong to this shard alone.
    sys.modules.pop("conftest", None)
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf), contextlib.redirect_stderr(buf):
        code = pytest.main(["-q", "-p", "no:cacheprovider", *files])
    conftest = sys.modules.get("conftest")
    written = sorted(getattr(conftest, "WRITTEN_REPORTS", ()))
    output = buf.getvalue()
    lines = [line for line in output.strip().splitlines() if line.strip()]
    return {
        "name": name,
        "files": [os.path.basename(path) for path in files],
        "exit_code": int(code),
        "reports": [{"name": n, "sha256": digest} for n, digest in written],
        "output": output[-4000:] if code else (lines[-1] if lines else ""),
    }


def run_bench(
    bench_dir: str = "benchmarks",
    jobs: Union[int, str, None] = 1,
    *,
    substring: Optional[str] = None,
    results_dir: Optional[str] = None,
    metrics=None,
    progress=None,
) -> dict:
    """Run the figure suite sharded across ``jobs`` workers.

    Returns the bench document: per-shard exit codes, report hashes and
    wall seconds, plus ``serial_seconds_sum`` (the sum of shard wall
    times ≈ a serial run) against ``wall_seconds`` for the realized
    speedup. A shard whose worker crashes after retries or whose pytest
    exits non-zero makes the document ``ok: false`` — never silently
    dropped.
    """
    jobs = resolve_jobs(jobs)
    discovered = discover_shards(bench_dir, substring)
    if not discovered:
        raise ValueError(
            f"no benchmark shards match {substring!r} in {bench_dir!r}"
        )
    tasks = [
        ShardTask(
            key=(name,),
            fn=run_bench_shard,
            args=(name, files),
            kwargs={"results_dir": results_dir},
            label=f"bench:{name}",
        )
        for name, files in discovered
    ]
    t0 = time.perf_counter()
    results = run_shards(
        tasks,
        jobs=jobs,
        name="bench",
        metrics=metrics,
        progress=progress,
        serial_in_process=False,
    )
    wall = time.perf_counter() - t0

    shards = []
    for result in results:
        if result.ok:
            entry = dict(result.value)
        else:
            entry = {
                "name": result.key[0],
                "files": [],
                "exit_code": None,
                "reports": [],
                "output": result.failure_summary(),
            }
        entry["seconds"] = round(result.seconds, 3)
        shards.append(entry)
    serial_sum = sum(entry["seconds"] for entry in shards)
    return {
        "schema": BENCH_SCHEMA,
        "bench_dir": bench_dir,
        "jobs": jobs,
        "host_cpus": resolve_jobs("auto"),
        "shards": shards,
        "ok": all(entry["exit_code"] == 0 for entry in shards),
        "wall_seconds": round(wall, 3),
        "serial_seconds_sum": round(serial_sum, 3),
        "speedup_vs_serial_sum": round(serial_sum / wall, 2) if wall else None,
    }


def bench_report_digest(doc: dict) -> str:
    """Canonical JSON of every deterministic field of a bench document.

    Report-file hashes and exit codes per shard, nothing wall-clock —
    byte-identical across hosts and ``-j`` values for a given tree.
    """
    digest = {
        "schema": doc["schema"],
        "shards": [
            {
                "name": entry["name"],
                "files": entry["files"],
                "exit_code": entry["exit_code"],
                "reports": entry["reports"],
            }
            for entry in doc["shards"]
        ],
    }
    return json.dumps(digest, indent=2, sort_keys=True) + "\n"


def _record(path: str, doc: dict) -> None:
    """Merge the bench speedup summary into ``BENCH_perf.json``."""
    existing: dict = {}
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
    existing["bench_parallel"] = {
        "jobs": doc["jobs"],
        "host_cpus": doc["host_cpus"],
        "wall_seconds": doc["wall_seconds"],
        "serial_seconds_sum": doc["serial_seconds_sum"],
        "speedup_vs_serial_sum": doc["speedup_vs_serial_sum"],
        "shard_seconds": {
            entry["name"]: entry["seconds"] for entry in doc["shards"]
        },
    }
    with open(path, "w") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    """CLI: ``python -m repro bench [-j N|auto] [--filter SUBSTR] [--list]
    [--dir DIR] [--results-dir DIR] [--record PATH]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Regenerate the paper's figures/tables (benchmarks/) "
        "sharded across worker processes.",
    )
    parser.add_argument(
        "-j", "--jobs", default="1", metavar="N",
        help="worker processes (number or 'auto'; default 1)",
    )
    parser.add_argument(
        "--filter", metavar="SUBSTR",
        help="only run shards whose name contains SUBSTR",
    )
    parser.add_argument(
        "--list", action="store_true", help="list shards and exit"
    )
    parser.add_argument(
        "--dir", default="benchmarks", help="benchmark directory"
    )
    parser.add_argument(
        "--results-dir", metavar="DIR",
        help="redirect benchmarks/results output to DIR",
    )
    parser.add_argument(
        "--record", metavar="PATH",
        help="merge the speedup summary into PATH (BENCH_perf.json)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs == "auto" else int(args.jobs)

    shards = discover_shards(args.dir, args.filter)
    if args.list:
        for name, files in shards:
            print(f"{name:<24} {' '.join(os.path.basename(f) for f in files)}")
        return 0
    if not shards:
        print(f"no benchmark shards match {args.filter!r}", file=sys.stderr)
        return 2

    print(
        f"bench: {len(shards)} shard(s) from {args.dir}/ at -j {jobs}"
    )
    doc = run_bench(
        args.dir,
        jobs,
        substring=args.filter,
        results_dir=args.results_dir,
        progress=print,
    )
    print()
    for entry in doc["shards"]:
        status = "ok" if entry["exit_code"] == 0 else "FAILED"
        print(
            f"  {entry['name']:<24} {status:<6} {entry['seconds']:7.2f}s  "
            f"{len(entry['reports'])} report(s)"
        )
        if entry["exit_code"] != 0:
            print("    " + entry["output"].replace("\n", "\n    "))
    print(
        f"\nwall {doc['wall_seconds']}s vs serial-sum "
        f"{doc['serial_seconds_sum']}s -> speedup "
        f"{doc['speedup_vs_serial_sum']}x at -j {doc['jobs']} "
        f"({doc['host_cpus']} host cpus)"
    )
    if args.record:
        _record(args.record, doc)
        print(f"recorded bench_parallel in {args.record}")
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
