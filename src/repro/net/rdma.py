"""RDMA fabric model: NICs, reliable-connection queue pairs, verbs.

What is modeled (and why it matters to Hydra):

* **One-sided READ/WRITE** verbs that touch remote memory without remote
  CPU involvement — the data path (§6: "all RDMA operations use reliable
  connection and one-sided RDMA verbs").
* **Two-sided SEND/RECV** for control messages (Resource Monitor traffic).
* **Strict per-QP ordering**: completions on a queue pair occur in post
  order. This is the property §4.3 leans on for read-after-write safety
  ("read requests will arrive at the same RDMA dispatch queue after write
  requests; hence, read requests will not be served with stale data").
* **Disconnect notification**: when a machine dies or the network
  partitions, pending verbs fail after a detection delay and the local
  side is notified — Hydra's failure-handling entry point.
* **Congestion and stragglers**: background flows inflate latency on the
  NICs they cross; a small per-op probability draws a Pareto-tailed
  straggler delay (§2.2 'tail at scale').

Remote memory itself lives on machine objects (see
:class:`repro.cluster.Machine`), which expose ``read_split``/``write_split``
callbacks the fabric invokes *at completion time*, preserving ordering
semantics.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from math import exp, log
from random import NV_MAGICCONST
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import Observability, Span
from ..sim import Event, RandomSource, Simulator
from ..sim.engine import _PENDING, _PROCESSED, _TRIGGERED

# Verb completions are the sim's highest-volume Event allocation;
# building them via __new__ + direct slot stores skips the type.__call__
# and __init__ frames on every post. Same fields, same initial state.
_EVENT_NEW = Event.__new__
from .config import NetworkConfig

__all__ = [
    "RDMAError",
    "RDMADisconnect",
    "RemoteAccessError",
    "Nic",
    "QueuePair",
    "RdmaFabric",
]


class RDMAError(Exception):
    """Base class for fabric errors."""


class RDMADisconnect(RDMAError):
    """The reliable connection broke (machine failure / partition)."""

    def __init__(self, message: str, machine_id: Optional[int] = None):
        super().__init__(message)
        self.machine_id = machine_id


class RemoteAccessError(RDMAError):
    """The remote access target (slab/page) was invalid or unavailable."""


class Nic:
    """Per-machine NIC state: line rate, congestion level, traffic totals.

    Byte counters feed the §7.4 network-overhead comparison (Hydra's
    291 Mbps vs replication's >1 Gbps per machine in the paper). They
    live in the cluster's :class:`~repro.obs.MetricsRegistry` under
    ``nic.<machine>.{bytes_tx,bytes_rx,ops_tx}`` so harness reports read
    them by name; the legacy ``bytes_sent``/``bytes_received``/
    ``ops_sent`` attributes remain as read-only views.
    """

    def __init__(self, config: NetworkConfig, machine_id=None, metrics=None):
        self.config = config
        self.machine_id = machine_id
        self.background_flows = 0
        if metrics is None:
            from ..obs import MetricsRegistry

            metrics = MetricsRegistry()
        label = "nic" if machine_id is None else f"nic.{machine_id}"
        self._bytes_tx = metrics.counter(f"{label}.bytes_tx")
        self._bytes_rx = metrics.counter(f"{label}.bytes_rx")
        self._ops_tx = metrics.counter(f"{label}.ops_tx")

    def count_tx(self, nbytes: int) -> None:
        self._bytes_tx.value += nbytes
        self._ops_tx.value += 1

    def count_rx(self, nbytes: int) -> None:
        self._bytes_rx.value += nbytes

    def inflation(self) -> float:
        """Latency multiplier from active background flows on this NIC."""
        return 1.0 + self.config.congestion_per_flow * self.background_flows

    @property
    def bytes_sent(self) -> int:
        return self._bytes_tx.value

    @property
    def bytes_received(self) -> int:
        return self._bytes_rx.value

    @property
    def ops_sent(self) -> int:
        return self._ops_tx.value

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received


class QueuePair:
    """A reliable connection between two machines.

    One QP per (initiator, target) machine pair, matching the paper's "one
    connection for each active remote machine". All verbs posted on a QP
    complete in post order.
    """

    __slots__ = (
        "fabric",
        "sim",
        "config",
        "local_id",
        "remote_id",
        "rng",
        "connected",
        "_last_completion",
        "_pending",
        "_disconnect_listeners",
        "_event_name",
        "_local_nic",
        "_remote_nic",
        "_reach_epoch",
        "_reach_ok",
        "_tx_bytes",
        "_tx_ops",
        "_rx_bytes",
        "_draw_normal",
        "_draw_uniform",
        "_draw_pareto",
        "_call_later",
        "_bytes_per_us",
        "_base_latency_us",
        "_send_recv_overhead_us",
        "_jitter_sigma",
        "_det_latency",
        "_det_hot",
    )

    def __init__(
        self,
        fabric: "RdmaFabric",
        local_id: int,
        remote_id: int,
        rng: RandomSource,
    ):
        self.fabric = fabric
        self.sim = fabric.sim
        self.config = fabric.config
        self.local_id = local_id
        self.remote_id = remote_id
        self.rng = rng
        self.connected = True
        self._last_completion = 0.0
        self._pending: List[Event] = []
        self._disconnect_listeners: List[Callable[[int], None]] = []
        # Hot-path caches: the event name is constant per QP, and the
        # endpoint NICs are stable once machines are registered (filled
        # lazily on the first post). The latency draws bind the underlying
        # stream's methods directly — same draws, two fewer wrapper frames
        # per verb.
        self._event_name = f"rdma:{local_id}->{remote_id}"
        self._local_nic: Optional[Nic] = None
        self._remote_nic: Optional[Nic] = None
        # Reachability cache, invalidated by the fabric's topology epoch:
        # every alive flip routes through on_machine_failed/_recovered and
        # every partition change through partition()/heal(), all of which
        # bump the epoch — so a matching epoch means the cached answer is
        # exact and the hot path pays one int compare instead of dict
        # lookups and alive checks per verb.
        self._reach_epoch = -1
        self._reach_ok = False
        # Raw counter objects for inline traffic accounting (bound on the
        # first post, together with the NICs).
        self._tx_bytes = self._tx_ops = self._rx_bytes = None
        # lognormvariate(mu, sigma) is exactly exp(normalvariate(mu, sigma))
        # in CPython; binding the inner draw saves a frame per posted verb
        # while consuming the identical RNG stream.
        self._draw_normal = rng._rng.normalvariate
        self._draw_uniform = rng._rng.random
        self._draw_pareto = rng._rng.paretovariate
        # Bound once: every posted verb schedules exactly one completion.
        self._call_later = fabric.sim.call_later
        # Wire constants, hoisted off the per-verb path. These fields are
        # construction-time fixed; straggler_prob stays a live read because
        # benchmarks toggle it mid-run. Same divisor as transfer_us, so the
        # float results are bit-identical.
        self._bytes_per_us = self.config.bytes_per_us
        self._base_latency_us = self.config.base_latency_us
        self._send_recv_overhead_us = self.config.send_recv_overhead_us
        self._jitter_sigma = self.config.jitter_sigma
        # Deterministic latency cache: the pre-jitter, pre-congestion
        # component depends only on (size, sidedness) and the hoisted wire
        # constants, so each distinct verb size computes it exactly once.
        # Values are (latency, transfer) — transfer feeds the congestion
        # term, which stays live because background flows change mid-run.
        self._det_latency: Dict[Tuple[int, bool], Tuple[float, float]] = {}
        # One-slot cache in front of `_det_latency`: split-sized one-sided
        # verbs dominate, so the common post skips the tuple-key dict probe.
        self._det_hot: Optional[Tuple[int, bool, float, float]] = None

    # -- public verbs ------------------------------------------------------
    def post_read(
        self,
        size_bytes: int,
        fetch: Callable[[], Any],
        span: Optional[Span] = None,
    ) -> Event:
        """One-sided RDMA READ.

        ``fetch`` is invoked at completion time against the remote memory
        and its return value becomes the event's value. Raising
        :class:`RemoteAccessError` from ``fetch`` fails the event.
        ``span`` (a sampled request span) parents a per-verb trace span
        carrying the queueing/wire/congestion latency breakdown.
        """
        return self._post(size_bytes, action=fetch, one_sided=True, span=span, kind="read")

    def post_write(
        self,
        size_bytes: int,
        apply: Callable[[], Any],
        span: Optional[Span] = None,
    ) -> Event:
        """One-sided RDMA WRITE; ``apply`` mutates remote memory at
        completion time. Event value is ``apply``'s return (usually None)."""
        return self._post(size_bytes, action=apply, one_sided=True, span=span, kind="write")

    def post_send(
        self, message: Any, size_bytes: int = 64, span: Optional[Span] = None
    ) -> Event:
        """Two-sided SEND: delivers ``message`` to the remote inbox."""

        def deliver():
            self.fabric.deliver_message(self.remote_id, self.local_id, message)
            return None

        return self._post(size_bytes, action=deliver, one_sided=False, span=span, kind="send")

    # -- notifications -----------------------------------------------------
    def on_disconnect(self, callback: Callable[[int], None]) -> None:
        """Register a connection-manager callback (receives remote id)."""
        self._disconnect_listeners.append(callback)

    def disconnect(self, reason: str) -> None:
        """Tear the connection down: fail all pending verbs after the
        detection delay and notify listeners."""
        if not self.connected:
            return
        self.connected = False
        pending, self._pending = self._pending, []
        detect = self.config.failure_detect_us

        def fail_pending():
            for event in pending:
                if not event.triggered:
                    event.fail(RDMADisconnect(reason, machine_id=self.remote_id))
            for listener in self._disconnect_listeners:
                listener(self.remote_id)

        self.sim.call_later(detect, fail_pending)

    def reconnect(self) -> None:
        """Re-establish the RC after the remote recovers."""
        self.connected = True
        self._last_completion = self.sim.now

    # -- internals -----------------------------------------------------------
    def _post(
        self,
        size_bytes: int,
        action: Callable[[], Any],
        one_sided: bool,
        span: Optional[Span] = None,
        kind: str = "op",
    ) -> Event:
        event = _EVENT_NEW(Event)
        event.sim = self.sim
        event.callbacks = []
        event._state = _PENDING
        event._value = None
        event._ok = True
        event.name = self._event_name
        verb_span: Optional[Span] = None
        if span is not None:
            verb_span = span.child(
                f"rdma.{kind}",
                cat="verb",
                machine_id=self.local_id,
                tags={"target": self.remote_id, "bytes": size_bytes},
            )

            def _finish_verb(done: Event, _s=verb_span) -> None:
                if not done._ok:
                    _s.set_tag("error", type(done._value).__name__)
                _s.finish()

            event.callbacks.append(_finish_verb)
        if self.connected:
            fabric = self.fabric
            epoch = fabric._topology_epoch
            if self._reach_epoch != epoch:
                self._reach_ok = fabric.reachable(self.local_id, self.remote_id)
                self._reach_epoch = epoch
            reachable = self._reach_ok
        else:
            reachable = False
        if not reachable:
            # Immediately broken: fail after the RC retry timeout.
            def fail_later():
                if not event.triggered:
                    event.fail(
                        RDMADisconnect(
                            f"machine {self.remote_id} unreachable",
                            machine_id=self.remote_id,
                        )
                    )

            self.sim.call_later(self.config.failure_detect_us, fail_later)
            return event

        # Traffic accounting (a verb moves size_bytes across both NICs),
        # bumping the raw counters inline — same totals as
        # ``count_tx``/``count_rx`` without two method calls per verb.
        tx_bytes = self._tx_bytes
        if tx_bytes is None:
            local_nic = self._local_nic = self.fabric.nic(self.local_id)
            remote_nic = self._remote_nic = self.fabric.nic(self.remote_id)
            tx_bytes = self._tx_bytes = local_nic._bytes_tx
            self._tx_ops = local_nic._ops_tx
            self._rx_bytes = remote_nic._bytes_rx
        tx_bytes.value += size_bytes
        self._tx_ops.value += 1
        self._rx_bytes.value += size_bytes

        if verb_span is None:
            # Inlined :meth:`_op_latency` — identical float-op sequence and
            # RNG draw order, minus the method calls on the untraced path.
            hot = self._det_hot
            if hot is not None and hot[0] == size_bytes and hot[1] == one_sided:
                latency = hot[2]
                transfer = hot[3]
            else:
                cached = self._det_latency.get((size_bytes, one_sided))
                if cached is None:
                    transfer = size_bytes / self._bytes_per_us
                    latency = self._base_latency_us + transfer
                    if not one_sided:
                        latency += self._send_recv_overhead_us
                    self._det_latency[(size_bytes, one_sided)] = (latency, transfer)
                else:
                    latency, transfer = cached
                self._det_hot = (size_bytes, one_sided, latency, transfer)
            local_nic = self._local_nic
            remote_nic = self._remote_nic
            if local_nic.background_flows or remote_nic.background_flows:
                inflation = max(local_nic.inflation(), remote_nic.inflation())
                if inflation > 1.0:
                    latency += (inflation - 1.0) * (
                        transfer + 0.2 * self._base_latency_us
                    )
            # Kinderman–Monahan normal draw, inlined from
            # random.normalvariate — same generator, same draw order, same
            # float ops, so the jitter sequence is bit-identical.
            draw = self._draw_uniform
            while True:
                u1 = draw()
                u2 = 1.0 - draw()
                z = NV_MAGICCONST * (u1 - 0.5) / u2
                if z * z / 4.0 <= -log(u2):
                    break
            latency *= exp(0.0 + z * self._jitter_sigma)
            cfg = self.config
            if cfg.straggler_prob > 0 and draw() < cfg.straggler_prob:
                latency += cfg.straggler_scale_us * self._draw_pareto(
                    cfg.straggler_shape
                )
            now = self.sim.now
            completion = max(now + latency, self._last_completion)
        else:
            latency, parts = self._op_latency_parts(size_bytes, one_sided)
            now = self.sim.now
            completion = max(now + latency, self._last_completion)
            # Queueing = delay imposed by per-QP completion ordering.
            parts["queue"] = completion - (now + latency)
            for part, value in parts.items():
                verb_span.set_tag(f"{part}_us", round(value, 4))
        self._last_completion = completion
        self._pending.append(event)

        def complete():
            if event._state >= _TRIGGERED:
                return  # already failed by a disconnect
            # Per-QP ordering means completions run in post order, so the
            # event is almost always at the head of the pending deque.
            pending = self._pending
            if pending and pending[0] is event:
                del pending[0]
            else:
                try:
                    pending.remove(event)
                except ValueError:
                    # The QP disconnected before this op's completion time:
                    # the data never arrived; fail_pending will fail it.
                    return
            try:
                result = action()
            except RemoteAccessError as exc:
                event.fail(exc)
                return
            # Fused delivery: this callable *is* the scheduled completion
            # entry, so trigger and process the ack in place rather than
            # pushing a second same-timestamp queue entry for the dispatch
            # loop. Same-time ordering is unchanged: every other queue
            # entry already holds an earlier sequence number either way.
            event._ok = True
            event._value = result
            event._state = _PROCESSED
            callbacks = event.callbacks
            event.callbacks = []
            for callback in callbacks:
                callback(event)

        # Inlined sim.call_later(completion - now, complete): the same
        # `now + (completion - now)` float dance and one (when, seq, fn)
        # record, minus the call — verbs are the engine's highest-volume
        # scheduling source. Works in both scheduler modes (heap mode keeps
        # _limit at -inf, routing every insert to the overflow heap).
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        when = now + (completion - now)
        if when < sim._limit:
            idx = int(when * sim._inv)
            if idx < sim._cursor:
                sim._cursor = idx
                sim._limit = (idx + sim._nbuckets) * sim._width
            sim._buckets[idx & sim._mask].append((when, seq, complete))
            sim._count += 1
        else:
            _heappush(sim._queue, (when, seq, complete))
        return event

    def _op_latency(self, size_bytes: int, one_sided: bool) -> float:
        """Latency of one verb — scalar hot path, no parts bookkeeping.

        Float-op sequence and RNG draw order are bit-identical to
        :meth:`_op_latency_parts`; only the decomposition dict and the
        intermediate part variables are skipped.
        """
        cfg = self.config
        cached = self._det_latency.get((size_bytes, one_sided))
        if cached is None:
            transfer = size_bytes / self._bytes_per_us
            latency = self._base_latency_us + transfer
            if not one_sided:
                latency += self._send_recv_overhead_us
            self._det_latency[(size_bytes, one_sided)] = (latency, transfer)
        else:
            latency, transfer = cached
        # Congestion from background flows on either endpoint NIC. Queuing
        # delay grows with the *bytes* this op must push through the busy
        # link (plus a small fixed queue-entry cost) — small split-sized
        # messages interleave past bulk flows far better than whole pages,
        # which is part of why Hydra divides pages (§4.1).
        local_nic = self._local_nic
        if local_nic is None:
            local_nic = self._local_nic = self.fabric.nic(self.local_id)
            self._remote_nic = self.fabric.nic(self.remote_id)
        remote_nic = self._remote_nic
        if local_nic.background_flows or remote_nic.background_flows:
            inflation = max(local_nic.inflation(), remote_nic.inflation())
            if inflation > 1.0:
                latency += (inflation - 1.0) * (transfer + 0.2 * self._base_latency_us)
        # Ordinary fabric jitter.
        latency *= exp(self._draw_normal(0.0, self._jitter_sigma))
        # Rare straggler events with a heavy tail.
        if cfg.straggler_prob > 0 and self._draw_uniform() < cfg.straggler_prob:
            latency += cfg.straggler_scale_us * self._draw_pareto(cfg.straggler_shape)
        return latency

    def _op_latency_parts(self, size_bytes: int, one_sided: bool):
        """Latency of one verb plus the additive wire/congestion/jitter/
        straggler decomposition — only computed for traced verbs."""
        cfg = self.config
        transfer = size_bytes / self._bytes_per_us
        wire = self._base_latency_us + transfer
        if not one_sided:
            wire += self._send_recv_overhead_us
        latency = wire
        local_nic = self._local_nic
        if local_nic is None:
            local_nic = self._local_nic = self.fabric.nic(self.local_id)
            self._remote_nic = self.fabric.nic(self.remote_id)
        remote_nic = self._remote_nic
        congestion = 0.0
        if local_nic.background_flows or remote_nic.background_flows:
            inflation = max(local_nic.inflation(), remote_nic.inflation())
            if inflation > 1.0:
                congestion = (inflation - 1.0) * (transfer + 0.2 * self._base_latency_us)
                latency += congestion
        jittered = latency * exp(self._draw_normal(0.0, self._jitter_sigma))
        jitter = jittered - latency
        latency = jittered
        straggler = 0.0
        if cfg.straggler_prob > 0 and self._draw_uniform() < cfg.straggler_prob:
            straggler = cfg.straggler_scale_us * self._draw_pareto(cfg.straggler_shape)
            latency += straggler
        return latency, {
            "wire": wire,
            "congestion": congestion,
            "jitter": jitter,
            "straggler": straggler,
        }


class RdmaFabric:
    """The cluster interconnect: machine registry, QPs, partitions.

    Machines register themselves with :meth:`register`; they must provide
    ``id`` (int), ``nic`` (:class:`Nic`), ``alive`` (bool) and an
    ``deliver_message(src_id, message)`` method for SEND/RECV delivery.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[NetworkConfig] = None,
        rng: Optional[RandomSource] = None,
        obs: Optional[Observability] = None,
    ):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.rng = rng or RandomSource(0, "fabric")
        self.obs = obs or Observability.create(sim)
        self._machines: Dict[int, Any] = {}
        self._qps: Dict[Tuple[int, int], QueuePair] = {}
        self._partitions: set = set()
        # Bumped on every event that can change pairwise reachability
        # (machine death/recovery, partition/heal, registration); QPs key
        # their cached ``reachable`` answer on it.
        self._topology_epoch = 0

    # -- registry ------------------------------------------------------------
    def register(self, machine: Any) -> None:
        if machine.id in self._machines:
            raise ValueError(f"machine id {machine.id} already registered")
        self._machines[machine.id] = machine
        self._topology_epoch += 1

    def machine(self, machine_id: int) -> Any:
        return self._machines[machine_id]

    def machine_ids(self) -> List[int]:
        return sorted(self._machines)

    def nic(self, machine_id: int) -> Nic:
        return self._machines[machine_id].nic

    # -- connections -----------------------------------------------------------
    def qp(self, local_id: int, remote_id: int) -> QueuePair:
        """The (cached) queue pair from ``local_id`` to ``remote_id``."""
        if local_id == remote_id:
            raise ValueError("no loopback queue pairs: local_id == remote_id")
        key = (local_id, remote_id)
        pair = self._qps.get(key)
        if pair is None:
            pair = QueuePair(self, local_id, remote_id, self.rng.child(f"qp{key}"))
            self._qps[key] = pair
        return pair

    def queue_depth(self, machine_id: int) -> int:
        """Outstanding verbs posted by ``machine_id`` across all of its
        QPs — the dashboard's per-machine queue-depth gauge. Walks only
        existing QPs (no allocation), so samplers can call it every
        ControlPeriod without perturbing the run."""
        return sum(
            len(pair._pending)
            for (local_id, _remote_id), pair in self._qps.items()
            if local_id == machine_id
        )

    def reachable(self, a: int, b: int) -> bool:
        """True when both endpoints are alive and not partitioned."""
        if not self._machines[a].alive or not self._machines[b].alive:
            return False
        if not self._partitions:
            return True
        return frozenset((a, b)) not in self._partitions

    # -- failure / partition events -----------------------------------------
    def on_machine_failed(self, machine_id: int) -> None:
        """Disconnect every QP touching the failed machine."""
        self._topology_epoch += 1
        for (local, remote), pair in self._qps.items():
            if remote == machine_id:
                pair.disconnect(f"machine {machine_id} failed")
            elif local == machine_id:
                pair.disconnect(f"local machine {machine_id} failed")

    def on_machine_recovered(self, machine_id: int) -> None:
        self._topology_epoch += 1
        for (local, remote), pair in self._qps.items():
            if machine_id in (local, remote) and self.reachable(local, remote):
                pair.reconnect()

    def partition(self, a: int, b: int) -> None:
        """Make machines ``a`` and ``b`` mutually unreachable."""
        self._topology_epoch += 1
        self._partitions.add(frozenset((a, b)))
        for key in ((a, b), (b, a)):
            pair = self._qps.get(key)
            if pair is not None:
                pair.disconnect(f"network partition between {a} and {b}")

    def heal(self, a: int, b: int) -> None:
        self._topology_epoch += 1
        self._partitions.discard(frozenset((a, b)))
        for key in ((a, b), (b, a)):
            pair = self._qps.get(key)
            if pair is not None and self.reachable(*key):
                pair.reconnect()

    # -- messaging ------------------------------------------------------------
    def deliver_message(self, dst_id: int, src_id: int, message: Any) -> None:
        machine = self._machines.get(dst_id)
        if machine is None or not machine.alive:
            raise RemoteAccessError(f"machine {dst_id} cannot receive messages")
        machine.deliver_message(src_id, message)
