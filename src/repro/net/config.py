"""Network model parameters, calibrated from the paper's testbed.

The evaluation cluster is 50 machines on 56 Gbps InfiniBand (§7). The
latency constants below are chosen so that a one-sided 4 KB verb lands in
the low single-µs range the paper reports for the raw fabric, and so that
dividing a page into k splits shrinks per-message latency the way §4.2
describes (smaller messages -> lower serialization delay).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkConfig"]


@dataclass
class NetworkConfig:
    """Tunable constants of the RDMA fabric model.

    Attributes
    ----------
    bandwidth_gbps:
        Per-NIC line rate. 56 Gbps InfiniBand FDR as in the paper.
    base_latency_us:
        Fixed one-way cost of a one-sided verb (PCIe + NIC + switch).
    jitter_sigma:
        Sigma of the multiplicative lognormal jitter applied to every op.
        Models ordinary fabric noise (not stragglers).
    straggler_prob:
        Per-op probability of hitting a straggler event (switch queueing,
        background incast). §2.2's 'tail at scale'.
    straggler_shape / straggler_scale_us:
        Pareto tail for straggler delay: delay = scale * pareto(shape).
        Defaults give a multi-10s-of-µs tail.
    congestion_per_flow:
        Fractional latency inflation per active background flow on the
        *remote* NIC (e.g. 0.6 -> one bulk flow makes ops 1.6x slower).
    failure_detect_us:
        Delay between a machine dying and its peers' RDMA connection
        managers reporting the disconnect (RC retry timeout). Real RC
        timeouts are ms-scale; we default lower to keep simulations short
        while preserving the ordering failure-detection >> normal-op.
    send_recv_overhead_us:
        Extra cost of two-sided SEND/RECV (control plane) over one-sided
        verbs — the remote CPU is involved.
    """

    bandwidth_gbps: float = 56.0
    base_latency_us: float = 0.9
    jitter_sigma: float = 0.06
    straggler_prob: float = 0.004
    straggler_shape: float = 1.8
    straggler_scale_us: float = 12.0
    congestion_per_flow: float = 0.6
    failure_detect_us: float = 50.0
    send_recv_overhead_us: float = 1.5

    @property
    def bytes_per_us(self) -> float:
        """Line rate converted to bytes per microsecond."""
        return self.bandwidth_gbps * 1e9 / 8.0 / 1e6

    def transfer_us(self, size_bytes: int) -> float:
        """Serialization delay for a payload of ``size_bytes``."""
        return size_bytes / self.bytes_per_us
