"""Background network flows — the congestion source of §2.2 scenario 3.

The paper's experiment "generate[s] RDMA flows on the remote machine
constantly sending 1 GB messages" (§7.3.1). A :class:`BackgroundFlow`
occupies a target NIC for the serialization time of each message, inflating
the latency of every verb that crosses that NIC while active.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Process
from .rdma import RdmaFabric

__all__ = ["BackgroundFlow", "start_background_load"]


class BackgroundFlow:
    """A long-running bulk flow hammering one machine's NIC.

    Each iteration holds the NIC busy for ``message_bytes`` worth of
    serialization time, then idles for ``gap_us``; with the default gap of
    zero the flow is continuous, matching the paper's setup.
    """

    def __init__(
        self,
        fabric: RdmaFabric,
        target_id: int,
        message_bytes: int = 1 << 30,
        gap_us: float = 0.0,
        duration_us: Optional[float] = None,
    ):
        self.fabric = fabric
        self.sim = fabric.sim
        self.target_id = target_id
        self.message_bytes = message_bytes
        self.gap_us = gap_us
        self.duration_us = duration_us
        self.active = False
        self._process: Optional[Process] = None

    def start(self) -> Process:
        if self._process is not None:
            raise RuntimeError("flow already started")
        self._process = self.sim.process(self._run(), name=f"bgflow->{self.target_id}")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("flow stopped")

    def _run(self):
        nic = self.fabric.nic(self.target_id)
        started = self.sim.now
        nic.background_flows += 1
        self.active = True
        try:
            transfer = self.fabric.config.transfer_us(self.message_bytes)
            while True:
                if (
                    self.duration_us is not None
                    and self.sim.now - started >= self.duration_us
                ):
                    return
                yield self.sim.timeout(transfer + self.gap_us)
        finally:
            nic.background_flows -= 1
            self.active = False


def start_background_load(
    fabric: RdmaFabric,
    target_ids: List[int],
    flows_per_target: int = 1,
    duration_us: Optional[float] = None,
) -> List[BackgroundFlow]:
    """Start ``flows_per_target`` continuous bulk flows at each target."""
    flows = []
    for target in target_ids:
        for _ in range(flows_per_target):
            flow = BackgroundFlow(fabric, target, duration_us=duration_us)
            flow.start()
            flows.append(flow)
    return flows
