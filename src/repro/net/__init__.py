"""RDMA network model: NICs, reliable connections, one-sided verbs, flows."""

from .config import NetworkConfig
from .flows import BackgroundFlow, start_background_load
from .rdma import (
    Nic,
    QueuePair,
    RDMADisconnect,
    RDMAError,
    RdmaFabric,
    RemoteAccessError,
)

__all__ = [
    "NetworkConfig",
    "BackgroundFlow",
    "start_background_load",
    "Nic",
    "QueuePair",
    "RDMADisconnect",
    "RDMAError",
    "RdmaFabric",
    "RemoteAccessError",
]
