"""``python -m repro chaos`` — run a seeded chaos campaign from the CLI.

Exit status 0 when every invariant held, 1 on a violation (the repro
bundle is written either way; CI uploads it as an artifact on failure).

``--soak S`` switches to a multi-seed soak: ``S`` campaigns at seeds
``--seed .. --seed + S - 1``, sharded across ``-j`` worker processes,
with a deterministic merged summary written to ``<out>/soak.json``
(byte-identical for every ``-j`` value). Reproduce a violating seed with
the single-campaign mode.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace
from typing import Optional

from ..harness import banner, format_kv
from .bundle import write_bundle
from .engine import INJECTABLE_BUGS, ChaosConfig, ChaosResult, run_chaos
from .schedule import SCENARIOS, ChaosSchedule
from .shrink import shrink_schedule
from .soak import run_soak, soak_json

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Seeded, deterministic chaos campaign with "
        "durability/consistency/liveness invariant checking.",
    )
    parser.add_argument("--seed", type=int, default=1, help="campaign seed")
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run (~3 simulated seconds)"
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="on violation, shrink the schedule to a minimal counterexample",
    )
    parser.add_argument(
        "--replay",
        metavar="SCHEDULE_JSON",
        help="replay a schedule from a repro bundle instead of sampling one",
    )
    parser.add_argument(
        "--inject-bug",
        choices=INJECTABLE_BUGS,
        help="plant a known fault in the system under test (checker self-test)",
    )
    parser.add_argument(
        "--scenario",
        choices=SCENARIOS,
        help="run a named control-plane scenario (explicit schedule, "
        "auto-enables metadata replication); composes with --soak",
    )
    parser.add_argument(
        "--out",
        default="chaos-bundle",
        help="repro bundle output directory (default: chaos-bundle)",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="skip span collection (faster; bundle ships no trace.json)",
    )
    parser.add_argument(
        "--soak",
        type=int,
        metavar="S",
        help="run S campaigns at seeds --seed .. --seed+S-1 and merge a "
        "deterministic summary (<out>/soak.json)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        default="1",
        metavar="N",
        help="worker processes for --soak shards (number or 'auto'; "
        "default 1 = serial in-process)",
    )
    return parser


def _parse_jobs(value: str):
    return value if value == "auto" else int(value)


def _soak_main(args) -> int:
    config = ChaosConfig.quick() if args.quick else ChaosConfig()
    if args.scenario:
        config = replace(config, scenario=args.scenario)
    jobs = _parse_jobs(args.jobs)
    print(
        banner(
            f"chaos soak seeds={args.seed}..{args.seed + args.soak - 1} "
            f"-j {jobs}"
            + (" (quick)" if args.quick else "")
            + (f" scenario={args.scenario}" if args.scenario else "")
        )
    )
    doc = run_soak(
        args.seed,
        args.soak,
        config=config,
        jobs=jobs,
        inject_bug=args.inject_bug,
        progress=print,
    )
    for entry in doc["seeds"]:
        if entry["ok"]:
            workload = entry["workload"]
            print(
                f"  seed {entry['seed']}: ok — "
                f"{entry['schedule_events']} events, "
                f"{workload['writes'] + workload['reads']} ops, "
                f"report sha {entry['report_sha256'][:12]}"
            )
        elif entry.get("error"):
            print(f"  seed {entry['seed']}: ERROR — {entry['error']}")
        else:
            for violation in entry["violations"]:
                print(
                    f"  seed {entry['seed']}: VIOLATED "
                    f"[{violation['invariant']}] t={violation['at_us']:.1f}us "
                    f"{violation['detail']}"
                )
    os.makedirs(args.out, exist_ok=True)
    summary_path = os.path.join(args.out, "soak.json")
    with open(summary_path, "w") as fh:
        fh.write(soak_json(doc))
    print(f"\nsoak summary: {summary_path}")
    if doc["ok"]:
        print(f"all invariants held across {args.soak} seeds")
        return 0
    bad = ", ".join(str(seed) for seed in doc["violating_seeds"])
    print(
        f"violations at seed(s) {bad} — reproduce with "
        f"`python -m repro chaos --seed <S>"
        + (" --quick" if args.quick else "")
        + " --shrink`"
    )
    return 1


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    if args.soak is not None:
        if args.replay or args.shrink:
            print("--soak is incompatible with --replay/--shrink; "
                  "reproduce one seed with the single-campaign mode")
            return 2
        if args.soak < 1:
            print(f"--soak needs at least 1 seed, got {args.soak}")
            return 2
        return _soak_main(args)
    config = ChaosConfig.quick() if args.quick else ChaosConfig()
    if args.scenario:
        if args.replay:
            print("--scenario is incompatible with --replay "
                  "(a replayed schedule already says what happens)")
            return 2
        config = replace(config, scenario=args.scenario)

    schedule = None
    if args.replay:
        # A replay points CI (or a human) at a bundle that may be gone,
        # truncated, or from a different era — fail with one line and a
        # distinct exit status instead of a traceback.
        try:
            with open(args.replay) as fh:
                schedule = ChaosSchedule.from_json(fh.read())
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"cannot replay {args.replay}: {exc}")
            return 2

    print(
        banner(
            f"chaos seed={args.seed}"
            + (" (quick)" if args.quick else "")
            + (f" scenario={args.scenario}" if args.scenario else "")
        )
    )
    result = run_chaos(
        args.seed,
        config=config,
        schedule=schedule,
        inject_bug=args.inject_bug,
        trace=not args.no_trace,
    )

    print("Schedule:")
    for event in result.schedule.events:
        print("  " + event.describe())
    print()
    print(
        format_kv(
            {
                "events": len(result.schedule),
                "workload ops": sum(
                    result.report["workload"][key] for key in ("writes", "reads")
                ),
                "workload errors": result.report["workload"]["errors"],
                "regens started": result.report["invariants"]["counters"][
                    "regens_started"
                ],
                "violations": len(result.violations),
            }
        )
    )

    shrunk: Optional[ChaosResult] = None
    if result.violations:
        print("\nVIOLATIONS:")
        for violation in result.violations:
            print(
                f"  [{violation.invariant}] t={violation.at_us:.1f}us "
                f"{violation.detail}"
            )
        if args.shrink and len(result.schedule) > 0:
            print("\nShrinking...")
            shrunk_schedule, shrunk, runs = shrink_schedule(
                args.seed,
                result.schedule,
                config=config,
                inject_bug=args.inject_bug,
                progress=lambda msg: print("  " + msg),
            )
            print(
                f"  minimal counterexample: {len(shrunk_schedule)} events "
                f"({runs} shrink runs)"
            )
            for event in shrunk_schedule.events:
                print("    " + event.describe())

    files = write_bundle(result, args.out, shrunk=shrunk)
    print(f"\nbundle: {len(files)} files in {args.out}/")
    if result.ok:
        print("all invariants held")
        return 0
    print("invariant VIOLATED — bundle has the repro")
    return 1
