"""Multi-seed chaos soaks — ``python -m repro chaos --soak S [-j N]``.

A soak runs ``S`` independent chaos campaigns at seeds ``base_seed ..
base_seed + S - 1`` and merges their outcomes into one deterministic
summary document. Each seed is one shard of the parallel runner
(:mod:`repro.parallel`), so 100-seed soaks scale with cores while the
summary stays byte-identical to a serial run: per-seed entries are
ordered by seed, and the entries themselves carry only seed-determined
fields (violations, workload counts, a SHA-256 over the campaign's
canonical report JSON) — never wall-clock timings or worker identity.

A violating seed is reproduced exactly by the single-campaign CLI
(``python -m repro chaos --seed S [--shrink]``), which also writes the
full repro bundle; the soak stays lean on purpose.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Optional, Union

from .engine import ChaosConfig, run_chaos

__all__ = ["SOAK_SCHEMA", "run_soak_shard", "run_soak", "soak_json"]

SOAK_SCHEMA = "hydra-chaos-soak/1"


def run_soak_shard(seed: int, config: ChaosConfig, inject_bug: Optional[str] = None) -> dict:
    """One soak shard: a full chaos campaign at ``seed``, summarized.

    Top-level (picklable) for worker dispatch. The returned dict contains
    only seed-determined fields, so merged soak documents are
    byte-identical across ``-j`` values.
    """
    result = run_chaos(seed, config=config, inject_bug=inject_bug, trace=False)
    return {
        "seed": seed,
        "ok": result.ok,
        "violations": [violation.to_dict() for violation in result.violations],
        "schedule_events": len(result.schedule),
        "event_kinds": result.report["event_kinds"],
        "workload": result.report["workload"],
        "health": result.report["health"],
        "latency": result.report["latency"],
        "report_sha256": hashlib.sha256(
            result.report_json().encode()
        ).hexdigest(),
    }


def run_soak(
    base_seed: int,
    count: int,
    config: Optional[ChaosConfig] = None,
    jobs: Union[int, str, None] = 1,
    *,
    inject_bug: Optional[str] = None,
    metrics=None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run ``count`` campaigns at consecutive seeds; return the summary.

    Campaigns that raise (a harness bug, not an invariant violation) or
    whose worker crashes after retries are recorded per seed with
    ``"error"`` set and count against ``ok`` — a soak never silently
    drops a seed.
    """
    from ..parallel import (
        ShardTask,
        merge_histogram_dicts,
        resolve_jobs,
        run_shards,
    )

    if count < 1:
        raise ValueError(f"soak needs at least 1 seed, got {count}")
    config = config or ChaosConfig()
    jobs = resolve_jobs(jobs)

    tasks = [
        ShardTask(
            key=(seed,),
            fn=run_soak_shard,
            args=(seed, config),
            kwargs={"inject_bug": inject_bug},
            label=f"chaos:seed={seed}",
        )
        for seed in range(base_seed, base_seed + count)
    ]
    results = run_shards(
        tasks, jobs=jobs, name="chaos_soak", metrics=metrics, progress=progress
    )

    seeds = []
    for result in results:
        if result.ok:
            seeds.append(result.value)
        else:
            seeds.append(
                {
                    "seed": result.key[0],
                    "ok": False,
                    "error": result.failure_summary(),
                    "violations": [],
                }
            )
    # Soak-wide latency distributions: per-seed campaign histograms merge
    # exactly (bucket counts add), so the merged buckets and percentiles
    # are byte-identical for every ``-j`` value.
    latency = {}
    for direction in ("read", "write"):
        payloads = [
            entry["latency"][direction]
            for entry in seeds
            if entry.get("latency")
        ]
        if payloads:
            merged = merge_histogram_dicts(payloads)
            latency[direction] = {
                "count": merged.count,
                **(merged.percentiles() if merged.count else {}),
                "histogram": merged.to_dict(),
            }

    return {
        "schema": SOAK_SCHEMA,
        "base_seed": base_seed,
        "count": count,
        "inject_bug": inject_bug,
        "config": config.to_dict(),
        "seeds": seeds,
        "latency": latency,
        "violating_seeds": [entry["seed"] for entry in seeds if not entry["ok"]],
        "ok": all(entry["ok"] for entry in seeds),
    }


def soak_json(doc: dict) -> str:
    """Canonical JSON — byte-stable across runs and ``-j`` values."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
