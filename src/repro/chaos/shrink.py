"""Greedy schedule shrinking: reduce a failing schedule to a minimal one.

ddmin-style: try removing progressively smaller chunks of events,
keeping any removal that still reproduces a violation, then finish with
a per-event greedy pass. Victim machine ids are baked into events at
sampling time, so removing an event never changes what the survivors do
— every candidate schedule is a true subset of the original behavior.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .engine import ChaosConfig, ChaosResult, run_chaos
from .schedule import ChaosSchedule

__all__ = ["shrink_schedule"]


def shrink_schedule(
    seed: int,
    schedule: ChaosSchedule,
    config: Optional[ChaosConfig] = None,
    *,
    inject_bug: Optional[str] = None,
    max_runs: int = 64,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[ChaosSchedule, ChaosResult, int]:
    """Shrink ``schedule`` while :func:`run_chaos` keeps violating.

    Returns ``(shrunk_schedule, failing_result, runs_used)`` where
    ``failing_result`` is the violation-bearing run of the shrunk
    schedule. Raises ``ValueError`` if the input schedule does not fail
    in the first place.
    """
    runs = 0

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    def attempt(candidate: ChaosSchedule) -> Optional[ChaosResult]:
        nonlocal runs
        runs += 1
        result = run_chaos(
            seed, config=config, schedule=candidate, inject_bug=inject_bug
        )
        return result if not result.ok else None

    failing = attempt(schedule)
    if failing is None:
        raise ValueError("schedule does not produce a violation; nothing to shrink")

    current = schedule
    # Phase 1: ddmin — drop chunks, halving the chunk size as removals
    # stop working.
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and runs < max_runs:
        removed_any = False
        start = 0
        while start < len(current) and runs < max_runs:
            candidate = current.without(range(start, min(start + chunk, len(current))))
            if len(candidate) == len(current):
                break
            result = attempt(candidate)
            if result is not None:
                say(
                    f"shrink: dropped events [{start}, {start + chunk}) -> "
                    f"{len(candidate)} events still failing"
                )
                current, failing = candidate, result
                removed_any = True
                # Do not advance: the next chunk slid into this position.
            else:
                start += chunk
        if not removed_any or chunk == 1:
            if chunk == 1:
                break
        chunk = max(1, chunk // 2)

    # Phase 2: greedy single-event pass (catches removals ddmin's chunk
    # alignment missed).
    index = 0
    while index < len(current) and runs < max_runs:
        candidate = current.without([index])
        result = attempt(candidate)
        if result is not None:
            say(f"shrink: dropped event {index} -> {len(candidate)} events")
            current, failing = candidate, result
        else:
            index += 1

    say(f"shrink: done, {len(schedule)} -> {len(current)} events in {runs} runs")
    return current, failing, runs
