"""Repro bundles: everything needed to replay a chaos violation.

A bundle is a directory containing:

* ``schedule.json`` — the fault schedule that ran (canonical JSON);
* ``report.json`` — the full run report with the invariant verdicts;
* ``trace.json`` — Chrome/Perfetto ``trace_event`` timeline of the run
  (load in https://ui.perfetto.dev), when tracing was enabled;
* ``flight.json`` — the flight-recorder ring (recent sampler deltas,
  fault events, health transitions, violations), when an invariant was
  violated or an SLO breached;
* ``shrunk_schedule.json`` / ``shrunk_report.json`` — the minimal
  counterexample, when the shrinker ran;
* ``README.txt`` — the exact replay commands.

Bundles contain no wall-clock timestamps: re-running the same seed
produces byte-identical ``schedule.json`` and ``report.json``.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from .engine import ChaosResult

__all__ = ["write_bundle"]


def write_bundle(
    result: ChaosResult,
    out_dir: str,
    shrunk: Optional[ChaosResult] = None,
) -> List[str]:
    """Write ``result`` (and optionally its shrunk counterexample) to
    ``out_dir``; returns the list of files written."""
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []

    def emit(name: str, text: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        written.append(path)

    emit("schedule.json", result.schedule.to_json())
    emit("report.json", result.report_json())

    if result.cluster is not None:
        obs = getattr(result.cluster, "obs", None)
        if obs is not None and obs.tracer.finished_spans():
            trace_path = os.path.join(out_dir, "trace.json")
            obs.export_trace(trace_path)
            written.append(trace_path)
        # Flight-recorder dump: the last N telemetry records (sampler
        # deltas, fault events, health transitions, violations) before
        # the run ended — written whenever an invariant was violated or
        # an SLO breached, the black-box for the post-mortem.
        flight = getattr(obs, "flight", None)
        health = result.report.get("health", {})
        if flight is not None and len(flight) and (
            result.violations or health.get("breaches")
        ):
            emit("flight.json", json.dumps(
                flight.to_dict(), indent=2, sort_keys=True
            ))

    if shrunk is not None:
        emit("shrunk_schedule.json", shrunk.schedule.to_json())
        emit("shrunk_report.json", shrunk.report_json())

    emit("README.txt", _readme(result, shrunk))
    return written


def _readme(result: ChaosResult, shrunk: Optional[ChaosResult]) -> str:
    bug_flag = f" --inject-bug {result.inject_bug}" if result.inject_bug else ""
    lines = [
        "Chaos repro bundle",
        "==================",
        "",
        f"seed       : {result.seed}",
        f"events     : {len(result.schedule)}",
        f"violations : {len(result.violations)}",
        f"verdict    : {'OK' if result.ok else 'VIOLATED'}",
        "",
        "Replay the full schedule:",
        "",
        f"  PYTHONPATH=src python -m repro chaos --seed {result.seed}"
        f" --replay <bundle>/schedule.json{bug_flag}",
        "",
    ]
    if shrunk is not None:
        lines += [
            f"Shrunk counterexample ({len(shrunk.schedule)} events):",
            "",
            f"  PYTHONPATH=src python -m repro chaos --seed {result.seed}"
            f" --replay <bundle>/shrunk_schedule.json{bug_flag}",
            "",
        ]
    if result.violations:
        lines.append("Violations:")
        for violation in result.violations:
            lines.append(
                f"  [{violation.invariant}] t={violation.at_us:.1f}us "
                f"{violation.detail}"
            )
        lines.append("")
    lines += [
        "Files: schedule.json (canonical fault schedule), report.json",
        "(invariant report), trace.json (Perfetto timeline — open in",
        "https://ui.perfetto.dev), flight.json (flight-recorder ring of",
        "recent telemetry, on violation/SLO breach),",
        "shrunk_schedule.json/shrunk_report.json",
        "(minimal counterexample, when the shrinker ran).",
    ]
    return "\n".join(lines)
