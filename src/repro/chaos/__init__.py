"""Deterministic chaos engine with no-data-loss invariant checkers.

``repro.chaos`` turns the hand-written fault schedules of the test suite
into a systematic stress campaign: a single seed samples a randomized —
but *tolerance-budgeted* — schedule of machine crashes, correlated
outages, corruption bursts, background flows, local-memory-pressure
ramps and request bursts, runs it against a full cluster, and checks
three absolute invariants through passive ResilienceManager observer
hooks:

* **durability** — every write that completed (data *and* parity phases)
  stays decodable from the splits actually stored on surviving machines,
  at every checkpoint and at the final audit;
* **consistency** — a read never returns content older than the last
  acked write for that page (concurrent writes widen the acceptable set
  to everything acked during the read);
* **liveness** — every started slab regeneration resolves to a terminal
  outcome, no ``(range, position)`` entry stays stuck mid-rebuild, and
  after quiescing every range is whole again.

On violation the engine emits a trace-linked repro bundle (seed,
schedule JSON, invariant report, Perfetto trace) and can greedily shrink
the schedule to a minimal failing counterexample. Everything is
deterministic: same seed, byte-identical schedule and report.

Entry points: ``python -m repro chaos [--seed N] [--shrink]`` and
:func:`run_chaos` / ``tests/test_chaos_engine.py``.
"""

from .engine import ChaosConfig, ChaosResult, run_chaos
from .bundle import write_bundle
from .invariants import InvariantMonitor, Violation
from .schedule import (
    SCENARIOS,
    ChaosEvent,
    ChaosSchedule,
    sample_schedule,
    scenario_schedule,
)
from .shrink import shrink_schedule
from .soak import run_soak, run_soak_shard, soak_json

__all__ = [
    "ChaosConfig",
    "ChaosEvent",
    "ChaosResult",
    "ChaosSchedule",
    "InvariantMonitor",
    "Violation",
    "run_chaos",
    "run_soak",
    "run_soak_shard",
    "sample_schedule",
    "scenario_schedule",
    "SCENARIOS",
    "shrink_schedule",
    "soak_json",
    "write_bundle",
]
