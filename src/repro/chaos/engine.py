"""The chaos run itself: cluster + workload + schedule + invariants.

:func:`run_chaos` builds a fresh cluster and Hydra deployment, registers
an :class:`~repro.chaos.invariants.InvariantMonitor` on the client's
ResilienceManager, drives a steady read/write workload while a schedule
driver applies the sampled fault events, then quiesces, audits every
page end to end and returns a deterministic :class:`ChaosResult`.

Everything — schedule sampling, workload pacing, fault victims, network
jitter — derives from the one seed, so two runs with the same seed
produce byte-identical schedule JSON and reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..cluster import Cluster, CorruptionInjector, FailureInjector, LocalMemoryPressure
from ..core import HydraConfig, HydraDeployment
from ..core.resilience_manager import HydraError
from ..net import BackgroundFlow, NetworkConfig
from ..sim import RandomSource
from .invariants import InvariantMonitor, Violation
from .schedule import ChaosSchedule, sample_schedule, scenario_schedule

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos"]

# The one debug fault the engine knows how to inject into the system
# under test (used by the self-test and the --inject-bug CLI flag).
INJECTABLE_BUGS = ("drop_parity",)


@dataclass
class ChaosConfig:
    """Knobs of one chaos campaign. Defaults give a ~10 simulated-second
    run against a 12-machine cluster; :meth:`quick` shrinks everything
    for CI smoke tests."""

    machines: int = 12
    memory_per_machine: int = 1 << 26
    k: int = 4
    r: int = 2
    delta: int = 1
    slab_size_bytes: int = 1 << 20
    payload_mode: str = "real"
    control_period_us: float = 20_000.0
    jitter_sigma: float = 0.03
    straggler_prob: float = 0.01

    pages: int = 24
    horizon_us: float = 10_000_000.0
    settle_us: float = 12_000_000.0
    events: int = 14
    op_gap_us: float = 20_000.0  # mean gap of the steady workload
    burst_ops: int = 40
    flow_message_bytes: int = 1 << 24

    check_interval_us: float = 100_000.0
    confirm_grace_us: float = 50_000.0
    regen_slack_us: float = 2_000_000.0
    mean_outage_us: float = 600_000.0

    # Survivable control plane (repro.core.rm_replica). 0 keeps the
    # classic single-RM deployment; rm_* schedule events auto-enable 2.
    metadata_replicas: int = 0
    metadata_lease_timeout_us: Optional[float] = None
    # Named control-plane scenario (see schedule.SCENARIOS) — replaces
    # the sampled schedule with an explicit, deterministic one.
    scenario: Optional[str] = None

    @classmethod
    def quick(cls) -> "ChaosConfig":
        """A CI-sized campaign (~3 simulated seconds, fewer events)."""
        return cls(
            machines=10,
            pages=12,
            horizon_us=3_000_000.0,
            settle_us=8_000_000.0,
            events=8,
            op_gap_us=15_000.0,
            burst_ops=20,
        )

    def hydra_config(self) -> HydraConfig:
        return HydraConfig(
            k=self.k,
            r=self.r,
            delta=self.delta,
            slab_size_bytes=self.slab_size_bytes,
            payload_mode=self.payload_mode,
            control_period_us=self.control_period_us,
            metadata_replicas=self.metadata_replicas,
            metadata_lease_timeout_us=self.metadata_lease_timeout_us,
        )

    def to_dict(self) -> Dict:
        from dataclasses import asdict

        return asdict(self)


@dataclass
class ChaosResult:
    """Everything one chaos run produced (the bundle serializes it)."""

    seed: int
    config: ChaosConfig
    schedule: ChaosSchedule
    report: Dict
    violations: List[Violation]
    inject_bug: Optional[str] = None
    cluster: object = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def report_json(self) -> str:
        """Canonical JSON — byte-stable across runs of the same seed."""
        return json.dumps(self.report, indent=2, sort_keys=True)


def _page_maker(seed: int, page_size: int):
    """Deterministic page content keyed by (campaign seed, page, version)."""

    def make(page_id: int, version: int) -> bytes:
        rng = np.random.default_rng((seed, page_id, version))
        return rng.integers(0, 256, page_size, dtype=np.uint8).tobytes()

    return make


def run_chaos(
    seed: int,
    config: Optional[ChaosConfig] = None,
    schedule: Optional[ChaosSchedule] = None,
    *,
    inject_bug: Optional[str] = None,
    trace: bool = False,
    frame_listener=None,
) -> ChaosResult:
    """Run one chaos campaign and return its result.

    ``schedule`` replays a previously sampled (or shrunk) schedule
    instead of sampling a fresh one — the rest of the run (workload,
    network, cluster) still derives from ``seed``, so a replayed
    counterexample reproduces exactly. ``inject_bug`` plants a known
    fault in the system under test (``"drop_parity"``) so the checkers
    can prove they catch real data loss. ``trace`` enables full span
    collection so a violation bundle can ship a Perfetto timeline.
    ``frame_listener`` receives every sampler frame as it is taken —
    the live ``repro top`` dashboard hook.
    """
    config = config or ChaosConfig()
    if inject_bug is not None and inject_bug not in INJECTABLE_BUGS:
        raise ValueError(f"unknown injectable bug {inject_bug!r}")

    # Control-plane scenarios: an explicit schedule replaces sampling,
    # and any rm_* event (scenario or replayed counterexample) needs the
    # replicated control plane up, so auto-enable it.
    if schedule is None and config.scenario is not None:
        schedule = scenario_schedule(
            config.scenario,
            machines=config.machines,
            horizon_us=config.horizon_us,
            burst_ops=config.burst_ops,
        )
    if (
        schedule is not None
        and config.metadata_replicas == 0
        and any(e.kind in ("rm_crash", "rm_partition") for e in schedule.events)
    ):
        config = replace(config, metadata_replicas=2)

    cluster = Cluster(
        machines=config.machines,
        memory_per_machine=config.memory_per_machine,
        network=NetworkConfig(
            jitter_sigma=config.jitter_sigma, straggler_prob=config.straggler_prob
        ),
        seed=seed,
    )
    sim = cluster.sim
    if trace:
        cluster.obs.enable_tracing(1)
    hydra_config = config.hydra_config()
    deployment = HydraDeployment(cluster, hydra_config, seed=seed)
    rm = deployment.manager(0)
    if inject_bug == "drop_parity":
        rm.debug_drop_parity = True

    # Telemetry: sampler + SLO health every ControlPeriod, flight ring
    # for the repro bundle. Read-only — never perturbs the campaign.
    sampler = cluster.obs.enable_monitoring(
        cluster, rms=[rm], period_us=config.control_period_us
    )
    health = cluster.obs.health
    if frame_listener is not None:
        sampler.add_listener(frame_listener)

    monitor = InvariantMonitor(
        cluster,
        rm,
        hydra_config,
        check_interval_us=config.check_interval_us,
        confirm_grace_us=config.confirm_grace_us,
        flight=cluster.obs.flight,
    )
    rm.add_observer(monitor)
    monitor.start()

    # The workload targets the *current* leader of the client's metadata
    # domain. On failover the control plane hands the domain to a
    # successor RM; the box is swapped (and the monitor rebound) at
    # adoption time, before torn pages are re-sealed, so every
    # client-visible operation after the handoff flows through the
    # successor.
    rm_box = {"rm": rm}
    if deployment.control_plane is not None:

        def _on_failover_begin(domain: int, new_rm, info: Dict) -> None:
            if domain != rm_box["rm"].machine_id:
                return
            monitor.rebind(new_rm, info)
            new_rm.add_observer(monitor)
            rm_box["rm"] = new_rm

        deployment.control_plane.on_failover_begin.append(_on_failover_begin)

    rng = RandomSource(seed, "chaos")
    if schedule is None:
        victims = [m.id for m in cluster.machines if m.id != 0]
        schedule = sample_schedule(
            rng.child("schedule"),
            victims,
            tolerance=config.r,
            horizon_us=config.horizon_us,
            events=config.events,
            regen_slack_us=config.regen_slack_us,
            mean_outage_us=config.mean_outage_us,
            burst_ops=config.burst_ops,
        )

    failures = FailureInjector(sim)
    corruption = CorruptionInjector(sim, rng.child("corrupt"))
    active_partitions: List = []  # (a, b) pairs rm_partition opened
    make_page = _page_maker(seed, hydra_config.page_size)
    versions: Dict[int, int] = {}
    writing: set = set()  # pages with a workload write in flight
    workload = {"writes": 0, "reads": 0, "errors": 0, "burst_ops": 0}

    def do_op(op_rng: RandomSource):
        """One random read or write against a random page (generator).

        Two overlapping writes to one page would interleave their splits
        (the application's problem, not Hydra's — writes carry no page
        lock), so concurrent burst/steady ops degrade to reads when their
        page already has a write in flight.
        """
        page_id = op_rng.randint(0, config.pages - 1)
        write = op_rng.bernoulli(0.5) and page_id not in writing
        client = rm_box["rm"]
        try:
            if write:
                writing.add(page_id)
                versions[page_id] = versions.get(page_id, 0) + 1
                data = (
                    make_page(page_id, versions[page_id])
                    if config.payload_mode == "real"
                    else None
                )
                yield client.write(page_id, data)
                workload["writes"] += 1
            else:
                yield client.read(page_id)
                workload["reads"] += 1
        except HydraError:
            workload["errors"] += 1
        finally:
            if write:
                writing.discard(page_id)

    def burst(index: int, ops: int):
        burst_rng = rng.child(f"burst{index}")
        for _ in range(ops):
            workload["burst_ops"] += 1
            yield from do_op(burst_rng)

    def apply_event(index: int, event) -> None:
        """Fire one schedule event (called at its time, zero sim cost)."""
        cluster.obs.flight.note(
            "fault",
            sim.now,
            index=index,
            event=event.kind,
            machines=sorted(event.machines),
        )
        if event.kind in ("crash", "outage", "rm_crash"):
            # rm_crash is a plain machine crash aimed at an RM under
            # test (usually the client, machine 0) — kept as its own
            # kind so schedules document intent and auto-enable the
            # replicated control plane on replay.
            for victim in event.machines:
                failures.crash_at(
                    cluster.machine(victim),
                    at_us=sim.now,
                    recover_after_us=event.duration_us,
                )
        elif event.kind == "rm_partition":
            # Cut only the victim's metadata-replication links: the
            # stale leader must fence itself (lost quorum) before the
            # lease expires and a successor adopts the domain.
            control_plane = deployment.control_plane
            for victim in event.machines:
                peers = (
                    control_plane.peers_of_domain.get(victim, [])
                    if control_plane is not None
                    else []
                )
                pairs = [(victim, peer) for peer in peers]
                active_partitions.extend(pairs)
                for a, b in pairs:
                    cluster.fabric.partition(a, b)
                if event.duration_us > 0:

                    def heal(pairs=tuple(pairs)):
                        for a, b in pairs:
                            cluster.fabric.heal(a, b)

                    sim.call_later(event.duration_us, heal)
        elif event.kind == "corrupt":
            monitor.note_corruption()
            for victim in event.machines:
                corruption.corrupt_machine(
                    cluster.machine(victim), fraction=event.fraction
                )
        elif event.kind == "flow":
            for victim in event.machines:
                BackgroundFlow(
                    cluster.fabric,
                    victim,
                    message_bytes=config.flow_message_bytes,
                    duration_us=event.duration_us,
                ).start()
        elif event.kind == "pressure":
            for victim in event.machines:
                machine = cluster.machine(victim)
                target = int(event.fraction * machine.total_memory_bytes)
                LocalMemoryPressure(sim, machine).ramp(
                    target, over_us=event.duration_us
                )
        elif event.kind == "burst":
            sim.process(
                burst(index, event.ops), name=f"chaos-burst:{index}"
            )

    def schedule_driver():
        for index, event in enumerate(schedule.events):
            if event.at_us > sim.now:
                yield sim.timeout(event.at_us - sim.now)
            apply_event(index, event)

    def campaign():
        # Seed the working set so every fault hits live data.
        for page_id in range(config.pages):
            versions[page_id] = 1
            data = (
                make_page(page_id, 1) if config.payload_mode == "real" else None
            )
            yield rm.write(page_id, data)
            workload["writes"] += 1

        sim.process(schedule_driver(), name="chaos-schedule")

        # Steady workload until the horizon.
        steady_rng = rng.child("workload")
        while sim.now < config.horizon_us:
            yield sim.timeout(steady_rng.exponential(config.op_gap_us))
            if sim.now >= config.horizon_us:
                break
            yield from do_op(steady_rng)

        # Quiesce: heal partitions, release pressure, recover everyone,
        # let regen finish. (heal is idempotent; pairs already healed by
        # their scheduled timer are no-ops.)
        for a, b in active_partitions:
            cluster.fabric.heal(a, b)
        for machine in cluster.machines:
            machine.set_local_app_bytes(0)
            if not machine.alive:
                machine.recover()
        yield sim.timeout(config.settle_us)

        # Final end-to-end audit: read back every page through the
        # (possibly failed-over) RM.
        for page_id in sorted(monitor.pages):
            state = monitor.pages[page_id]
            if page_id in monitor.torn_pages:
                continue  # un-sealed torn page; final_check counts it
            try:
                got = yield rm_box["rm"].read(page_id)
            except HydraError as exc:
                monitor.record_audit_mismatch(
                    page_id, f"audit read of page {page_id} failed: {exc}"
                )
                continue
            if config.payload_mode == "real" and state.data is not None:
                if got != state.data:
                    monitor.record_audit_mismatch(
                        page_id,
                        f"audit read of page {page_id} returned bytes that do "
                        f"not match the last acked write (v{state.version})",
                    )
        monitor.final_check()

    driver = sim.process(campaign(), name="chaos-campaign")
    sim.run_until_triggered(driver, until=1e12)
    if not driver.triggered:
        raise RuntimeError(f"chaos campaign stalled at t={sim.now}")
    driver.value  # re-raise a crashed campaign

    kind_counts: Dict[str, int] = {}
    for event in schedule.events:
        kind_counts[event.kind] = kind_counts.get(event.kind, 0) + 1

    report = {
        "seed": seed,
        "inject_bug": inject_bug,
        "horizon_us": schedule.horizon_us,
        "end_time_us": sim.now,
        "schedule_events": len(schedule),
        "event_kinds": dict(sorted(kind_counts.items())),
        "workload": dict(sorted(workload.items())),
        "rm_events": dict(sorted(rm.events.counts.items())),
        "invariants": monitor.report(),
        "health": health.report(),
        "latency": {
            "read": rm.read_latency.hist.to_dict(),
            "write": rm.write_latency.hist.to_dict(),
        },
        "ok": monitor.ok,
    }
    if deployment.control_plane is not None:
        report["control_plane"] = deployment.control_plane.report()
    return ChaosResult(
        seed=seed,
        config=config,
        schedule=schedule,
        report=report,
        violations=list(monitor.violations),
        inject_bug=inject_bug,
        cluster=cluster,
    )
