"""Fault schedules: the sampled, serializable unit of chaos.

A :class:`ChaosSchedule` is a time-ordered list of self-contained
:class:`ChaosEvent`\\ s. Victims are resolved at *sampling* time (events
carry explicit machine ids), so replaying or shrinking a schedule never
re-rolls dice: removing one event cannot change who another event hits.

Sampling is **tolerance-budgeted**: Hydra guarantees no data loss while
at most ``r`` of a range's hosts are unavailable at once, so the sampler
never schedules more than ``r`` overlapping "unsafe" machines. A crash
occupies its machine from the crash until recovery *plus a regeneration
slack* (recovery brings the machine back empty — the range is whole only
once the slab is rebuilt elsewhere); a corruption burst conservatively
occupies its machine until the end of the horizon (splits heal only when
reads touch them); a local-memory-pressure ramp occupies its machine for
the ramp plus the slack (pressure can evict hosted slabs, making their
positions unavailable exactly like a crash would). Background flows and
request bursts consume no budget: they stress timing, not redundancy.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

from ..sim import RandomSource

__all__ = [
    "ChaosEvent",
    "ChaosSchedule",
    "sample_schedule",
    "scenario_schedule",
    "EVENT_KINDS",
    "SCENARIOS",
]

EVENT_KINDS = (
    "crash",
    "outage",
    "corrupt",
    "flow",
    "pressure",
    "burst",
    "rm_crash",
    "rm_partition",
)

# Weights of the §2.2 uncertainty scenarios in a sampled schedule.
_KIND_WEIGHTS = (
    ("crash", 0.30),
    ("outage", 0.10),
    ("corrupt", 0.15),
    ("flow", 0.15),
    ("pressure", 0.10),
    ("burst", 0.20),
)


@dataclass
class ChaosEvent:
    """One self-contained fault event.

    ``machines`` lists explicit victim ids (one for crash/corrupt/flow/
    pressure, several for a correlated outage, none for a burst).
    ``duration_us`` is the recovery delay (crash/outage), flow duration,
    or pressure-ramp length. ``fraction`` is the corrupted-page fraction
    or the pressure target as a fraction of machine DRAM. ``ops`` is the
    request-burst size.
    """

    kind: str
    at_us: float
    machines: List[int] = field(default_factory=list)
    duration_us: float = 0.0
    fraction: float = 0.0
    ops: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ChaosEvent":
        return cls(
            kind=data["kind"],
            at_us=float(data["at_us"]),
            machines=[int(m) for m in data.get("machines", [])],
            duration_us=float(data.get("duration_us", 0.0)),
            fraction=float(data.get("fraction", 0.0)),
            ops=int(data.get("ops", 0)),
        )

    def describe(self) -> str:
        target = ",".join(str(m) for m in self.machines) or "-"
        return (
            f"{self.at_us:>12.1f}us {self.kind:<8} m[{target}] "
            f"dur={self.duration_us:.0f}us frac={self.fraction:.2f} ops={self.ops}"
        )


@dataclass
class ChaosSchedule:
    """A time-ordered fault schedule plus the horizon it was sampled for."""

    events: List[ChaosEvent]
    horizon_us: float

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: (e.at_us, e.kind, e.machines))

    def __len__(self) -> int:
        return len(self.events)

    def to_json(self) -> str:
        """Canonical JSON form — byte-stable for one schedule."""
        return json.dumps(
            {
                "horizon_us": self.horizon_us,
                "events": [e.to_dict() for e in self.events],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        data = json.loads(text)
        return cls(
            events=[ChaosEvent.from_dict(e) for e in data["events"]],
            horizon_us=float(data["horizon_us"]),
        )

    def without(self, indices) -> "ChaosSchedule":
        """A copy with the events at ``indices`` removed (shrinker step)."""
        drop = set(indices)
        return ChaosSchedule(
            events=[e for i, e in enumerate(self.events) if i not in drop],
            horizon_us=self.horizon_us,
        )


def _weighted_kind(rng: RandomSource) -> str:
    roll = rng.random()
    acc = 0.0
    for kind, weight in _KIND_WEIGHTS:
        acc += weight
        if roll < acc:
            return kind
    return _KIND_WEIGHTS[-1][0]


class _Budget:
    """Tracks per-machine unsafe intervals against the tolerance ``r``."""

    def __init__(self, tolerance: int):
        self.tolerance = tolerance
        self.intervals: List[Tuple[float, float, int]] = []  # (start, end, machine)

    def overlapping(self, start: float, end: float) -> List[int]:
        return [
            m for (s, e, m) in self.intervals if not (e <= start or end <= s)
        ]

    def free_slots(self, start: float, end: float) -> int:
        return self.tolerance - len(self.overlapping(start, end))

    def occupied_machines(self, start: float, end: float) -> set:
        return set(self.overlapping(start, end))

    def take(self, start: float, end: float, machine: int) -> None:
        self.intervals.append((start, end, machine))


def sample_schedule(
    rng: RandomSource,
    machine_ids: List[int],
    tolerance: int,
    horizon_us: float,
    events: int,
    *,
    regen_slack_us: float = 2_000_000.0,
    mean_outage_us: float = 600_000.0,
    burst_ops: int = 40,
) -> ChaosSchedule:
    """Sample ``events`` fault events within the tolerance budget.

    ``machine_ids`` are the eligible victims (the client machine must not
    be listed). ``tolerance`` is the redundancy budget ``r``: at no point
    do more than ``tolerance`` machines sit in an unsafe interval. Event
    times land in the first 3/4 of the horizon so the run can quiesce.
    """
    if tolerance < 1:
        raise ValueError(f"tolerance must be >= 1, got {tolerance}")
    budget = _Budget(tolerance)
    sampled: List[ChaosEvent] = []
    for _ in range(events):
        at_us = rng.uniform(0.05, 0.75) * horizon_us
        kind = _weighted_kind(rng)
        if kind in ("crash", "outage"):
            recover = rng.uniform(0.5, 1.5) * mean_outage_us
            start, end = at_us, at_us + recover + regen_slack_us
            slots = budget.free_slots(start, end)
            busy = budget.occupied_machines(start, end)
            candidates = [m for m in machine_ids if m not in busy]
            if slots < 1 or not candidates:
                kind = "burst"  # budget exhausted here: degrade to a burst
            else:
                count = 1 if kind == "crash" else min(slots, max(2, tolerance))
                count = min(count, len(candidates))
                if kind == "outage" and count < 2:
                    kind, count = "crash", 1
                victims = sorted(rng.sample(candidates, count))
                for victim in victims:
                    budget.take(start, end, victim)
                sampled.append(
                    ChaosEvent(
                        kind=kind,
                        at_us=at_us,
                        machines=victims,
                        duration_us=recover,
                    )
                )
                continue
        if kind == "corrupt":
            # Conservative: a corrupted machine stays unsafe until the end
            # of the horizon (healing is read-driven and not guaranteed).
            start, end = at_us, horizon_us
            busy = budget.occupied_machines(start, end)
            candidates = [m for m in machine_ids if m not in busy]
            if budget.free_slots(start, end) < 1 or not candidates:
                kind = "burst"
            else:
                victim = rng.choice(candidates)
                budget.take(start, end, victim)
                sampled.append(
                    ChaosEvent(
                        kind="corrupt",
                        at_us=at_us,
                        machines=[victim],
                        fraction=rng.uniform(0.2, 0.8),
                    )
                )
                continue
        if kind == "flow":
            sampled.append(
                ChaosEvent(
                    kind="flow",
                    at_us=at_us,
                    machines=[rng.choice(machine_ids)],
                    duration_us=rng.uniform(0.5, 2.0) * mean_outage_us,
                )
            )
            continue
        if kind == "pressure":
            # Pressure can evict hosted slabs — budget it like a crash.
            ramp = rng.uniform(0.5, 1.5) * mean_outage_us
            start, end = at_us, at_us + ramp + regen_slack_us
            busy = budget.occupied_machines(start, end)
            candidates = [m for m in machine_ids if m not in busy]
            if budget.free_slots(start, end) < 1 or not candidates:
                kind = "burst"
            else:
                victim = rng.choice(candidates)
                budget.take(start, end, victim)
                sampled.append(
                    ChaosEvent(
                        kind="pressure",
                        at_us=at_us,
                        machines=[victim],
                        duration_us=ramp,
                        fraction=rng.uniform(0.4, 0.8),
                    )
                )
                continue
        # burst (sampled directly, or any budget-exhausted fallback)
        sampled.append(
            ChaosEvent(
                kind="burst",
                at_us=at_us,
                ops=max(1, int(round(rng.uniform(0.5, 1.5) * burst_ops))),
            )
        )
    return ChaosSchedule(events=sampled, horizon_us=horizon_us)


# Control-plane fault scenarios (ISSUE 8). Each is a fully explicit,
# deterministic schedule — no sampling — aimed at the RM under test
# (machine 0) and its metadata replica set. ``rm_crash`` kills the
# leader mid-write-burst; ``rm_partition`` cuts only the metadata links
# (stale-leader fencing); ``rm_failover`` layers a data-host crash under
# the leader crash, then another after failover, so the successor's
# reconstructed slab map is exercised while degraded.
SCENARIOS = ("rm_crash", "rm_partition", "rm_failover")


def scenario_schedule(
    name: str, *, machines: int, horizon_us: float, burst_ops: int
) -> ChaosSchedule:
    """The named control-plane scenario as an explicit schedule."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r} (choose from {', '.join(SCENARIOS)})"
        )
    h = horizon_us
    if name == "rm_crash":
        # The burst starts a few writes before the crash lands, so
        # the leader usually dies with a write torn mid-flight.
        events = [
            ChaosEvent(kind="burst", at_us=0.5 * h - 100.0, ops=burst_ops),
            ChaosEvent(
                kind="rm_crash", at_us=0.5 * h, machines=[0],
                duration_us=0.25 * h,
            ),
        ]
    elif name == "rm_partition":
        events = [
            ChaosEvent(kind="burst", at_us=0.4 * h - 100.0, ops=burst_ops),
            ChaosEvent(
                kind="rm_partition", at_us=0.4 * h, machines=[0],
                duration_us=0.3 * h,
            ),
        ]
    else:  # rm_failover
        events = [
            ChaosEvent(
                kind="crash", at_us=0.3 * h, machines=[machines - 1],
                duration_us=0.2 * h,
            ),
            ChaosEvent(kind="burst", at_us=0.3 * h + 50.0, ops=burst_ops),
            ChaosEvent(
                kind="rm_crash", at_us=0.3 * h + 250.0, machines=[0],
                duration_us=0.3 * h,
            ),
            ChaosEvent(
                kind="crash", at_us=0.7 * h, machines=[machines - 2],
                duration_us=0.15 * h,
            ),
        ]
    return ChaosSchedule(events=events, horizon_us=h)
