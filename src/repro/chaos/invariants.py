"""Invariant checkers observing a ResilienceManager through its hooks.

The :class:`InvariantMonitor` registers as a passive RM observer
(:meth:`ResilienceManager.add_observer`) and maintains its own model of
what the application was promised: every acked write's (version, bytes),
every durability completion, every open regeneration. Against that model
it checks:

* **durability** — for every page whose last write is fully durable (data
  *and* parity phases complete, nothing in flight), at least ``k`` of the
  splits *actually stored* on alive machines decode to the acked bytes.
  The check inspects slab contents directly (out-of-band, zero simulated
  cost). An apparent violation is confirmed after a grace period so
  in-flight catch-up posts (microsecond-scale) cannot false-positive;
  real data loss cannot heal, so it always survives confirmation.
* **consistency** — a read never returns an *older version* than the
  last write acked before the read started (reads racing writes accept
  anything acked during the read window). Bytes matching no version at
  all are a violation too — unless a corruption burst was injected, in
  which case the §5.1 guarantee is deliberately weaker (detection lags a
  background verify) and the garbage read is counted, with convergence
  enforced by the final audit instead.
* **liveness** — no regeneration attempt runs longer than
  ``liveness_timeout_us``; at the final audit no ``(range, position)``
  entry remains open and every range is whole.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..cluster import PhantomSplit, SlabState
from ..core.resilience_manager import _REGEN_TIMEOUT_US

__all__ = ["Violation", "InvariantMonitor"]


@dataclass
class Violation:
    """One invariant breach, with enough context to debug it."""

    invariant: str  # "durability" | "consistency" | "liveness"
    at_us: float
    detail: str
    page_id: Optional[int] = None

    def to_dict(self) -> Dict:
        return {
            "invariant": self.invariant,
            "at_us": self.at_us,
            "detail": self.detail,
            "page_id": self.page_id,
        }


@dataclass
class _PageState:
    """The checker's model of one page."""

    version: int = 0
    data: Optional[bytes] = None
    durable_version: int = 0
    # Ack history for read-window consistency: (ack_time_us, version, data).
    history: List[Tuple[float, int, Optional[bytes]]] = field(default_factory=list)


class InvariantMonitor:
    """Observes one ResilienceManager and checks the three invariants."""

    def __init__(
        self,
        cluster,
        rm,
        config,
        *,
        check_interval_us: float = 100_000.0,
        confirm_grace_us: float = 50_000.0,
        liveness_timeout_us: Optional[float] = None,
        flight=None,
    ):
        self.cluster = cluster
        self.rm = rm
        self.config = config
        self.sim = cluster.sim
        # Optional FlightRecorder: violations land in the ring so the
        # repro bundle's flight.json shows what led up to them.
        self.flight = flight
        self.check_interval_us = check_interval_us
        self.confirm_grace_us = confirm_grace_us
        # One full RPC round plus the silent-target timeout, twice over:
        # any single regeneration attempt exceeding this is stuck.
        self.liveness_timeout_us = (
            liveness_timeout_us
            if liveness_timeout_us is not None
            else 2.0 * (_REGEN_TIMEOUT_US + config.control_period_us)
        )

        self.pages: Dict[int, _PageState] = {}
        self.open_regens: Dict[Tuple[int, int], float] = {}
        self.regen_outcomes: Dict[str, int] = {}
        self.violations: List[Violation] = []
        self.counters: Dict[str, int] = {
            "writes_acked": 0,
            "writes_durable": 0,
            "reads_checked": 0,
            "reads_failed": 0,
            "durability_checks": 0,
            "durability_confirms": 0,
            "regens_started": 0,
            "corrupt_reads_tolerated": 0,
        }
        self.corruption_injected = False
        self._expected_cache: Dict[int, Tuple[int, np.ndarray]] = {}
        self._flagged: Set[Tuple[str, object]] = set()
        self._confirming: Set[int] = set()
        # Pages whose last write was torn by an RM failover (intent
        # replicated, ack never issued): split state is mixed-version
        # until the successor re-seals them, so byte checks are relaxed
        # for exactly these pages, exactly until their next ack.
        self._torn: Set[int] = set()

    # ------------------------------------------------------------------
    # RM observer hooks
    # ------------------------------------------------------------------
    def on_write_acked(self, page_id: int, version: int, data) -> None:
        state = self.pages.setdefault(page_id, _PageState())
        state.version = version
        state.data = data
        state.history.append((self.sim.now, version, data))
        self._torn.discard(page_id)  # sealed (or overwritten): promise renewed
        self.counters["writes_acked"] += 1

    def on_write_durable(self, page_id: int, version: int) -> None:
        state = self.pages.get(page_id)
        if state is None:
            return
        if version > state.durable_version:
            state.durable_version = version
        self.counters["writes_durable"] += 1

    def on_read_done(self, page_id: int, version: int, data, start_us: float) -> None:
        state = self.pages.get(page_id)
        if state is None:
            return
        self.counters["reads_checked"] += 1
        history = state.history
        if not history:
            return
        # Acceptable: the last write acked at-or-before the read started,
        # plus everything acked while the read was in flight.
        floor = 0
        for index, (ack_us, _v, _d) in enumerate(history):
            if ack_us <= start_us:
                floor = index
            else:
                break
        acceptable = history[floor:]
        if data is not None:
            if any(d == data for (_t, _v, d) in acceptable):
                return
            stale = [v for (_t, v, d) in history[:floor] if d == data]
            if stale:
                self._violate(
                    "consistency",
                    f"read of page {page_id} returned stale version "
                    f"{stale[-1]}, acceptable "
                    f"{[v for (_t, v, _d) in acceptable]} "
                    f"(read started at {start_us:.1f}us)",
                    page_id=page_id,
                )
            elif page_id in self._torn:
                # Failover re-seal race: the page's splits are mixed
                # between the torn intent and its acked predecessor
                # until the successor rewrites them; either version's
                # bytes (or a decode of the mixture) may surface.
                self.counters["torn_reads_tolerated"] = (
                    self.counters.get("torn_reads_tolerated", 0) + 1
                )
            elif self.corruption_injected:
                # §5.1: detection lags a background verify; the garbage
                # read is tolerated, convergence enforced at final audit.
                self.counters["corrupt_reads_tolerated"] += 1
            else:
                self._violate(
                    "consistency",
                    f"read of page {page_id} returned bytes matching no "
                    f"version ever written (read started at {start_us:.1f}us)",
                    page_id=page_id,
                )
        else:
            # Phantom mode: check the RM's version bookkeeping instead.
            if version not in [v for (_t, v, _d) in acceptable]:
                self._violate(
                    "consistency",
                    f"read of page {page_id} saw version {version}, acceptable "
                    f"{[v for (_t, v, _d) in acceptable]}",
                    page_id=page_id,
                )

    def note_corruption(self) -> None:
        """The engine injected a corruption burst: weaken the read-byte
        check to the §5.1 contract (see class docstring)."""
        self.corruption_injected = True

    def on_read_failed(self, page_id: int) -> None:
        self.counters["reads_failed"] += 1

    def on_regen_start(self, range_id: int, position: int) -> None:
        self.open_regens[(range_id, position)] = self.sim.now
        self.counters["regens_started"] += 1

    def on_regen_end(self, range_id: int, position: int, outcome: str) -> None:
        self.open_regens.pop((range_id, position), None)
        self.regen_outcomes[outcome] = self.regen_outcomes.get(outcome, 0) + 1

    def on_page_lost(self, page_id: int) -> None:
        """Failover recovery gave up on a page (``seal_pages``).

        Losing a torn page is the documented async-encoding trade-off:
        the client's overwrite was in flight, so neither the old nor the
        new version is guaranteed reconstructible. Losing a page with no
        write outstanding breaks the durability promise outright.
        """
        state = self.pages.pop(page_id, None)
        self._expected_cache.pop(page_id, None)
        key = "pages_lost_torn" if page_id in self._torn else "pages_lost"
        self.counters[key] = self.counters.get(key, 0) + 1
        if page_id in self._torn:
            self._torn.discard(page_id)
            return
        if state is not None and state.version > 0:
            self._violate(
                "durability",
                f"page {page_id} v{state.version} lost in failover despite "
                "an acked write and no overwrite in flight",
                page_id=page_id,
                dedup=("lost", page_id),
            )

    def rebind(self, new_rm, info: Dict) -> None:
        """Follow a control-plane failover: observe the successor RM.

        Clears per-RM state — regenerations open on the dead leader can
        never complete there (the successor restarts its own), and the
        split-inspection cache keys off the leader's codec. Pages whose
        write was torn mid-flight (``info["interrupted"]``) get relaxed
        byte checks until the successor's re-seal acks.
        """
        self.rm = new_rm
        self.open_regens.clear()
        self._expected_cache.clear()
        self._torn.update(page for page, _acked, _intent in info["interrupted"])
        self.counters["failovers"] = self.counters.get("failovers", 0) + 1

    # ------------------------------------------------------------------
    # periodic checking
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the periodic checkpoint process; returns it."""
        return self.sim.process(self._check_loop(), name="chaos-invariants")

    def _check_loop(self):
        while True:
            yield self.sim.timeout(self.check_interval_us)
            self.checkpoint()

    def checkpoint(self) -> None:
        """One mid-run pass: durability suspects + stuck regenerations."""
        self.counters["durability_checks"] += 1
        now = self.sim.now
        for page_id in sorted(self.pages):
            state = self.pages[page_id]
            if not self._durability_checkable(page_id, state):
                continue
            if self._valid_split_count(page_id, state) < self.config.k:
                self._schedule_confirm(page_id, state.version)
        for key, started in sorted(self.open_regens.items()):
            if now - started > self.liveness_timeout_us:
                self._violate(
                    "liveness",
                    f"regeneration of range {key[0]} position {key[1]} open "
                    f"for {now - started:.0f}us (started {started:.1f}us)",
                    dedup=("liveness", key),
                )

    def _durability_checkable(self, page_id: int, state: _PageState) -> bool:
        """Durability applies once the write's parity phase completed and
        nothing newer is in flight for the page."""
        if state.data is None and self.config.payload_mode == "real":
            return False
        if state.durable_version != state.version:
            return False
        # A fenced RM is mid-handoff: split state is in flux until the
        # successor adopts the domain and the monitor is rebound. Torn
        # pages stay unchecked until their re-seal acks.
        if getattr(self.rm, "_fenced", False) or page_id in self._torn:
            return False
        return page_id not in self.rm._inflight_writes

    def _schedule_confirm(self, page_id: int, version: int) -> None:
        if page_id in self._confirming:
            return
        self._confirming.add(page_id)
        self.sim.process(
            self._confirm(page_id, version), name=f"chaos-confirm:{page_id}"
        )

    def _confirm(self, page_id: int, version: int):
        try:
            yield self.sim.timeout(self.confirm_grace_us)
            self.counters["durability_confirms"] += 1
            state = self.pages.get(page_id)
            if state is None or state.version != version:
                return  # overwritten since; the newer write is checked anew
            if not self._durability_checkable(page_id, state):
                return
            count = self._valid_split_count(page_id, state)
            if count < self.config.k:
                self._violate(
                    "durability",
                    f"page {page_id} v{version}: only {count} of the stored "
                    f"splits decode (need {self.config.k}) after "
                    f"{self.confirm_grace_us:.0f}us grace",
                    page_id=page_id,
                    dedup=("durability", (page_id, version)),
                )
        finally:
            self._confirming.discard(page_id)

    # ------------------------------------------------------------------
    # stored-split inspection
    # ------------------------------------------------------------------
    def _expected_splits(self, page_id: int, state: _PageState) -> Optional[np.ndarray]:
        cached = self._expected_cache.get(page_id)
        if cached is not None and cached[0] == state.version:
            return cached[1]
        if state.data is None:
            return None
        expected = self.rm.codec.encode(state.data)
        self._expected_cache[page_id] = (state.version, expected)
        return expected

    def _valid_split_count(self, page_id: int, state: _PageState) -> int:
        """How many stored splits of the page's acked version survive.

        Inspects slab contents on alive machines directly — the ground
        truth an oracle repair would have access to.
        """
        rm = self.rm
        range_id, offset = rm.space.locate(page_id)
        address_range = rm.space.get(range_id)
        if address_range is None:
            return 0
        expected = (
            self._expected_splits(page_id, state)
            if self.config.payload_mode == "real"
            else None
        )
        count = 0
        for position, handle in enumerate(address_range.slots):
            machine = self.cluster.machine(handle.machine_id)
            if not machine.alive:
                continue
            slab = machine.hosted_slabs.get(handle.slab_id)
            if slab is None or slab.state not in (
                SlabState.MAPPED,
                SlabState.REGENERATING,
            ):
                continue
            payload = slab.pages.get(offset)
            if expected is not None:
                if isinstance(payload, np.ndarray) and np.array_equal(
                    payload, expected[position]
                ):
                    count += 1
            elif (
                isinstance(payload, PhantomSplit)
                and payload.version == state.version
                and not payload.corrupt
            ):
                count += 1
        return count

    # ------------------------------------------------------------------
    # final audit
    # ------------------------------------------------------------------
    def final_check(self) -> None:
        """End-of-run audit after quiescing (no grace, no excuses)."""
        for page_id in sorted(self.pages):
            state = self.pages[page_id]
            if page_id in self._torn:
                # Torn by a failover and never successfully re-sealed:
                # the outstanding overwrite voids the byte-level promise
                # (same contract as on_page_lost for torn pages).
                self.counters["torn_after_quiesce"] = (
                    self.counters.get("torn_after_quiesce", 0) + 1
                )
                continue
            if state.durable_version != state.version:
                self._violate(
                    "durability",
                    f"page {page_id} v{state.version}: write never became "
                    "durable (parity phase still open after quiesce)",
                    page_id=page_id,
                )
                continue
            count = self._valid_split_count(page_id, state)
            if count < self.config.k:
                self._violate(
                    "durability",
                    f"page {page_id} v{state.version}: only {count} stored "
                    f"splits decode after quiesce (need {self.config.k})",
                    page_id=page_id,
                    dedup=("durability", (page_id, state.version)),
                )
        for key, started in sorted(self.open_regens.items()):
            self._violate(
                "liveness",
                f"regeneration of range {key[0]} position {key[1]} still open "
                f"after quiesce (started {started:.1f}us)",
                dedup=("liveness", key),
            )
        for address_range in self.rm.space.all_ranges():
            missing = [
                p
                for p in range(address_range.n)
                if not address_range.handle(p).available
            ]
            if missing:
                self._violate(
                    "liveness",
                    f"range {address_range.range_id} positions {missing} "
                    "still unavailable after quiesce",
                )

    def record_audit_mismatch(self, page_id: int, detail: str) -> None:
        """The engine's read-back audit found wrong/unreadable data."""
        self._violate(
            "durability", detail, page_id=page_id, dedup=("audit", page_id)
        )

    # ------------------------------------------------------------------
    @property
    def torn_pages(self) -> frozenset:
        """Pages torn by a failover and not yet re-sealed (see rebind)."""
        return frozenset(self._torn)

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> Dict:
        """Deterministic JSON-able summary of what the monitor saw."""
        return {
            "ok": self.ok,
            "counters": dict(sorted(self.counters.items())),
            "regen_outcomes": dict(sorted(self.regen_outcomes.items())),
            "violations": [v.to_dict() for v in self.violations],
        }

    def _violate(
        self,
        invariant: str,
        detail: str,
        page_id: Optional[int] = None,
        dedup: Optional[Tuple] = None,
    ) -> None:
        if dedup is not None:
            if dedup in self._flagged:
                return
            self._flagged.add(dedup)
        self.violations.append(
            Violation(
                invariant=invariant,
                at_us=self.sim.now,
                detail=detail,
                page_id=page_id,
            )
        )
        if self.flight is not None:
            self.flight.note(
                "violation",
                self.sim.now,
                invariant=invariant,
                page_id=page_id,
                detail=detail,
            )
