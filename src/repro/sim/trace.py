"""Measurement primitives: latency recorders, time series, throughput windows.

These are the instruments behind every figure and table in the evaluation:
latency percentiles (Figs 10-12, 14, Tables 2-3), throughput timelines
(Figs 2, 15), and distribution summaries (Fig 17).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "Histogram",
    "LatencyRecorder",
    "TimeSeries",
    "ThroughputWindow",
    "Counter",
    "DistributionSummary",
    "summarize",
]


class Histogram:
    """Log-bucketed (HDR-style) value histogram: O(1) record, constant
    memory, exact-bucket percentiles, deterministic merge.

    Buckets are geometric: a value ``v > 0`` lands in sub-bucket
    ``floor((m - 0.5) * 2 * subbuckets)`` of its binary octave
    (``v = m * 2**e`` via :func:`math.frexp`), giving a worst-case
    relative bucket width of ``1/subbuckets`` (~3 % at the default 32).
    Percentiles report the *upper bound* of the bucket holding the
    requested rank — a pure function of the bucket counts, so two
    histograms with equal buckets report byte-identical percentiles and
    merging shards is associative and order-independent on the buckets.
    ``sum``/``min``/``max`` are tracked exactly.

    Zero values get a dedicated bucket (``frexp`` has no octave for 0).
    Sparse storage: only occupied buckets take memory, bounded by the
    dynamic range (~64 octaves x subbuckets), never by the sample count.
    """

    __slots__ = ("name", "subbuckets", "count", "sum", "min", "max",
                 "zero", "buckets")

    PERCENTILES = (50.0, 90.0, 99.0, 99.9)

    def __init__(self, name: str = "", subbuckets: int = 32):
        if subbuckets < 1:
            raise ValueError(f"subbuckets must be >= 1, got {subbuckets}")
        self.name = name
        self.subbuckets = subbuckets
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zero = 0  # count of exactly-0.0 samples
        self.buckets: Dict[int, int] = {}

    # -- recording -----------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        if value < 0:
            raise ValueError(f"negative value in histogram {self.name!r}: {value}")
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value == 0.0:
            self.zero += count
            return
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + count

    def _index(self, value: float) -> int:
        mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
        sub = int((mantissa - 0.5) * 2.0 * self.subbuckets)
        if sub >= self.subbuckets:  # guard the m -> 1.0 rounding edge
            sub = self.subbuckets - 1
        return exponent * self.subbuckets + sub

    def bucket_upper(self, index: int) -> float:
        """Exclusive upper bound of bucket ``index`` (a pure function of
        the index — the value percentiles report)."""
        exponent, sub = divmod(index, self.subbuckets)
        return math.ldexp(0.5 + (sub + 1) / (2.0 * self.subbuckets), exponent)

    def bucket_lower(self, index: int) -> float:
        exponent, sub = divmod(index, self.subbuckets)
        return math.ldexp(0.5 + sub / (2.0 * self.subbuckets), exponent)

    # -- reading -------------------------------------------------------
    def percentile(self, pct: float) -> float:
        """Upper bound of the bucket containing the ``pct``-th rank."""
        if self.count == 0:
            raise ValueError(f"no samples recorded in histogram {self.name!r}")
        rank = min(self.count, max(1, math.ceil(pct / 100.0 * self.count)))
        cumulative = self.zero
        if cumulative >= rank:
            return 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return self.bucket_upper(index)
        return self.bucket_upper(max(self.buckets))  # pragma: no cover

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"no samples recorded in histogram {self.name!r}")
        return self.sum / self.count

    def percentiles(self) -> Dict[str, float]:
        """The standard p50/p90/p99/p999 quadruple from the buckets."""
        return {
            "p" + format(pct, "g").replace(".", ""): self.percentile(pct)
            for pct in self.PERCENTILES
        }

    def cumulative_buckets(self):
        """(upper_bound, cumulative_count) pairs, ascending — Prometheus
        ``le`` exposition and CDF plots."""
        out = []
        cumulative = self.zero
        if self.zero:
            out.append((0.0, cumulative))
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            out.append((self.bucket_upper(index), cumulative))
        return out

    # -- merge / transport ---------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (in place; returns self).

        Bucket counts add, so merge order never changes buckets or the
        percentiles derived from them — the property the ``-j N`` shard
        runner relies on.
        """
        if other.subbuckets != self.subbuckets:
            raise ValueError(
                f"cannot merge histograms with different resolutions: "
                f"{self.subbuckets} vs {other.subbuckets}"
            )
        self.count += other.count
        self.sum += other.sum
        self.zero += other.zero
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    def to_dict(self) -> Dict:
        """JSON-friendly, canonical (bucket keys sorted) form."""
        return {
            "name": self.name,
            "subbuckets": self.subbuckets,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zero": self.zero,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Histogram":
        hist = cls(data.get("name", ""), subbuckets=data["subbuckets"])
        hist.count = data["count"]
        hist.sum = data["sum"]
        hist.min = data["min"]
        hist.max = data["max"]
        hist.zero = data.get("zero", 0)
        hist.buckets = {int(i): c for i, c in data["buckets"].items()}
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, n={self.count}, "
            f"occupied_buckets={len(self.buckets)})"
        )


class LatencyRecorder:
    """Accumulates latency samples and reports percentiles.

    All latencies are in microseconds, matching the kernel's time unit.

    Storage is bounded: every sample lands in a log-bucketed
    :class:`Histogram` (constant memory), and the first
    ``reservoir_limit`` samples are additionally kept verbatim in
    ``samples``. While the reservoir holds *all* samples the percentile /
    mean properties are computed exactly from it (bit-identical to the
    historical unbounded recorder, which the perf-suite anchors pin);
    once a run outgrows the reservoir they switch to the histogram's
    bucket-exact values. ``max`` is exact either way.
    """

    DEFAULT_RESERVOIR = 4096

    def __init__(self, name: str = "", reservoir_limit: int = DEFAULT_RESERVOIR):
        self.name = name
        self.reservoir_limit = reservoir_limit
        self.samples: List[float] = []
        self.hist = Histogram(name)

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency: {latency_us}")
        self.hist.record(latency_us)
        if len(self.samples) < self.reservoir_limit:
            self.samples.append(latency_us)

    def extend(self, latencies: Sequence[float]) -> None:
        for value in latencies:
            self.record(value)

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds every sample."""
        return self.hist.count <= len(self.samples)

    def __len__(self) -> int:
        return self.hist.count

    @property
    def count(self) -> int:
        return self.hist.count

    def percentile(self, pct: float) -> float:
        if self.hist.count == 0:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if self.exact:
            return float(np.percentile(self.samples, pct))
        return self.hist.percentile(pct)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        if self.hist.count == 0:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if self.exact:
            return float(np.mean(self.samples))
        return self.hist.mean

    @property
    def max(self) -> float:
        if self.hist.count == 0:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if self.exact:
            return float(np.max(self.samples))
        return float(self.hist.max)

    def summary(self) -> "DistributionSummary":
        if self.exact:
            return summarize(self.samples, name=self.name)
        return DistributionSummary(
            name=self.name,
            count=self.hist.count,
            mean=self.hist.mean,
            p50=self.hist.percentile(50),
            p90=self.hist.percentile(90),
            p99=self.hist.percentile(99),
            max=float(self.hist.max),
        )


@dataclass
class DistributionSummary:
    """Five-number-style summary of a sample set."""

    name: str
    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    def __str__(self) -> str:
        return (
            f"{self.name or 'latency'}: n={self.count} mean={self.mean:.2f} "
            f"p50={self.p50:.2f} p90={self.p90:.2f} p99={self.p99:.2f} "
            f"max={self.max:.2f}"
        )


def summarize(samples: Sequence[float], name: str = "") -> DistributionSummary:
    """Build a :class:`DistributionSummary` from raw samples."""
    if len(samples) == 0:
        raise ValueError(f"cannot summarize empty sample set {name!r}")
    arr = np.asarray(samples, dtype=np.float64)
    return DistributionSummary(
        name=name,
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
    )


class TimeSeries:
    """(time, value) samples, e.g. instantaneous memory usage per machine."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return self.values[-1]

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.mean(self.values))

    def as_arrays(self):
        return np.asarray(self.times), np.asarray(self.values)


class ThroughputWindow:
    """Counts completions in fixed windows — throughput-over-time figures.

    ``window_us`` is the bucket width. ``series()`` returns
    (window_start_times, ops_per_second).
    """

    def __init__(self, window_us: float, name: str = ""):
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        self.window_us = window_us
        self.name = name
        self._buckets: Dict[int, int] = {}

    def record(self, time_us: float, count: int = 1) -> None:
        if time_us < 0:
            raise ValueError(
                f"negative time in window {self.name!r}: {time_us}"
            )
        bucket = int(time_us // self.window_us)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + count

    def series(self):
        """(start_times_us, throughput_ops_per_sec) over the covered span."""
        if not self._buckets:
            return np.array([]), np.array([])
        lo, hi = min(self._buckets), max(self._buckets)
        starts = np.arange(lo, hi + 1) * self.window_us
        per_window = np.array(
            [self._buckets.get(b, 0) for b in range(lo, hi + 1)], dtype=np.float64
        )
        ops_per_sec = per_window * (1e6 / self.window_us)
        return starts, ops_per_sec

    def total(self) -> int:
        return sum(self._buckets.values())


@dataclass
class Counter:
    """A named bag of monotonically increasing counters."""

    counts: Dict[str, int] = field(default_factory=dict)

    def incr(self, key: str, amount: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self.counts.get(key, 0)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"Counter({inner})"


def imbalance_ratio(values: Sequence[float]) -> float:
    """max/min ratio used for Fig 17's memory-usage skew metric.

    A zero minimum yields ``inf`` — callers should ensure all machines saw
    some load before calling, or handle inf.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("imbalance_ratio of empty sequence")
    lo = arr.min()
    if lo <= 0:
        return math.inf
    return float(arr.max() / lo)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stddev/mean — the 'memory usage variation' percentage in §7.4."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("coefficient_of_variation of empty sequence")
    mean = arr.mean()
    if mean == 0:
        return math.inf
    return float(arr.std() / mean)
