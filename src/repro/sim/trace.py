"""Measurement primitives: latency recorders, time series, throughput windows.

These are the instruments behind every figure and table in the evaluation:
latency percentiles (Figs 10-12, 14, Tables 2-3), throughput timelines
(Figs 2, 15), and distribution summaries (Fig 17).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "LatencyRecorder",
    "TimeSeries",
    "ThroughputWindow",
    "Counter",
    "DistributionSummary",
    "summarize",
]


class LatencyRecorder:
    """Accumulates latency samples and reports percentiles.

    All latencies are in microseconds, matching the kernel's time unit.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency: {latency_us}")
        self.samples.append(latency_us)

    def extend(self, latencies: Sequence[float]) -> None:
        for value in latencies:
            self.record(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, pct: float) -> float:
        if not self.samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        return float(np.percentile(self.samples, pct))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        return float(np.mean(self.samples))

    @property
    def max(self) -> float:
        if not self.samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        return float(np.max(self.samples))

    def summary(self) -> "DistributionSummary":
        return summarize(self.samples, name=self.name)


@dataclass
class DistributionSummary:
    """Five-number-style summary of a sample set."""

    name: str
    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    def __str__(self) -> str:
        return (
            f"{self.name or 'latency'}: n={self.count} mean={self.mean:.2f} "
            f"p50={self.p50:.2f} p90={self.p90:.2f} p99={self.p99:.2f} "
            f"max={self.max:.2f}"
        )


def summarize(samples: Sequence[float], name: str = "") -> DistributionSummary:
    """Build a :class:`DistributionSummary` from raw samples."""
    if len(samples) == 0:
        raise ValueError(f"cannot summarize empty sample set {name!r}")
    arr = np.asarray(samples, dtype=np.float64)
    return DistributionSummary(
        name=name,
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
    )


class TimeSeries:
    """(time, value) samples, e.g. instantaneous memory usage per machine."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return self.values[-1]

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.mean(self.values))

    def as_arrays(self):
        return np.asarray(self.times), np.asarray(self.values)


class ThroughputWindow:
    """Counts completions in fixed windows — throughput-over-time figures.

    ``window_us`` is the bucket width. ``series()`` returns
    (window_start_times, ops_per_second).
    """

    def __init__(self, window_us: float, name: str = ""):
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        self.window_us = window_us
        self.name = name
        self._buckets: Dict[int, int] = {}

    def record(self, time_us: float, count: int = 1) -> None:
        if time_us < 0:
            raise ValueError(
                f"negative time in window {self.name!r}: {time_us}"
            )
        bucket = int(time_us // self.window_us)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + count

    def series(self):
        """(start_times_us, throughput_ops_per_sec) over the covered span."""
        if not self._buckets:
            return np.array([]), np.array([])
        lo, hi = min(self._buckets), max(self._buckets)
        starts = np.arange(lo, hi + 1) * self.window_us
        per_window = np.array(
            [self._buckets.get(b, 0) for b in range(lo, hi + 1)], dtype=np.float64
        )
        ops_per_sec = per_window * (1e6 / self.window_us)
        return starts, ops_per_sec

    def total(self) -> int:
        return sum(self._buckets.values())


@dataclass
class Counter:
    """A named bag of monotonically increasing counters."""

    counts: Dict[str, int] = field(default_factory=dict)

    def incr(self, key: str, amount: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self.counts.get(key, 0)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"Counter({inner})"


def imbalance_ratio(values: Sequence[float]) -> float:
    """max/min ratio used for Fig 17's memory-usage skew metric.

    A zero minimum yields ``inf`` — callers should ensure all machines saw
    some load before calling, or handle inf.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("imbalance_ratio of empty sequence")
    lo = arr.min()
    if lo <= 0:
        return math.inf
    return float(arr.max() / lo)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stddev/mean — the 'memory usage variation' percentage in §7.4."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("coefficient_of_variation of empty sequence")
    mean = arr.mean()
    if mean == 0:
        return math.inf
    return float(arr.std() / mean)
