"""Discrete-event simulation kernel (time unit: microseconds)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, Store
from .rng import RandomSource
from .trace import (
    Counter,
    DistributionSummary,
    Histogram,
    LatencyRecorder,
    ThroughputWindow,
    TimeSeries,
    coefficient_of_variation,
    imbalance_ratio,
    summarize,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Resource",
    "Store",
    "RandomSource",
    "Counter",
    "DistributionSummary",
    "Histogram",
    "LatencyRecorder",
    "ThroughputWindow",
    "TimeSeries",
    "coefficient_of_variation",
    "imbalance_ratio",
    "summarize",
]
