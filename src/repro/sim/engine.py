"""Discrete-event simulation kernel.

A minimal, dependency-free event engine in the style of SimPy. The rest of
the repository models physical time (RDMA verbs, SSD accesses, erasure
coding) on top of this kernel; the time unit everywhere is the
**microsecond**, carried as a float.

Core concepts
-------------
``Event``
    A one-shot occurrence. It can *succeed* with a value or *fail* with an
    exception. Callbacks attached to the event run when the simulator
    processes it.
``Timeout``
    An event that succeeds after a fixed simulated delay.
``Process``
    A generator wrapped as a coroutine. Each ``yield event`` suspends the
    process until the event triggers; the event's value is returned from the
    ``yield`` expression (or its exception is thrown into the generator).
``AnyOf`` / ``AllOf``
    Composite conditions over several events.
``Simulator``
    Owns the event queue and the clock.

Scheduling
----------
The default scheduler is a **calendar queue**: time is divided into
fixed-width buckets (the *bucket width*, a power of two so the float
``time -> bucket`` mapping is exact), the buckets form a ring (the *year*),
and events beyond the ring's horizon wait in an overflow heap that is
drained into buckets as the clock approaches them. Inserting an event is an
O(1) list append; extracting is a batched, sorted drain of one bucket at a
time. ``Simulator(scheduler="heap")`` selects the reference binary-heap
scheduler instead — same dispatch order, useful as an oracle in tests.

Dispatch order is a total order in both schedulers: ``(time, seq)`` where
``seq`` is a monotonically increasing sequence number assigned at
scheduling. Events at the same instant therefore run in FIFO order of
scheduling, and the calendar queue is byte-for-byte equivalent to the heap
(pinned by ``tests/test_scheduler_equivalence.py``). See
``docs/SCALING.md`` for the design and its invariants.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(5.0)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from bisect import bisect_right as _bisect_right
from heapq import heappop as _heappop, heappush as _heappush
from math import frexp as _frexp
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, available via
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # not yet triggered
_TRIGGERED = 1  # scheduled for processing, value/exception set
_PROCESSED = 2  # callbacks have run
# Negative so the `triggered` check (state >= _TRIGGERED) stays one compare.
_CANCELLED = -1  # scheduled entry revoked; the dispatcher discards it

_STATE_NAMES = {
    _PENDING: "pending",
    _TRIGGERED: "triggered",
    _PROCESSED: "processed",
    _CANCELLED: "cancelled",
}

_INF = float("inf")

# Dispatch-loop fast path: scheduled completions are plain closures, so an
# exact class check skips the isinstance(Event) probe for the common case.
_FunctionType = type(lambda: None)

# Cancelled-entry compaction: sweep the calendar once at least this many
# cancelled entries are buffered AND they outnumber the live entries.
_COMPACT_MIN = 64


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    Events move through three states: pending, triggered (value set and
    scheduled on the queue), and processed (callbacks executed).
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._ok = True
        self.name = name

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (may not be processed yet)."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has revoked the scheduled event."""
        return self._state == _CANCELLED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result; raises its exception if the event failed."""
        if self._state == _PENDING or self._state == _CANCELLED:
            raise SimulationError(f"value of {self!r} is not available")
        if not self._ok:
            raise self._value
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None if pending/succeeded."""
        if self._state != _PENDING and not self._ok:
            return self._value
        return None

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.sim._schedule(self)
        return self

    def succeed_now(self, value: Any = None) -> "Event":
        """Trigger the event and run its callbacks synchronously.

        Equivalent to :meth:`succeed` followed immediately by this event's
        dispatch, with no other queue entry in between. Only valid from
        code already executing inside the dispatch loop (a callback or a
        ``call_later`` callable): the callbacks run at the current
        simulation time, in the caller's stack frame. Callers must not
        touch shared state after the call that a resumed waiter could
        have already rewritten.
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _PROCESSED
        callbacks = self.callbacks
        self.callbacks = []
        for callback in callbacks:
            callback(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._state = _TRIGGERED
        self.sim._schedule(self)
        return self

    def cancel(self) -> "Event":
        """Revoke a triggered-but-unprocessed event (e.g. a pending
        :class:`Timeout` deadline that lost a race).

        The scheduled entry is discarded lazily: callbacks are dropped now
        and the eventual pop neither advances the clock nor runs anything.
        Under the calendar scheduler, cancelled entries are additionally
        *compacted* — once they outnumber the live entries (and exceed a
        small floor), one sweep reclaims their bucket and overflow slots so
        a cancel-heavy workload (timeout races) cannot pin memory until the
        simulated deadline arrives. Cancelling an event that has not been
        scheduled (pending) or has already been processed is an error.
        """
        if self._state != _TRIGGERED:
            raise SimulationError(f"cannot cancel {self!r}")
        self._state = _CANCELLED
        self.callbacks = []
        sim = self.sim
        if not sim._heap_mode:
            sim._cancel_pending = pending = sim._cancel_pending + 1
            if pending >= _COMPACT_MIN and pending * 2 > sim._count + len(sim._queue):
                sim._compact()
        return self

    def _mark_processed(self) -> None:
        self._state = _PROCESSED

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        return f"<{label} {_STATE_NAMES[self._state]}>"


class Timeout(Event):
    """An event that succeeds ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Timeouts dominate event volume; initialize the slots directly
        # (no super().__init__), schedule inline (no _schedule call), and
        # leave the display name to __repr__ so the hot path never formats
        # a string.
        self.sim = sim
        self.callbacks = []
        self._state = _TRIGGERED
        self._value = value
        self._ok = True
        self.name = ""
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        when = sim.now + delay
        if when < sim._limit:  # calendar bucket (heap mode: _limit == -inf)
            idx = int(when * sim._inv)
            if idx < sim._cursor:
                sim._cursor = idx
                sim._limit = (idx + sim._nbuckets) * sim._width
            sim._buckets[idx & sim._mask].append((when, seq, self))
            sim._count += 1
        else:
            _heappush(sim._queue, (when, seq, self))

    def __repr__(self) -> str:
        return f"<Timeout({self.delay:g}) {_STATE_NAMES[self._state]}>"


class Process(Event):
    """A running coroutine. The Process *is* an event that triggers when
    the generator returns (success, value = return value) or raises
    (failure)."""

    __slots__ = ("generator", "_waiting_on", "is_alive")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "Process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self.is_alive = True
        # Kick off the process at the current simulation time.
        bootstrap = Event(sim, name="bootstrap")
        bootstrap._ok = True
        bootstrap._state = _TRIGGERED
        bootstrap.callbacks.append(self._resume)
        sim._schedule(bootstrap)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            return
        if self._waiting_on is not None:
            # Detach from whatever we were waiting for.
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        failer = Event(self.sim, name=f"interrupt:{self.name}")
        failer._ok = False
        failer._value = Interrupt(cause)
        failer._state = _TRIGGERED
        failer.callbacks.append(self._resume)
        self.sim._schedule(failer)

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        while True:
            try:
                if trigger._ok:
                    target = self.generator.send(trigger._value)
                else:
                    target = self.generator.throw(trigger._value)
            except StopIteration as stop:
                self.is_alive = False
                # _resume only ever runs from the dispatch loop, so the
                # completion can be delivered synchronously: waiters resume
                # here instead of after one more queue round-trip.
                self.succeed_now(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process crash propagates
                self.is_alive = False
                self.fail(exc)
                return

            if not isinstance(target, Event):
                self.is_alive = False
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded {target!r}, expected an Event"
                    )
                )
                return

            if target._state == _PROCESSED:
                # Already done: resume immediately with its outcome.
                trigger = target
                continue
            target.callbacks.append(self._resume)
            self._waiting_on = target
            return


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise SimulationError(f"{name} requires Events, got {ev!r}")
        self._pending_count = sum(1 for ev in self.events if ev._state != _PROCESSED)
        if self._check_immediate():
            return
        for ev in self.events:
            if ev._state != _PROCESSED:
                ev.callbacks.append(self._on_child)
            # Already-processed children were accounted in _pending_count.

    def _check_immediate(self) -> bool:
        raise NotImplementedError

    def _on_child(self, child: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._state != _PENDING and ev._ok and ev.triggered
        }


class AnyOf(_Condition):
    """Triggers as soon as one child event succeeds (or any child fails)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AnyOf")

    def _check_immediate(self) -> bool:
        if not self.events:
            self.succeed({})
            return True
        for ev in self.events:
            if ev._state == _PROCESSED:
                if ev._ok:
                    self.succeed(self._results())
                else:
                    self.fail(ev._value)
                return True
        return False

    def _on_child(self, child: Event) -> None:
        if self._state != _PENDING:
            return
        if child._ok:
            self.succeed(self._results())
        else:
            self.fail(child._value)


class AllOf(_Condition):
    """Triggers once every child succeeds; fails fast on any child failure."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AllOf")

    def _check_immediate(self) -> bool:
        if self._pending_count == 0:
            for ev in self.events:
                if not ev._ok:
                    self.fail(ev._value)
                    return True
            self.succeed(self._results())
            return True
        return False

    def _on_child(self, child: Event) -> None:
        if self._state != _PENDING:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(self._results())


class Simulator:
    """Owns the clock and the event queue.

    The simulator advances time only through :meth:`run` / :meth:`step`;
    events scheduled at the same instant are processed in FIFO order of
    scheduling (a monotonically increasing sequence number breaks ties).
    The dispatch order — ascending ``(time, seq)`` — is identical under
    both schedulers.

    Parameters
    ----------
    scheduler:
        ``"calendar"`` (default) — bucketed calendar queue with an
        overflow heap; O(1) amortized insert, batched bucket drains.
        ``"heap"`` — the reference binary heap. Same dispatch order.
    bucket_width:
        Calendar bucket width in simulated microseconds. Must be a power
        of two (possibly fractional: 0.5, 1.0, 2.0 ...) so that the
        ``time -> bucket`` float mapping is exact and an event can never
        straddle a bucket boundary through rounding.
    buckets:
        Number of buckets in the calendar ring (a power of two). The ring
        spans ``bucket_width * buckets`` microseconds (the *year*); events
        farther out wait in the overflow heap and are pulled into buckets
        as the year advances.
    """

    def __init__(
        self,
        scheduler: str = "calendar",
        bucket_width: float = 2.0,
        buckets: int = 2048,
    ):
        self.now: float = 0.0
        self._seq = 0
        # `_queue` is the binary heap: the whole queue in heap mode, the
        # far-future overflow in calendar mode. Entries are (time, seq, obj)
        # where obj is an Event, a bare callable, or a list of callables
        # (one fused `call_later_batch` record, seqs consecutive from seq).
        self._queue: List[tuple] = []
        self._scheduler = scheduler
        self._cancel_pending = 0
        if scheduler == "heap":
            self._heap_mode = True
            # _limit = -inf routes every insert to the heap; the calendar
            # fields below are never read on the heap paths.
            self._limit = -_INF
            self._width = 0.0
            self._inv = 0.0
            self._mask = 0
            self._nbuckets = 0
            self._buckets: List[list] = []
            self._cursor = 0
            self._count = 0
            return
        if scheduler != "calendar":
            raise SimulationError(f"unknown scheduler {scheduler!r}")
        if not (bucket_width > 0 and _frexp(bucket_width)[0] == 0.5):
            raise SimulationError(
                f"bucket_width must be a positive power of two, got {bucket_width!r}"
            )
        if buckets < 2 or buckets & (buckets - 1):
            raise SimulationError(f"buckets must be a power of two >= 2, got {buckets}")
        self._heap_mode = False
        self._width = float(bucket_width)
        self._inv = 1.0 / self._width  # exact: width is a power of two
        self._mask = buckets - 1
        self._nbuckets = buckets
        self._buckets = [[] for _ in range(buckets)]
        # `_cursor` is the *absolute* bucket number currently being drained
        # (slot = cursor & mask); `_limit` is the end of the year that
        # starts at the cursor: (_cursor + _nbuckets) * _width. Inserts
        # below _limit go into buckets, at/above it into the overflow heap.
        # `_count` is the number of records resident in buckets.
        self._cursor = 0
        self._count = 0
        self._limit = buckets * self._width

    @property
    def _active(self) -> int:
        """Number of entries ever scheduled (diagnostics).

        Every schedule bumps ``_seq`` exactly once per event (a fused
        batch bumps it once per callable), so the FIFO tiebreaker doubles
        as the counter — one increment per entry instead of two.
        """
        return self._seq

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        when = self.now + delay
        if when < self._limit:  # calendar bucket (heap mode: _limit == -inf)
            idx = int(when * self._inv)
            if idx < self._cursor:
                # Insert behind the cursor (possible after run(until=...)
                # parked the cursor ahead of the clock): pull the year back
                # so the advance loop revisits this bucket. Entries already
                # placed under the larger old year stay put — the drain's
                # year check defers them to their own window.
                self._cursor = idx
                self._limit = (idx + self._nbuckets) * self._width
            self._buckets[idx & self._mask].append((when, seq, event))
            self._count += 1
        else:
            _heappush(self._queue, (when, seq, event))

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` — one queue entry, no process.

        The cheap primitive behind high-volume completions (RDMA verbs);
        use processes for anything that needs to wait again afterwards.
        The callable goes on the queue bare — no Event, no callback list,
        no closure — and the dispatch loops invoke it directly.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq = seq = self._seq + 1
        when = self.now + delay
        if when < self._limit:  # calendar bucket (heap mode: _limit == -inf)
            idx = int(when * self._inv)
            if idx < self._cursor:
                self._cursor = idx
                self._limit = (idx + self._nbuckets) * self._width
            self._buckets[idx & self._mask].append((when, seq, fn))
            self._count += 1
        else:
            _heappush(self._queue, (when, seq, fn))

    def call_later_batch(self, delay: float, fns: Iterable[Callable[[], None]]) -> None:
        """Schedule a fused batch of bare callables at the same instant.

        Semantically identical to ``for fn in fns: call_later(delay, fn)``
        — each callable gets its own consecutive sequence number, so the
        dispatch order (and ``_active``) are exactly those of the unfused
        calls — but the whole burst costs one queue record. This is the
        delivery primitive for completion bursts (a NIC draining a CQ):
        under the calendar scheduler the batch is appended, sorted and
        dispatched as a unit, which is where the bulk of the events/s
        headroom in ``engine_events_calendar`` comes from.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        fns = list(fns)
        if not fns:
            return
        seq = self._seq + 1
        self._seq += len(fns)
        when = self.now + delay
        if when < self._limit:  # calendar bucket (heap mode: _limit == -inf)
            idx = int(when * self._inv)
            if idx < self._cursor:
                self._cursor = idx
                self._limit = (idx + self._nbuckets) * self._width
            self._buckets[idx & self._mask].append((when, seq, fns))
            self._count += 1
        else:
            _heappush(self._queue, (when, seq, fns))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds after ``delay`` simulated microseconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- calendar internals ----------------------------------------------
    def _refill(self, limit: float) -> None:
        """Move overflow entries due before ``limit`` into their buckets."""
        queue = self._queue
        buckets = self._buckets
        inv = self._inv
        mask = self._mask
        moved = 0
        while queue and queue[0][0] < limit:
            entry = _heappop(queue)
            buckets[int(entry[0] * inv) & mask].append(entry)
            moved += 1
        self._count += moved

    def _calendar_min(self) -> Optional[tuple]:
        """Advance the cursor to the bucket holding the globally next
        ``(time, seq)`` entry and return ``(bucket, entry)`` — or None if
        the queue is fully drained. Bookkeeping only: nothing is removed
        or dispatched, so this backs both ``peek`` and the single-step
        paths."""
        queue = self._queue
        buckets = self._buckets
        mask = self._mask
        width = self._width
        while True:
            if not self._count:
                if not queue:
                    return None
                # Jump the cursor straight to the first overflow year
                # instead of scanning empty buckets toward it.
                cursor = int(queue[0][0] * self._inv)
                self._cursor = cursor
                self._limit = (cursor + self._nbuckets) * width
                self._refill(self._limit)
            cursor = self._cursor
            limit = self._limit
            nxt = queue[0][0] if queue else _INF
            while True:
                bucket = buckets[cursor & mask]
                if bucket:
                    entry = min(bucket)
                    if entry[0] < (cursor + 1) * width:  # in this year
                        self._cursor = cursor
                        self._limit = limit
                        return (bucket, entry)
                cursor += 1
                limit += width
                if nxt < limit:
                    self._cursor = cursor
                    self._limit = limit
                    self._refill(limit)
                    nxt = queue[0][0] if queue else _INF
            # not reached: the inner loop only exits via return

    def _compact(self) -> None:
        """Drop cancelled entries from buckets and overflow in one sweep.

        Observationally free: a cancelled entry would have been discarded
        at dispatch with no clock advance and no callbacks, so removing it
        early changes nothing but memory (and ``peek()`` on a queue whose
        head was cancelled). Dispatch order of live entries is untouched.
        """
        removed = 0
        for bucket in self._buckets:
            if not bucket:
                continue
            kept = [
                entry
                for entry in bucket
                if not (isinstance(entry[2], Event) and entry[2]._state == _CANCELLED)
            ]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                bucket[:] = kept
        self._count -= removed
        queue = self._queue
        kept = [
            entry
            for entry in queue
            if not (isinstance(entry[2], Event) and entry[2]._state == _CANCELLED)
        ]
        if len(kept) != len(queue):
            heapq.heapify(kept)
            self._queue[:] = kept
        self._cancel_pending = 0

    # -- execution -------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._heap_mode:
            return self._queue[0][0] if self._queue else _INF
        found = self._calendar_min()
        return found[1][0] if found else _INF

    def step(self) -> None:
        """Process exactly one event (discarding cancelled entries, which
        neither advance the clock nor count as the processed event). A
        fused ``call_later_batch`` record counts one callable per step."""
        if self._heap_mode:
            self._step_heap()
            return
        if not self._count and not self._queue:
            raise SimulationError("step() on an empty event queue")
        while True:
            found = self._calendar_min()
            if found is None:
                return  # only cancelled entries remained
            bucket, entry = found
            bucket.remove(entry)
            self._count -= 1
            when, seq, obj = entry
            cls = obj.__class__
            if cls is list:
                # Split the batch: dispatch the first callable, put the
                # remainder back with the next consecutive seq.
                if len(obj) > 1:
                    bucket.append((when, seq + 1, obj[1:]))
                    self._count += 1
                self.now = when
                obj[0]()
                return
            if isinstance(obj, Event):
                if obj._state == _CANCELLED:
                    if self._cancel_pending:
                        self._cancel_pending -= 1
                    if not self._count and not self._queue:
                        return
                    continue
                self.now = when
                callbacks, obj.callbacks = obj.callbacks, []
                obj._state = _PROCESSED
                for callback in callbacks:
                    callback(obj)
            else:
                self.now = when
                obj()  # bare call_later callable
            return

    def _step_heap(self) -> None:
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        while self._queue:
            when, seq, event = heapq.heappop(self._queue)
            cls = event.__class__
            if cls is list:
                if len(event) > 1:
                    _heappush(self._queue, (when, seq + 1, event[1:]))
                self.now = when
                event[0]()
                return
            if isinstance(event, Event):
                if event._state == _CANCELLED:
                    continue
                self.now = when
                callbacks, event.callbacks = event.callbacks, []
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
            else:
                self.now = when
                event()  # bare call_later callable
            return

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier.

        Calendar dispatch drains one bucket at a time: snapshot, sort (the
        explicit ``(time, seq)`` records make the sort the exact global
        order), then dispatch timestamp batches. Entries scheduled during
        dispatch into the live bucket are merged in after the current
        timestamp batch, so same-time arrivals join this drain exactly as
        they would surface from a heap. Cancelled entries are discarded
        without advancing the clock.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        if self._heap_mode:
            self._run_heap(until)
            return
        horizon = _INF if until is None else until
        queue = self._queue
        buckets = self._buckets
        mask = self._mask
        width = self._width
        inv = self._inv
        while self._count or queue:
            if not self._count:
                if queue[0][0] > horizon:
                    break
                cursor = int(queue[0][0] * inv)
                self._cursor = cursor
                self._limit = (cursor + self._nbuckets) * width
                self._refill(self._limit)
            elif queue and queue[0][0] < self._limit:
                # The drain-end cursor advance below grows the year window
                # one bucket at a time without touching the overflow; pull
                # in anything that fell inside the window before reading
                # the bucket, or a same-timestamp overflow entry could
                # dispatch a whole year late.
                self._refill(self._limit)
            cursor = self._cursor
            slot = cursor & mask
            bucket = buckets[slot]
            if not bucket:
                # Advance to the next non-empty bucket, pulling overflow
                # entries in as the year window slides.
                limit = self._limit
                nxt = queue[0][0] if queue else _INF
                while True:
                    cursor += 1
                    limit += width
                    if nxt < limit:
                        self._cursor = cursor
                        self._limit = limit
                        self._refill(limit)
                        nxt = queue[0][0] if queue else _INF
                    slot = cursor & mask
                    bucket = buckets[slot]
                    if bucket:
                        break
                self._cursor = cursor
                self._limit = limit
            # Drain this bucket. Records whose time falls beyond this
            # year's window (possible only after a cursor pull-back) are
            # split off and deferred to their own window.
            bucket.sort()
            end = (cursor + 1) * width
            residue = None
            if bucket[-1][0] >= end:
                cut = _bisect_right(bucket, (end,))
                if cut == 0:
                    self._cursor = cursor + 1
                    self._limit += width
                    continue
                residue = bucket[cut:]
                del bucket[cut:]
            entries = bucket
            buckets[slot] = fresh = []
            self._count -= len(entries)
            i = 0
            n = len(entries)
            stopped = False
            while i < n:
                when = entries[i][0]
                if when > horizon:
                    stopped = True
                    break
                # One timestamp batch: everything at `when`, in seq order.
                j = _bisect_right(entries, (when, _INF), i)
                for _t, _s, obj in entries[i:j]:
                    cls = obj.__class__
                    if cls is list:
                        self.now = when
                        for fn in obj:
                            fn()
                    elif isinstance(obj, Event):
                        if obj._state != _CANCELLED:
                            self.now = when
                            callbacks = obj.callbacks
                            obj.callbacks = []
                            obj._state = _PROCESSED
                            for callback in callbacks:
                                callback(obj)
                        elif self._cancel_pending:
                            self._cancel_pending -= 1
                    else:
                        self.now = when
                        obj()  # bare call_later callable
                i = j
                if fresh:
                    # Same-bucket arrivals during dispatch: merge and
                    # re-sort so they interleave in exact (time, seq)
                    # order with what is left of the snapshot.
                    rest = entries[i:]
                    rest += fresh
                    rest.sort()
                    entries = rest
                    self._count -= len(fresh)
                    buckets[slot] = fresh = []
                    i = 0
                    n = len(entries)
            if stopped or residue:
                put_back = buckets[slot]
                if stopped:
                    put_back += entries[i:]
                    self._count += n - i
                if residue:
                    put_back += residue
                    self._count += len(residue)
                if stopped:
                    break
            self._cursor = cursor + 1
            self._limit += width
        if until is not None and self.now < until:
            self.now = until

    def _run_heap(self, until: Optional[float]) -> None:
        queue = self._queue
        pop = heapq.heappop
        horizon = _INF if until is None else until
        while queue:
            when = queue[0][0]
            if when > horizon:
                break
            # Batched same-timestamp dispatch: everything scheduled for
            # this instant drains without re-checking the horizon (entries
            # created during dispatch land at >= `when`, so FIFO order is
            # unchanged; same-time arrivals join this drain). Cancelled
            # entries are discarded without advancing the clock.
            while True:
                event = pop(queue)[2]
                cls = event.__class__
                if cls is list:
                    self.now = when
                    for fn in event:
                        fn()
                elif isinstance(event, Event):
                    if event._state != _CANCELLED:
                        self.now = when
                        callbacks = event.callbacks
                        event.callbacks = []
                        event._state = _PROCESSED
                        for callback in callbacks:
                            callback(event)
                else:
                    self.now = when
                    event()  # bare call_later callable
                if not queue or queue[0][0] != when:
                    break
        if until is not None:
            self.now = max(self.now, until)

    def run_until_triggered(self, event: Event, until: Optional[float] = None) -> None:
        """Run just until ``event`` triggers (or the queue/deadline ends).

        Preferred over ``run()`` when daemon processes (e.g. periodic
        monitors) keep the queue permanently non-empty. A fused batch
        record dispatches atomically under both schedulers; the target's
        state is re-checked between records.
        """
        if self._heap_mode:
            self._run_until_triggered_heap(event, until)
            return
        # Same amortized bucket drain as :meth:`run` — snapshot, sort once,
        # dispatch in exact (time, seq) order — with the target's state
        # checked between dispatches; undispatched entries are put back
        # verbatim (they keep their records, so the next drain re-sorts
        # them into the identical global order). This replaces the old
        # single-step path, whose per-event ``_calendar_min`` scan plus
        # ``bucket.remove`` made the driver-stepped benchmarks pay O(bucket)
        # twice per dispatched event.
        horizon = _INF if until is None else until
        queue = self._queue
        buckets = self._buckets
        mask = self._mask
        width = self._width
        while event._state == _PENDING and (self._count or queue):
            if not self._count:
                if queue[0][0] > horizon:
                    return
                cursor = int(queue[0][0] * self._inv)
                self._cursor = cursor
                self._limit = (cursor + self._nbuckets) * width
                self._refill(self._limit)
            elif queue and queue[0][0] < self._limit:
                self._refill(self._limit)
            cursor = self._cursor
            slot = cursor & mask
            bucket = buckets[slot]
            if not bucket:
                limit = self._limit
                nxt = queue[0][0] if queue else _INF
                while True:
                    cursor += 1
                    limit += width
                    if nxt < limit:
                        self._cursor = cursor
                        self._limit = limit
                        self._refill(limit)
                        nxt = queue[0][0] if queue else _INF
                    slot = cursor & mask
                    bucket = buckets[slot]
                    if bucket:
                        break
                self._cursor = cursor
                self._limit = limit
            bucket.sort()
            end = (cursor + 1) * width
            residue = None
            if bucket[-1][0] >= end:
                cut = _bisect_right(bucket, (end,))
                if cut == 0:
                    self._cursor = cursor + 1
                    self._limit += width
                    continue
                residue = bucket[cut:]
                del bucket[cut:]
            entries = bucket
            buckets[slot] = fresh = []
            self._count -= len(entries)
            i = 0
            n = len(entries)
            stopped = False
            while i < n:
                when, _seq, obj = entries[i]
                if when > horizon or event._state != _PENDING:
                    stopped = True
                    break
                i += 1
                cls = obj.__class__
                if cls is _FunctionType:
                    self.now = when
                    obj()  # bare call_later closure — the common case
                elif cls is list:
                    # A fused batch record dispatches atomically, exactly
                    # as the single-step path did.
                    self.now = when
                    for fn in obj:
                        fn()
                elif isinstance(obj, Event):
                    if obj._state == _CANCELLED:
                        if self._cancel_pending:
                            self._cancel_pending -= 1
                        continue  # revoked deadline: no clock advance
                    self.now = when
                    callbacks = obj.callbacks
                    obj.callbacks = []
                    obj._state = _PROCESSED
                    for callback in callbacks:
                        callback(obj)
                else:
                    self.now = when
                    obj()  # bare call_later callable
                if fresh:
                    # Same-bucket arrivals during dispatch: merge so they
                    # interleave in exact (time, seq) order.
                    rest = entries[i:]
                    rest += fresh
                    rest.sort()
                    entries = rest
                    self._count -= len(fresh)
                    buckets[slot] = fresh = []
                    i = 0
                    n = len(entries)
            if stopped or residue:
                put_back = buckets[slot]
                if stopped:
                    put_back += entries[i:]
                    self._count += n - i
                if residue:
                    put_back += residue
                    self._count += len(residue)
                if stopped:
                    return
            self._cursor = cursor + 1
            self._limit += width

    def _run_until_triggered_heap(
        self, event: Event, until: Optional[float]
    ) -> None:
        queue = self._queue
        pop = heapq.heappop
        horizon = _INF if until is None else until
        while event._state == _PENDING and queue:
            if queue[0][0] > horizon:
                break
            when, _seq, current = pop(queue)
            cls = current.__class__
            if cls is list:
                self.now = when
                for fn in current:
                    fn()
            elif isinstance(current, Event):
                if current._state == _CANCELLED:
                    continue  # revoked deadline: no clock advance, no work
                self.now = when
                callbacks = current.callbacks
                current.callbacks = []
                current._state = _PROCESSED
                for callback in callbacks:
                    callback(current)
            else:
                self.now = when
                current()  # bare call_later callable
