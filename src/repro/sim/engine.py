"""Discrete-event simulation kernel.

A minimal, dependency-free event engine in the style of SimPy. The rest of
the repository models physical time (RDMA verbs, SSD accesses, erasure
coding) on top of this kernel; the time unit everywhere is the
**microsecond**, carried as a float.

Core concepts
-------------
``Event``
    A one-shot occurrence. It can *succeed* with a value or *fail* with an
    exception. Callbacks attached to the event run when the simulator
    processes it.
``Timeout``
    An event that succeeds after a fixed simulated delay.
``Process``
    A generator wrapped as a coroutine. Each ``yield event`` suspends the
    process until the event triggers; the event's value is returned from the
    ``yield`` expression (or its exception is thrown into the generator).
``AnyOf`` / ``AllOf``
    Composite conditions over several events.
``Simulator``
    Owns the event queue and the clock.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(5.0)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, available via
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # not yet triggered
_TRIGGERED = 1  # scheduled for processing, value/exception set
_PROCESSED = 2  # callbacks have run
# Negative so the `triggered` check (state >= _TRIGGERED) stays one compare.
_CANCELLED = -1  # scheduled entry revoked; the dispatcher discards it

_STATE_NAMES = {
    _PENDING: "pending",
    _TRIGGERED: "triggered",
    _PROCESSED: "processed",
    _CANCELLED: "cancelled",
}


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    Events move through three states: pending, triggered (value set and
    scheduled on the queue), and processed (callbacks executed).
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._ok = True
        self.name = name

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (may not be processed yet)."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has revoked the scheduled event."""
        return self._state == _CANCELLED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result; raises its exception if the event failed."""
        if self._state == _PENDING or self._state == _CANCELLED:
            raise SimulationError(f"value of {self!r} is not available")
        if not self._ok:
            raise self._value
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None if pending/succeeded."""
        if self._state != _PENDING and not self._ok:
            return self._value
        return None

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.sim._schedule(self)
        return self

    def succeed_now(self, value: Any = None) -> "Event":
        """Trigger the event and run its callbacks synchronously.

        Equivalent to :meth:`succeed` followed immediately by this event's
        dispatch, with no other queue entry in between. Only valid from
        code already executing inside the dispatch loop (a callback or a
        ``call_later`` callable): the callbacks run at the current
        simulation time, in the caller's stack frame. Callers must not
        touch shared state after the call that a resumed waiter could
        have already rewritten.
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = _PROCESSED
        callbacks = self.callbacks
        self.callbacks = []
        for callback in callbacks:
            callback(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._state = _TRIGGERED
        self.sim._schedule(self)
        return self

    def cancel(self) -> "Event":
        """Revoke a triggered-but-unprocessed event (e.g. a pending
        :class:`Timeout` deadline that lost a race).

        The heap entry itself cannot be removed in O(log n), so the
        dispatcher discards cancelled entries when they surface: callbacks
        are dropped now and the eventual pop neither advances the clock
        nor runs anything. Cancelling an event that has not been scheduled
        (pending) or has already been processed is an error.
        """
        if self._state != _TRIGGERED:
            raise SimulationError(f"cannot cancel {self!r}")
        self._state = _CANCELLED
        self.callbacks = []
        return self

    def _mark_processed(self) -> None:
        self._state = _PROCESSED

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        return f"<{label} {_STATE_NAMES[self._state]}>"


class Timeout(Event):
    """An event that succeeds ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Timeouts dominate event volume; initialize the slots directly
        # (no super().__init__), schedule inline (no _schedule call), and
        # leave the display name to __repr__ so the hot path never formats
        # a string.
        self.sim = sim
        self.callbacks = []
        self._state = _TRIGGERED
        self._value = value
        self._ok = True
        self.name = ""
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        _heappush(sim._queue, (sim.now + delay, seq, self))

    def __repr__(self) -> str:
        return f"<Timeout({self.delay:g}) {_STATE_NAMES[self._state]}>"


class Process(Event):
    """A running coroutine. The Process *is* an event that triggers when
    the generator returns (success, value = return value) or raises
    (failure)."""

    __slots__ = ("generator", "_waiting_on", "is_alive")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "Process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self.is_alive = True
        # Kick off the process at the current simulation time.
        bootstrap = Event(sim, name="bootstrap")
        bootstrap._ok = True
        bootstrap._state = _TRIGGERED
        bootstrap.callbacks.append(self._resume)
        sim._schedule(bootstrap)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            return
        if self._waiting_on is not None:
            # Detach from whatever we were waiting for.
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        failer = Event(self.sim, name=f"interrupt:{self.name}")
        failer._ok = False
        failer._value = Interrupt(cause)
        failer._state = _TRIGGERED
        failer.callbacks.append(self._resume)
        self.sim._schedule(failer)

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        while True:
            try:
                if trigger._ok:
                    target = self.generator.send(trigger._value)
                else:
                    target = self.generator.throw(trigger._value)
            except StopIteration as stop:
                self.is_alive = False
                # _resume only ever runs from the dispatch loop, so the
                # completion can be delivered synchronously: waiters resume
                # here instead of after one more queue round-trip.
                self.succeed_now(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process crash propagates
                self.is_alive = False
                self.fail(exc)
                return

            if not isinstance(target, Event):
                self.is_alive = False
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded {target!r}, expected an Event"
                    )
                )
                return

            if target._state == _PROCESSED:
                # Already done: resume immediately with its outcome.
                trigger = target
                continue
            target.callbacks.append(self._resume)
            self._waiting_on = target
            return


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise SimulationError(f"{name} requires Events, got {ev!r}")
        self._pending_count = sum(1 for ev in self.events if ev._state != _PROCESSED)
        if self._check_immediate():
            return
        for ev in self.events:
            if ev._state != _PROCESSED:
                ev.callbacks.append(self._on_child)
            # Already-processed children were accounted in _pending_count.

    def _check_immediate(self) -> bool:
        raise NotImplementedError

    def _on_child(self, child: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._state != _PENDING and ev._ok and ev.triggered
        }


class AnyOf(_Condition):
    """Triggers as soon as one child event succeeds (or any child fails)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AnyOf")

    def _check_immediate(self) -> bool:
        if not self.events:
            self.succeed({})
            return True
        for ev in self.events:
            if ev._state == _PROCESSED:
                if ev._ok:
                    self.succeed(self._results())
                else:
                    self.fail(ev._value)
                return True
        return False

    def _on_child(self, child: Event) -> None:
        if self._state != _PENDING:
            return
        if child._ok:
            self.succeed(self._results())
        else:
            self.fail(child._value)


class AllOf(_Condition):
    """Triggers once every child succeeds; fails fast on any child failure."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AllOf")

    def _check_immediate(self) -> bool:
        if self._pending_count == 0:
            for ev in self.events:
                if not ev._ok:
                    self.fail(ev._value)
                    return True
            self.succeed(self._results())
            return True
        return False

    def _on_child(self, child: Event) -> None:
        if self._state != _PENDING:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed(self._results())


class Simulator:
    """Owns the clock and the event queue.

    The simulator advances time only through :meth:`run` / :meth:`step`;
    events scheduled at the same instant are processed in FIFO order of
    scheduling (a monotonically increasing sequence number breaks ties).
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: List[tuple] = []
        self._seq = 0

    @property
    def _active(self) -> int:
        """Number of entries ever scheduled (diagnostics).

        Every schedule bumps ``_seq`` exactly once, so the FIFO tiebreaker
        doubles as the counter — one increment per entry instead of two.
        """
        return self._seq

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        _heappush(self._queue, (self.now + delay, seq, event))

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` — one queue entry, no process.

        The cheap primitive behind high-volume completions (RDMA verbs);
        use processes for anything that needs to wait again afterwards.
        The callable goes on the queue bare — no Event, no callback list,
        no closure — and the dispatch loops invoke it directly.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq = seq = self._seq + 1
        _heappush(self._queue, (self.now + delay, seq, fn))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds after ``delay`` simulated microseconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (discarding cancelled entries, which
        neither advance the clock nor count as the processed event)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        while self._queue:
            when, _seq, event = heapq.heappop(self._queue)
            if isinstance(event, Event):
                if event._state == _CANCELLED:
                    continue
                self.now = when
                callbacks, event.callbacks = event.callbacks, []
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
            else:
                self.now = when
                event()  # bare call_later callable
            return

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier.

        The dispatch loop is inlined (no per-event ``step()`` call, heappop
        bound to a local) — this is the simulator's hottest code.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        queue = self._queue
        pop = heapq.heappop
        horizon = float("inf") if until is None else until
        while queue:
            when = queue[0][0]
            if when > horizon:
                break
            # Batched same-timestamp dispatch: everything scheduled for
            # this instant drains without re-checking the horizon (entries
            # created during dispatch land at >= `when`, so FIFO order is
            # unchanged; same-time arrivals join this drain). Cancelled
            # entries are discarded without advancing the clock.
            while True:
                event = pop(queue)[2]
                if isinstance(event, Event):
                    if event._state != _CANCELLED:
                        self.now = when
                        callbacks = event.callbacks
                        event.callbacks = []
                        event._state = _PROCESSED
                        for callback in callbacks:
                            callback(event)
                else:
                    self.now = when
                    event()  # bare call_later callable
                if not queue or queue[0][0] != when:
                    break
        if until is not None:
            self.now = max(self.now, until)

    def run_until_triggered(self, event: Event, until: Optional[float] = None) -> None:
        """Run just until ``event`` triggers (or the queue/deadline ends).

        Preferred over ``run()`` when daemon processes (e.g. periodic
        monitors) keep the queue permanently non-empty.
        """
        queue = self._queue
        pop = heapq.heappop
        horizon = float("inf") if until is None else until
        while event._state == _PENDING and queue:
            if queue[0][0] > horizon:
                break
            when, _seq, current = pop(queue)
            if isinstance(current, Event):
                if current._state == _CANCELLED:
                    continue  # revoked deadline: no clock advance, no work
                self.now = when
                callbacks = current.callbacks
                current.callbacks = []
                current._state = _PROCESSED
                for callback in callbacks:
                    callback(current)
            else:
                self.now = when
                current()  # bare call_later callable
