"""Seeded randomness for reproducible simulations.

Every stochastic component takes a :class:`RandomSource` (or derives a
child stream from one) so that a whole cluster run is reproducible from a
single seed, yet independent components draw from independent streams.

Scalar draws (the simulation hot path: one jitter sample per RDMA verb)
use the stdlib Mersenne Twister, which is several times faster per call
than a numpy ``Generator``; numpy is reserved for vectorized work (the
Zipf CDF, bulk placement experiments) via the :attr:`numpy` property.
"""

from __future__ import annotations

import bisect
import random as _stdlib_random
from typing import Optional, Sequence

import numpy as np

__all__ = ["RandomSource", "ZipfSampler"]


class RandomSource:
    """A named, seedable random stream with simulation-oriented helpers.

    Child streams (``child("nic:3")``) are derived deterministically from
    the parent seed and the child name, so adding a new consumer never
    perturbs the draws seen by existing consumers.
    """

    def __init__(self, seed: int = 0, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._mixed = _stable_hash(f"{self.seed}/{name}")
        self._rng = _stdlib_random.Random(self._mixed)
        self._numpy: Optional[np.random.Generator] = None

    def child(self, name: str) -> "RandomSource":
        """Derive an independent stream keyed by ``name``."""
        return RandomSource(self.seed, f"{self.name}/{name}")

    # -- scalar draws (hot path) -------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def exponential(self, mean: float) -> float:
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def lognormal(self, mean: float, sigma: float) -> float:
        return self._rng.lognormvariate(mean, sigma)

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Classic Pareto with minimum value ``scale``."""
        return scale * self._rng.paretovariate(shape)

    def normal(self, mean: float, std: float) -> float:
        return self._rng.gauss(mean, std)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    # -- collections ----------------------------------------------------------
    def choice(self, seq: Sequence, size: Optional[int] = None, replace: bool = True):
        """Choose element(s) from ``seq``; returns a list when size given."""
        if size is None:
            return seq[self._rng.randrange(len(seq))]
        if replace:
            return [seq[self._rng.randrange(len(seq))] for _ in range(size)]
        return self._rng.sample(list(seq), size)

    def weighted_choice(self, items: Sequence, weights: Sequence[float]):
        """One element of ``items`` drawn with the given (unnormalized)
        weights — the per-epoch size-class draw in trace replay."""
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length and non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError(f"weights must sum to > 0, got {total}")
        target = self._rng.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if target < cumulative:
                return item
        return items[-1]  # float round-off on the last boundary

    def sample(self, seq: Sequence, k: int) -> list:
        """k distinct elements from seq (k may exceed len(seq): capped)."""
        k = min(k, len(seq))
        return self._rng.sample(list(seq), k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def zipf_sampler(self, n: int, alpha: float = 0.99) -> "ZipfSampler":
        """A bounded-Zipf sampler over keys ``0..n-1``."""
        return ZipfSampler(self, n, alpha)

    @property
    def numpy(self) -> np.random.Generator:
        """Lazily-built numpy generator for vectorized draws."""
        if self._numpy is None:
            self._numpy = np.random.default_rng(
                np.random.SeedSequence([self.seed & 0x7FFFFFFF, self._mixed & 0x7FFFFFFF])
            )
        return self._numpy


class ZipfSampler:
    """Bounded Zipf(α) over ``{0, .., n-1}`` via inverse-CDF lookup.

    Key 0 is the hottest. Sampling cost is O(log n) per draw (bisect on a
    precomputed CDF).
    """

    def __init__(self, source: RandomSource, n: int, alpha: float):
        if n < 1:
            raise ValueError(f"zipf population must be >= 1, got {n}")
        self.n = n
        self.alpha = alpha
        self._scalar_rng = source._rng
        self._np_rng = source.numpy
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf_array = cdf
        self._cdf_list = cdf.tolist()  # bisect on a list is fastest

    def sample(self) -> int:
        return bisect.bisect_left(self._cdf_list, self._scalar_rng.random())

    def sample_many(self, count: int) -> np.ndarray:
        return np.searchsorted(self._cdf_array, self._np_rng.random(count), side="left")


def _stable_hash(text: str) -> int:
    """A process-stable 64-bit hash (``hash()`` is salted per process)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return value
