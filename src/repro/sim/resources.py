"""Shared-resource primitives for the simulation kernel.

``Resource``
    A counted semaphore with FIFO queueing — used to model devices with a
    bounded queue depth (e.g. an SSD with N parallel channels).
``Store``
    An unbounded (or bounded) FIFO of items with blocking ``get``/``put`` —
    used for message queues between simulated components.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted semaphore with FIFO granting order.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Return an event that succeeds once a slot is granted."""
        event = self.sim.event(name="Resource.request")
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one slot; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Slot transfers directly to the next waiter: in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Generator[Event, None, None]:
        """Process-style helper: ``yield from resource.acquire()``."""
        yield self.request()


class Store:
    """A FIFO of items with blocking get/put.

    ``capacity=None`` means unbounded (puts never block).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once the item is accepted."""
        event = self.sim.event(name="Store.put")
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that succeeds with the oldest available item."""
        event = self.sim.event(name="Store.get")
        if self.items:
            event.succeed(self.items.popleft())
            if self._putters:
                put_event, item = self._putters.popleft()
                self.items.append(item)
                put_event.succeed()
        elif self._putters:
            put_event, item = self._putters.popleft()
            event.succeed(item)
            put_event.succeed()
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
