"""Replicated Resilience-Manager metadata and deterministic failover.

The paper assumes the Resilience Manager survives; its address-range →
slab maps, page version counters and regeneration state otherwise live in
one process's DRAM. This module replicates that metadata across a small
peer set with a one-sided-RDMA agreement protocol in the style of "The
Impact of RDMA on Agreement": the leader (the RM itself) appends to a
logical-timestamped metadata log and replicates it with one-sided WRITEs
into registered log regions on each peer; a commit needs a majority of
the replica set (the leader's own copy counts) before any client-visible
durability promise is made. Every replica guards its log with a *term*
word: a write carrying a stale term faults, so a deposed leader fences
itself on its next commit instead of diverging.

Failover is deterministic: when a metadata peer loses its connection to
the leader and the leader stays unreachable (or fenced) for a full lease
timeout, the lowest-id surviving peer bumps the term on a majority of
replicas, collects the longest surviving log, rebuilds the slab map and
version table from it, re-seals pages whose writes were torn mid-flight,
and resumes regenerations that were in flight when the leader died.

Model notes / limitations (documented in docs/ARCHITECTURE.md):

* The term word survives a host crash (modeled as living in NVRAM /
  NIC-protected memory, as in the RDMA-agreement literature); the log
  itself is wiped with the host's DRAM and is resynced by the next
  leader commit through the per-peer cursor reset.
* Leases renew on every majority commit; a leader that cannot commit
  fences itself immediately, so by the time a successor finishes waiting
  out the lease the old leader is already fenced in the crash and
  full-partition scenarios exercised by the chaos engine. An asymmetric
  partition that cuts only a subset of metadata links can leave a
  bounded stale-read window; the chaos scenarios do not model it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..cluster import PhantomSplit, SlabState
from ..ec import CorruptionDetected, DecodeError
from ..net import RemoteAccessError
from .address_space import AddressRange, SlabHandle

__all__ = [
    "MetadataQuorumError",
    "StaleTermError",
    "ReplicaGapError",
    "MetadataReplica",
    "ReplicatedMetadataStore",
    "ControlPlane",
    "adopt_metadata",
    "seal_pages",
]

# Wire-size model for one replicated-log append: a fixed header (term,
# base lsn, committed lsn, record count) plus a packed record.
_META_BASE_BYTES = 64
_META_RECORD_BYTES = 96


class MetadataQuorumError(Exception):
    """A metadata commit could not reach a majority of the replica set."""


class StaleTermError(RemoteAccessError):
    """A one-sided append/fence carried a term older than the replica's."""


class ReplicaGapError(RemoteAccessError):
    """An append's base lsn is past the replica's log end (needs resync)."""


class MetadataReplica:
    """One replica of one RM's metadata log (a registered memory region).

    ``term`` is the fencing word: one-sided appends with an older term
    fault at the "NIC" instead of applying. It intentionally survives
    :meth:`wipe` — the term word is modeled as protected memory so a
    rebooted host cannot be tricked into accepting a deposed leader.
    """

    __slots__ = ("domain", "host_id", "term", "log", "committed_lsn")

    def __init__(self, domain: int, host_id: int):
        self.domain = domain
        self.host_id = host_id
        self.term = 1
        self.log: List[dict] = []
        self.committed_lsn = 0

    def apply_term(self, term: int) -> None:
        """Fence: install a higher term (the successor's first step)."""
        if term <= self.term:
            raise StaleTermError(
                f"meta domain {self.domain} replica on m{self.host_id}: "
                f"term {term} <= current {self.term}"
            )
        self.term = term

    def apply_append(
        self, term: int, base_lsn: int, records: List[dict], committed_lsn: int
    ) -> None:
        """Apply a one-sided log append (or a bare lease-renewal probe)."""
        if term < self.term:
            raise StaleTermError(
                f"meta domain {self.domain} replica on m{self.host_id}: "
                f"append at term {term} < current {self.term}"
            )
        self.term = max(self.term, term)
        if base_lsn > len(self.log):
            raise ReplicaGapError(
                f"meta domain {self.domain} replica on m{self.host_id}: "
                f"append base {base_lsn} past log end {len(self.log)}"
            )
        if records:
            del self.log[base_lsn:]
            self.log.extend(records)
        self.committed_lsn = min(
            max(self.committed_lsn, committed_lsn), len(self.log)
        )

    def wipe(self) -> None:
        """Host DRAM lost: the log goes, the protected term word stays."""
        self.log.clear()
        self.committed_lsn = 0


def _await_all(sim, events):
    """Generator: wait until every event in ``events`` has completed
    (succeeded or failed) using one waiter, like RM ``_await_acks``."""
    events = [e for e in events if e is not None]
    if not events:
        return 0
    waiter = sim.event(name="meta-await-all")
    state = {"finished": 0}
    total = len(events)

    def on_done(_event) -> None:
        state["finished"] += 1
        if state["finished"] == total and not waiter.triggered:
            waiter.succeed_now()

    for event in events:
        if event.processed:
            on_done(event)
        else:
            event.callbacks.append(on_done)
    if state["finished"] == total and not waiter.triggered:
        waiter.succeed_now()
    yield waiter
    return total


class ReplicatedMetadataStore:
    """Leader-side view of one RM's replicated metadata log.

    The RM appends records locally (cheap, synchronous) and calls
    :meth:`commit_ok` at its durability boundaries; a commit pushes the
    per-peer log delta with one-sided WRITEs and succeeds once a majority
    of the replica set (peers + the leader's own copy) holds the prefix.
    Any failed commit — quorum loss or a stale-term fault — fences the
    store (and through ``on_fence`` the RM itself) permanently.
    """

    def __init__(
        self,
        sim,
        fabric,
        domain: int,
        self_replica: MetadataReplica,
        peers: Dict[int, MetadataReplica],
        lease_timeout_us: float,
        heartbeat_period_us: float,
        flight=None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.domain = domain
        self.self_replica = self_replica
        self.peers = dict(peers)
        self.lease_timeout_us = lease_timeout_us
        self.heartbeat_period_us = heartbeat_period_us
        self.flight = flight
        self.fenced = False
        self.fence_reason: Optional[str] = None
        self.term = 1
        self.lease_expiry = 0.0
        self.commits = 0
        self.commit_failures = 0
        self.records_appended = 0
        self.on_fence: Optional[Callable[[str], None]] = None
        # Per-peer replication cursors: ``sent`` is optimistic (reset on a
        # failed write), ``acked`` is the confirmed replicated prefix.
        self._links = {p: {"sent": 0, "acked": 0} for p in self.peers}
        self._heartbeat_on = False
        self._async_running = False
        # A peer disconnect (crash or partition) invalidates its cursor:
        # its DRAM log may be gone, so the next commit resyncs from zero.
        for peer_id in sorted(self.peers):
            qp = fabric.qp(domain, peer_id)
            qp.on_disconnect(
                lambda _remote, p=peer_id: self._reset_link(p)
            )

    # -- log ----------------------------------------------------------------
    @property
    def log(self) -> List[dict]:
        return self.self_replica.log

    @property
    def total_replicas(self) -> int:
        return len(self.peers) + 1

    @property
    def majority(self) -> int:
        return self.total_replicas // 2 + 1

    def lease_valid(self) -> bool:
        return not self.fenced and self.sim.now < self.lease_expiry

    def append(self, kind: str, **fields) -> None:
        """Append one metadata record locally (replicated on next commit)."""
        if self.fenced:
            return
        record = {"lsn": len(self.log), "term": self.term, "kind": kind}
        record.update(fields)
        self.log.append(record)
        self.records_appended += 1
        self._ensure_heartbeat()

    # -- commit -------------------------------------------------------------
    def commit(self):
        """Replicate the log prefix to a majority; renew the lease.

        Always probes every peer (even with an empty delta) so a lease
        renewal is a real liveness check — a partitioned leader fences
        itself within one heartbeat period. Raises
        :class:`MetadataQuorumError` (after self-fencing) on failure.
        """
        if self.fenced:
            raise MetadataQuorumError(
                f"metadata domain {self.domain} is fenced: {self.fence_reason}"
            )
        target = len(self.log)
        peer_ids = sorted(self._links)
        if not peer_ids:
            self.committed_lsn_advance(target)
            self.lease_expiry = self.sim.now + self.lease_timeout_us
            self.commits += 1
            return
        needed = self.majority - 1  # the local copy is already durable
        total = len(peer_ids)
        waiter = self.sim.event(name=f"meta-commit:{self.domain}")
        state = {"acks": 0, "fails": 0, "stale": False}

        def on_done(done, peer_id: int, target: int) -> None:
            link = self._links[peer_id]
            if done._ok:
                if target > link["acked"]:
                    link["acked"] = target
                state["acks"] += 1
            else:
                exc = done.exception
                if isinstance(exc, StaleTermError):
                    state["stale"] = True
                if isinstance(exc, ReplicaGapError):
                    link["sent"] = link["acked"] = 0
                else:
                    link["sent"] = min(link["sent"], link["acked"])
                state["fails"] += 1
            if not waiter.triggered and (
                state["acks"] >= needed or state["fails"] > total - needed
            ):
                waiter.succeed_now()

        committed = self.committed_lsn
        for peer_id in peer_ids:
            link = self._links[peer_id]
            replica = self.peers[peer_id]
            base = min(link["sent"], target)
            records = [dict(r) for r in self.log[base:target]]
            size = _META_BASE_BYTES + _META_RECORD_BYTES * len(records)
            qp = self.fabric.qp(self.domain, peer_id)
            event = qp.post_write(
                size,
                apply=(
                    lambda r=replica, t=self.term, b=base, recs=records,
                    c=committed: r.apply_append(t, b, recs, c)
                ),
            )
            link["sent"] = max(link["sent"], target)
            if event.processed:
                on_done(event, peer_id, target)
            else:
                event.callbacks.append(
                    lambda done, p=peer_id, t=target: on_done(done, p, t)
                )
        yield waiter
        if state["stale"]:
            self.commit_failures += 1
            self.fence("superseded by a higher term")
            raise MetadataQuorumError(
                f"metadata domain {self.domain}: superseded by a higher term"
            )
        if state["acks"] < needed:
            self.commit_failures += 1
            self.fence("metadata quorum lost")
            raise MetadataQuorumError(
                f"metadata domain {self.domain}: "
                f"{state['acks']}/{needed} peer acks"
            )
        self.commits += 1
        self.committed_lsn_advance(target)
        self.lease_expiry = self.sim.now + self.lease_timeout_us

    @property
    def committed_lsn(self) -> int:
        return self.self_replica.committed_lsn

    def committed_lsn_advance(self, target: int) -> None:
        if target > self.self_replica.committed_lsn:
            self.self_replica.committed_lsn = target

    def commit_ok(self):
        """Generator: commit and report success as a bool (no exception) —
        lets the RM stay decoupled from this module's error types."""
        try:
            yield from self.commit()
        except MetadataQuorumError:
            return False
        return True

    def commit_async(self) -> None:
        """Commit in the background (metadata that gates no client ack:
        slab-map deltas, durability confirmations, error scores)."""
        if self.fenced or self._async_running:
            return
        self._async_running = True

        def runner():
            try:
                while not self.fenced and self.committed_lsn < len(self.log):
                    yield from self.commit()
            except MetadataQuorumError:
                pass
            finally:
                self._async_running = False

        self.sim.process(runner(), name=f"meta-commit-async:{self.domain}")

    # -- lease heartbeat ----------------------------------------------------
    def _ensure_heartbeat(self) -> None:
        if self._heartbeat_on or self.fenced or not self.peers:
            return
        self._heartbeat_on = True
        self.sim.process(self._heartbeat(), name=f"meta-heartbeat:{self.domain}")

    def _heartbeat(self):
        while not self.fenced:
            yield self.sim.timeout(self.heartbeat_period_us)
            if self.fenced:
                return
            try:
                yield from self.commit()
            except MetadataQuorumError:
                return

    # -- fencing ------------------------------------------------------------
    def fence(self, reason: str) -> None:
        """Permanently stop serving: this leader's epoch is over."""
        if self.fenced:
            return
        self.fenced = True
        self.fence_reason = reason
        if self.flight is not None:
            self.flight.note(
                "meta_fenced", at_us=self.sim.now, domain=self.domain,
                reason=reason,
            )
        if self.on_fence is not None:
            self.on_fence(reason)

    def _reset_link(self, peer_id: int) -> None:
        link = self._links.get(peer_id)
        if link is not None:
            link["sent"] = link["acked"] = 0

    def report(self) -> dict:
        return {
            "term": self.term,
            "fenced": self.fenced,
            "fence_reason": self.fence_reason,
            "log_records": len(self.log),
            "committed_lsn": self.committed_lsn,
            "commits": self.commits,
            "commit_failures": self.commit_failures,
        }


# ======================================================================
# failover: log adoption, page sealing
# ======================================================================
def adopt_metadata(rm, records: List[dict]) -> dict:
    """Rebuild a Resilience Manager's metadata from a replicated log.

    Replays slab-map records into ``rm.space`` (fresh handle objects —
    nothing is shared with the deposed leader), restores page versions
    and error scores, and classifies pages by replication state:

    * ``interrupted`` — a ``write_intent`` committed with no matching
      ``write_acked``: the write was torn mid-flight; splits may mix
      versions.
    * ``unsettled`` — acked but never confirmed durable: the async
      parity writes may not have landed.

    Positions whose host the successor cannot reach are failed here and
    regenerated by the caller.
    """
    space = rm.space
    acked: Dict[int, int] = {}
    intents: Dict[int, int] = {}
    durable: Dict[int, int] = {}
    skipped = 0
    for rec in records:
        kind = rec.get("kind")
        if kind == "range_installed":
            range_id = rec["range_id"]
            if space.get(range_id) is not None:
                skipped += 1
                continue
            handles = [
                SlabHandle(int(m), int(s), bool(a)) for m, s, a in rec["handles"]
            ]
            space.install(AddressRange(range_id, handles))
        elif kind == "position_failed":
            address_range = space.get(rec["range_id"])
            if address_range is not None:
                address_range.mark_failed(rec["position"])
        elif kind == "position_replaced":
            address_range = space.get(rec["range_id"])
            if address_range is not None:
                address_range.replace(
                    rec["position"],
                    SlabHandle(rec["machine_id"], rec["slab_id"]),
                )
        elif kind == "range_dropped":
            space.drop(rec["range_id"])
        elif kind == "write_intent":
            page, version = rec["page_id"], rec["version"]
            if version > intents.get(page, 0):
                intents[page] = version
        elif kind == "write_acked":
            page, version = rec["page_id"], rec["version"]
            if version > acked.get(page, 0):
                acked[page] = version
        elif kind == "write_durable":
            page, version = rec["page_id"], rec["version"]
            if version > durable.get(page, 0):
                durable[page] = version
        elif kind == "page_dropped":
            page = rec["page_id"]
            acked.pop(page, None)
            durable.pop(page, None)
            intents.pop(page, None)
        elif kind == "error_score":
            rm.error_scores[int(rec["machine_id"])] = float(rec["score"])
    for address_range in sorted(space.all_ranges(), key=lambda a: a.range_id):
        for position, handle in enumerate(address_range.slots):
            if not handle.available:
                continue
            # A split hosted on the successor itself is unreachable through
            # one-sided verbs (no loopback QPs); fail it so the failover's
            # regeneration pass re-homes it on a real remote peer.
            if handle.machine_id == rm.machine_id or not rm.fabric.reachable(
                rm.machine_id, handle.machine_id
            ):
                address_range.mark_failed(position)
        rm._watch_machines(
            [h for h in address_range.slots if h.machine_id != rm.machine_id]
        )
    for page, version in acked.items():
        if version > rm._versions.get(page, 0):
            rm._versions[page] = version
    interrupted = sorted(
        (page, acked.get(page, 0), version)
        for page, version in intents.items()
        if version > acked.get(page, 0)
    )
    unsettled = sorted(
        page
        for page, version in acked.items()
        if durable.get(page, 0) < version and intents.get(page, 0) <= version
    )
    return {
        "ranges": len(space.ranges),
        "ranges_skipped": skipped,
        "pages": len(acked),
        "acked": acked,
        "durable": durable,
        "intents": intents,
        "interrupted": interrupted,
        "unsettled": unsettled,
    }


def snapshot_into(store: ReplicatedMetadataStore, rm, info: dict) -> None:
    """Append the adopted state into the successor's own metadata domain
    so a second failover would not depend on the first domain's log."""
    for address_range in sorted(rm.space.all_ranges(), key=lambda a: a.range_id):
        store.append(
            "range_installed",
            range_id=address_range.range_id,
            handles=[
                [h.machine_id, h.slab_id, bool(h.available)]
                for h in address_range.slots
            ],
        )
    for page in sorted(info["acked"]):
        version = info["acked"][page]
        store.append("write_acked", page_id=page, version=version)
        if info["durable"].get(page, 0) >= version:
            store.append("write_durable", page_id=page, version=version)


def _recover_page(rm, page_id: int, versions: Tuple[int, ...]):
    """Generator: read every reachable split of ``page_id`` and try to
    reconstruct a consistent page. Returns ``(content, ok)``.

    Real mode accepts a candidate only when re-encoding it agrees with at
    least k of the splits actually read back; phantom mode requires k
    same-version intact splits among ``versions``.
    """
    config = rm.config
    range_id, offset = rm.space.locate(page_id)
    address_range = rm.space.get(range_id)
    if address_range is None:
        return None, False
    available = address_range.available_positions()
    # Splits hosted on the successor's own machine were marked failed at
    # adoption (no loopback QPs), but the slab is still sitting in local
    # DRAM — read it directly, out of band. Without these, a page whose
    # parity phase was interrupted can lose its only consistent copy.
    local: Dict[int, object] = {}
    local_machine = rm.fabric.machine(rm.machine_id)
    for position, handle in enumerate(address_range.slots):
        if handle.machine_id != rm.machine_id or position in available:
            continue
        slab = local_machine.hosted_slabs.get(handle.slab_id)
        if slab is not None and slab.state in (
            SlabState.MAPPED,
            SlabState.REGENERATING,
        ):
            payload = slab.pages.get(offset)
            if payload is not None:
                local[position] = payload
    if len(available) + len(local) < config.k:
        return None, False
    posted = rm._post_split_read_batch(address_range, available, offset)
    yield from _await_all(rm.sim, [event for _p, event in posted])
    arrivals = {
        position: (event._value if event._ok else None)
        for position, event in posted
    }
    arrivals.update(local)
    if config.payload_mode != "real":
        counts: Dict[int, int] = {}
        for payload in arrivals.values():
            if isinstance(payload, PhantomSplit) and not payload.corrupt:
                counts[payload.version] = counts.get(payload.version, 0) + 1
        ok = any(
            counts.get(version, 0) >= config.k for version in versions
        )
        return None, ok
    splits = {
        position: payload
        for position, payload in arrivals.items()
        if isinstance(payload, np.ndarray)
    }
    if len(splits) < config.k:
        return None, False
    candidates = []
    try:
        candidates.append(rm.codec.decode_verified(splits))
    except (CorruptionDetected, DecodeError):
        pass
    try:
        page, _corrupted = rm.codec.correct(splits, best_effort=True)
        candidates.append(page)
    except (CorruptionDetected, DecodeError):
        pass
    data_rows = {p: splits[p] for p in range(config.k) if p in splits}
    if len(data_rows) == config.k:
        try:
            candidates.append(rm.codec.decode(data_rows))
        except DecodeError:
            pass
    best, best_score = None, -1
    if candidates:
        # One slab-wide kernel pass re-encodes every candidate at once;
        # row i of the stack is byte-identical to encode(candidates[i]).
        encoded_stack = rm.codec.encode_batch(candidates)
        for candidate, encoded in zip(candidates, encoded_stack):
            score = sum(
                1
                for position, row in splits.items()
                if np.array_equal(row, encoded[position])
            )
            if score > best_score:
                best, best_score = candidate, score
    if best is not None and best_score >= config.k:
        return best, True
    return None, False


def seal_pages(rm, info: dict):
    """Generator: restore full (k + r) durability for pages whose writes
    were torn or unsettled when the old leader died.

    Each recoverable page is rewritten through the successor's normal
    write path (a full n-position overwrite), which replaces any
    mixed-version splits. An interrupted page whose intent was never
    acked carries no durability promise: with no recoverable content it
    is silently discarded; with an acked predecessor it must be sealed
    or reported lost via ``on_page_lost``.
    """
    counts = {"sealed": 0, "lost": 0, "discarded": 0, "seal_failures": 0}
    jobs = []
    for page, acked_v, intent_v in info["interrupted"]:
        if acked_v == 0:
            counts["discarded"] += 1  # never acked: client owns the retry
            continue
        jobs.append((page, acked_v, (intent_v, acked_v)))
    for page in info["unsettled"]:
        jobs.append((page, info["acked"][page], (info["acked"][page],)))
    for page, acked_v, versions in sorted(jobs):
        content, ok = yield from _recover_page(rm, page, versions)
        if not ok:
            rm._versions.pop(page, None)
            if rm._meta is not None:
                rm._meta.append("page_dropped", page_id=page)
                rm._meta.commit_async()
            rm._notify("on_page_lost", page)
            counts["lost"] += 1
            continue
        # The reseal lands at acked_v + 1 (== the torn intent's version),
        # re-asserting the acked durability promise with fresh splits.
        rm._versions[page] = acked_v
        try:
            yield rm.write(page, content)
        except Exception:  # noqa: BLE001 - HydraError without the import cycle
            counts["seal_failures"] += 1
            continue
        inflight = rm._inflight_writes.get(page)
        if inflight is not None and not inflight.triggered:
            yield inflight
        counts["sealed"] += 1
    return counts


# ======================================================================
# deployment-level control plane
# ======================================================================
class ControlPlane:
    """Metadata replication and failover orchestration for a deployment.

    Builds one :class:`ReplicatedMetadataStore` per machine (each RM is
    the leader of its own metadata *domain*), hosts the peer replicas,
    watches leader connectivity from each peer, and runs the takeover
    protocol when a leader stays gone for a full lease timeout.
    """

    def __init__(self, deployment, cluster):
        self.deployment = deployment
        self.cluster = cluster
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        config = deployment.config
        self.replicas = min(config.metadata_replicas, max(len(cluster) - 1, 0))
        self.heartbeat_period_us = config.control_period_us
        self.lease_timeout_us = (
            config.metadata_lease_timeout_us
            if config.metadata_lease_timeout_us is not None
            else 3.0 * config.control_period_us
        )
        obs = getattr(cluster, "obs", None)
        self.flight = getattr(obs, "flight", None)
        self.stores: Dict[int, ReplicatedMetadataStore] = {}
        self.replica_hosts: Dict[int, Dict[int, MetadataReplica]] = {}
        self.peers_of_domain: Dict[int, List[int]] = {}
        self.failovers: List[dict] = []
        self.on_failover_begin: List[Callable] = []
        self.on_failover: List[Callable] = []
        self._taking_over: set = set()
        self._failed_over: Dict[int, int] = {}
        self._watch_pending: set = set()

        ids = sorted(machine.id for machine in cluster.machines)
        for domain in ids:
            peers = cluster.metadata_peers(domain, self.replicas)
            self.peers_of_domain[domain] = peers
            self_rep = MetadataReplica(domain, domain)
            self.replica_hosts.setdefault(domain, {})[domain] = self_rep
            peer_reps: Dict[int, MetadataReplica] = {}
            for peer in peers:
                rep = MetadataReplica(domain, peer)
                self.replica_hosts.setdefault(peer, {})[domain] = rep
                peer_reps[peer] = rep
            store = ReplicatedMetadataStore(
                self.sim,
                self.fabric,
                domain,
                self_rep,
                peer_reps,
                lease_timeout_us=self.lease_timeout_us,
                heartbeat_period_us=self.heartbeat_period_us,
                flight=self.flight,
            )
            rm = deployment.manager(domain)
            store.on_fence = rm.fence
            rm.attach_metadata_store(store)
            self.stores[domain] = store
        # Takeover watchers: each peer monitors its connection to the
        # leaders it replicates (the QP doubles as the failure detector).
        for domain in ids:
            for peer in self.peers_of_domain[domain]:
                self.fabric.qp(peer, domain).on_disconnect(
                    self._make_watcher(domain, peer)
                )
        # An RM dies with its machine: wipe the replicas that machine
        # hosted and fence its own leadership at crash time.
        for machine in cluster.machines:
            machine.on_failure(self._on_machine_failed)
        # Best-effort stepdown notification for a deposed-but-alive leader
        # (belt and braces: the term words already guarantee safety).
        for domain in ids:
            deployment.node(domain).endpoint.register(
                "meta_stepdown", self._make_stepdown(domain)
            )

    # -- liveness events ----------------------------------------------------
    def _on_machine_failed(self, machine_id: int) -> None:
        for _domain, replica in sorted(
            self.replica_hosts.get(machine_id, {}).items()
        ):
            replica.wipe()
        store = self.stores.get(machine_id)
        if store is not None:
            store.fence("machine crashed")

    def _make_stepdown(self, domain: int):
        def handler(src_id: int, body: dict):
            store = self.stores[domain]
            term = int(body.get("term", 0))
            if term > store.term:
                store.fence(f"stepdown from m{src_id} (term {term})")
            return {"ok": True}

        return handler

    def _make_watcher(self, domain: int, watcher: int):
        def on_disconnect(_remote_id: int) -> None:
            key = (domain, watcher)
            if key in self._watch_pending:
                return
            if domain in self._failed_over or domain in self._taking_over:
                return
            replica = self.replica_hosts.get(watcher, {}).get(domain)
            if replica is None or not replica.log:
                return  # nothing replicated; nothing worth taking over
            self._watch_pending.add(key)
            self.sim.process(
                self._watch(domain, watcher),
                name=f"meta-watch:{domain}:{watcher}",
            )

        return on_disconnect

    def _watch(self, domain: int, watcher: int):
        try:
            yield self.sim.timeout(self.lease_timeout_us)
        finally:
            self._watch_pending.discard((domain, watcher))
        if domain in self._failed_over or domain in self._taking_over:
            return
        if not self.cluster.machine(watcher).alive:
            return
        store = self.stores[domain]
        if self.fabric.reachable(watcher, domain) and not store.fenced:
            return  # transient blip; the leader still holds its lease
        replica = self.replica_hosts[watcher].get(domain)
        if replica is None or not replica.log:
            return
        alive_peers = [
            peer
            for peer in self.peers_of_domain[domain]
            if self.cluster.machine(peer).alive
        ]
        if not alive_peers or alive_peers[0] != watcher:
            return  # the lowest-id surviving peer owns the takeover
        self._taking_over.add(domain)
        try:
            yield from self._takeover(domain, watcher)
        finally:
            self._taking_over.discard(domain)

    # -- takeover -----------------------------------------------------------
    def _takeover(self, domain: int, successor: int):
        sim = self.sim
        rm = self.deployment.manager(successor)
        my_replica = self.replica_hosts[successor][domain]
        new_term = my_replica.term + 1
        my_replica.apply_term(new_term)
        hosts = [
            host
            for host in sorted(self.replica_hosts)
            if domain in self.replica_hosts[host]
            and host != successor
            and self.cluster.machine(host).alive
        ]
        total = len(self.peers_of_domain[domain]) + 1
        majority = total // 2 + 1
        acked = 1  # the successor's own replica
        logs: Dict[int, List[dict]] = {successor: list(my_replica.log)}
        size = _META_BASE_BYTES + _META_RECORD_BYTES * len(my_replica.log)
        posted = []
        for host in hosts:
            replica = self.replica_hosts[host][domain]
            qp = self.fabric.qp(successor, host)
            fence_ev = qp.post_write(
                _META_BASE_BYTES,
                apply=lambda r=replica, t=new_term: r.apply_term(t),
            )
            read_ev = qp.post_read(size, fetch=lambda r=replica: list(r.log))
            posted.append((host, fence_ev, read_ev))
        yield from _await_all(
            sim, [ev for _h, fence_ev, read_ev in posted for ev in (fence_ev, read_ev)]
        )
        for host, fence_ev, read_ev in posted:
            if fence_ev._ok and read_ev._ok:
                acked += 1
                logs[host] = read_ev._value
        if acked < majority:
            if self.flight is not None:
                self.flight.note(
                    "rm_failover_aborted", at_us=sim.now, domain=domain,
                    successor=successor, acked=acked, majority=majority,
                )
            return
        best = successor
        for host in sorted(logs):
            if len(logs[host]) > len(logs[best]):
                best = host
        merged = logs[best]
        # Tell a deposed-but-alive leader to stand down (best effort; its
        # next commit would hit the bumped term words anyway).
        self.deployment.node(successor).endpoint.notify(
            domain, "meta_stepdown", {"term": new_term}
        )
        info = adopt_metadata(rm, merged)
        store = self.stores.get(successor)
        if store is not None and not store.fenced:
            snapshot_into(store, rm, info)
            yield from store.commit_ok()
        for callback in list(self.on_failover_begin):
            callback(domain, rm, info)
        seal = yield from seal_pages(rm, info)
        restarted = 0
        for address_range in sorted(
            rm.space.all_ranges(), key=lambda a: a.range_id
        ):
            for position, handle in enumerate(address_range.slots):
                if not handle.available:
                    rm._start_regeneration(address_range, position)
                    restarted += 1
        entry = {
            "domain": domain,
            "successor": successor,
            "term": new_term,
            "at_us": round(sim.now, 3),
            "log_records": len(merged),
            "log_source": best,
            "ranges": info["ranges"],
            "pages": info["pages"],
            "interrupted": len(info["interrupted"]),
            "unsettled": len(info["unsettled"]),
            "regens_restarted": restarted,
        }
        entry.update(seal)
        self.failovers.append(entry)
        self._failed_over[domain] = successor
        if self.flight is not None:
            self.flight.note(
                "rm_failover", at_us=sim.now, domain=domain,
                successor=successor, term=new_term,
                interrupted=entry["interrupted"], unsettled=entry["unsettled"],
                sealed=entry["sealed"], lost=entry["lost"],
            )
        for callback in list(self.on_failover):
            callback(domain, rm, info)

    # -- reporting ----------------------------------------------------------
    def report(self) -> dict:
        stores = {}
        for domain in sorted(self.stores):
            store = self.stores[domain]
            if store.records_appended or store.fenced:
                stores[domain] = store.report()
        return {
            "replicas": self.replicas,
            "lease_timeout_us": self.lease_timeout_us,
            "failovers": [dict(entry) for entry in self.failovers],
            "stores": stores,
        }
