"""The Resilience Manager's remote address space (§3.1, Figure 4).

The remote address space is divided into fixed-size *address ranges*; each
range is backed by (k + r) slabs on (k + r) distinct machines — k at data
split positions, r at parity positions. Page ``p`` lives in range
``p // pages_per_range`` at offset ``p % pages_per_range``; split ``i`` of
the page is stored at offset within the slab bound to position ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["SlabHandle", "AddressRange", "RemoteAddressSpace"]


@dataclass
class SlabHandle:
    """The RM's view of one remote slab binding."""

    machine_id: int
    slab_id: int
    available: bool = True

    def __str__(self) -> str:
        marker = "" if self.available else "!"
        return f"{marker}m{self.machine_id}/s{self.slab_id}"


class AddressRange:
    """One address range: (k + r) split positions, each bound to a slab."""

    def __init__(self, range_id: int, handles: List[SlabHandle]):
        self.range_id = range_id
        self.slots: List[SlabHandle] = list(handles)

    @property
    def n(self) -> int:
        return len(self.slots)

    def handle(self, position: int) -> SlabHandle:
        return self.slots[position]

    def available_positions(self) -> List[int]:
        """Split positions whose slab is currently usable."""
        return [i for i, h in enumerate(self.slots) if h.available]

    def positions_on_machine(self, machine_id: int) -> List[int]:
        return [i for i, h in enumerate(self.slots) if h.machine_id == machine_id]

    def machine_ids(self) -> List[int]:
        return [h.machine_id for h in self.slots]

    def mark_failed(self, position: int) -> None:
        """Record that the slab at ``position`` is unavailable (§4.3)."""
        self.slots[position].available = False

    def replace(self, position: int, handle: SlabHandle) -> None:
        """Install a regenerated slab at ``position`` and make it live."""
        handle.available = True
        self.slots[position] = handle

    def __repr__(self) -> str:
        return f"<Range {self.range_id}: {[str(h) for h in self.slots]}>"


class RemoteAddressSpace:
    """Page-id to (range, offset, slabs) resolution for one RM."""

    def __init__(self, pages_per_range: int):
        if pages_per_range < 1:
            raise ValueError(f"pages_per_range must be >= 1, got {pages_per_range}")
        self.pages_per_range = pages_per_range
        self.ranges: Dict[int, AddressRange] = {}

    def locate(self, page_id: int) -> Tuple[int, int]:
        """(range_id, offset_within_range) for a page."""
        if page_id < 0:
            raise ValueError(f"negative page id: {page_id}")
        return page_id // self.pages_per_range, page_id % self.pages_per_range

    def get(self, range_id: int) -> Optional[AddressRange]:
        return self.ranges.get(range_id)

    def install(self, address_range: AddressRange) -> None:
        if address_range.range_id in self.ranges:
            raise ValueError(f"range {address_range.range_id} already mapped")
        self.ranges[address_range.range_id] = address_range

    def drop(self, range_id: int) -> Optional[AddressRange]:
        return self.ranges.pop(range_id, None)

    def all_ranges(self) -> List[AddressRange]:
        return list(self.ranges.values())

    def ranges_using_machine(self, machine_id: int) -> List[AddressRange]:
        """Ranges with at least one slab hosted on ``machine_id``."""
        return [
            rng
            for rng in self.ranges.values()
            if any(h.machine_id == machine_id for h in rng.slots)
        ]
