"""The Hydra Resource Monitor (§3.2, §4.4) — the server-side daemon.

One Resource Monitor runs on every machine that donates memory. Each
ControlPeriod it:

* defends the free-memory *headroom* for local applications — when free
  memory shrinks below the headroom it evicts slabs using decentralized
  batch eviction (evict the E least-frequently-accessed of E + E' sampled
  slabs, notifying the owning Resilience Managers first);
* *proactively allocates* FREE slabs when memory is plentiful, so remote
  map requests are served instantly (Fig 7b);
* optionally nudges the co-located Resilience Manager to reclaim its own
  remote pages when local memory frees up.

It also serves the control-plane RPCs (load queries, slab map/unmap) and
executes background slab regeneration hand-offs: reading k source slabs in
bulk, re-encoding the lost split position, and calling the owner back.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..cluster import Machine, PhantomSplit, Slab, SlabState
from ..ec import ReedSolomonCode
from ..ec.vectorized import rebuild_position
from ..net import RDMAError, RemoteAccessError
from ..obs import MetricsRegistry, Tracer
from ..sim import RandomSource
from .config import HydraConfig
from .rpc import RpcEndpoint, RpcError

__all__ = ["ResourceMonitor"]

# Decode throughput for regeneration, from §7.1.2: a 1 GB slab decodes in
# ~50 ms => ~4.66e-5 µs per byte.
_DECODE_US_PER_BYTE = 50_000.0 / float(1 << 30)


class ResourceMonitor:
    """Manages one machine's donated memory slabs."""

    def __init__(
        self,
        machine: Machine,
        config: HydraConfig,
        endpoint: RpcEndpoint,
        rng: RandomSource,
        reclaim_sink: Optional[Callable[[], object]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.machine = machine
        self.sim = machine.sim
        self.config = config
        self.endpoint = endpoint
        self.rng = rng
        self.reclaim_sink = reclaim_sink
        obs = getattr(machine.fabric, "obs", None)
        if tracer is None:
            tracer = obs.tracer if obs is not None else Tracer(self.sim, sample_every=0)
        if metrics is None:
            metrics = obs.metrics if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.metrics = metrics
        self.events = metrics.counter_group(f"monitor.{machine.id}.events")
        # Headroom over time: one point per ControlPeriod, the watermark
        # series the health monitor and ``repro top`` read.
        self.free_series = metrics.timeseries(f"monitor.{machine.id}.free_fraction")
        self._daemon = None

        endpoint.register("query_load", self._on_query_load)
        endpoint.register("map_slab", self._on_map_slab)
        endpoint.register("unmap_slab", self._on_unmap_slab)
        endpoint.register("regenerate_slab", self._on_regenerate_slab)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the periodic control loop."""
        if self._daemon is None:
            self._daemon = self.sim.process(
                self._control_loop(), name=f"monitor:{self.machine.id}"
            )

    def _control_loop(self):
        config = self.config
        while True:
            yield self.sim.timeout(config.control_period_us)
            if not self.machine.alive:
                continue
            self.machine.record_usage()
            free_fraction = self.machine.free_bytes / self.machine.total_memory_bytes
            self.free_series.record(self.sim.now, free_fraction)
            # One sampled span per ControlPeriod iteration: headroom state
            # plus which arm (defense vs proactive allocation) ran.
            span = self.tracer.start_trace(
                "monitor.loop",
                machine_id=self.machine.id,
                tags={"free_fraction": round(free_fraction, 4)},
            )
            try:
                if free_fraction < config.headroom_fraction:
                    if span is not None:
                        span.set_tag("action", "relieve_pressure")
                    yield from self._relieve_pressure()
                else:
                    if span is not None:
                        span.set_tag("action", "proactive_allocate")
                    self._proactive_allocate(free_fraction)
            finally:
                if span is not None:
                    span.finish()

    # ------------------------------------------------------------------
    # headroom defense (Fig 7a)
    # ------------------------------------------------------------------
    def _relieve_pressure(self):
        """Free memory until the headroom is restored: drop FREE slabs
        first, then batch-evict mapped slabs."""
        config = self.config
        target = int(config.headroom_fraction * self.machine.total_memory_bytes)
        # Cheapest first: unused FREE slabs.
        for slab in self.machine.free_slabs():
            if self.machine.free_bytes >= target:
                break
            self.machine.release_slab(slab.slab_id)
            self.events.incr("free_slabs_dropped")
        # Then evict mapped slabs with batch eviction.
        while self.machine.free_bytes < target:
            evicted = yield from self._batch_evict()
            if not evicted:
                break  # nothing left to evict

    def _batch_evict(self):
        """Decentralized batch eviction (§4.4): sample (E + E') mapped
        slabs, evict the E least-frequently-accessed after notifying their
        owners. Returns the number of slabs evicted."""
        config = self.config
        mapped = self.machine.mapped_slabs()
        if not mapped:
            return 0
        sample_size = min(len(mapped), config.eviction_batch + config.eviction_extra)
        sample = self.rng.sample(mapped, sample_size)
        sample.sort(key=lambda slab: slab.access_count)
        evicted = 0
        for slab in sample:
            if evicted >= config.eviction_batch:
                break
            try:
                reply = yield self.endpoint.call(
                    slab.owner_id,
                    "evict_slab",
                    {
                        "slab_id": slab.slab_id,
                        "range_id": slab.range_id,
                        "position": slab.split_index,
                    },
                )
            except RpcError:
                reply = {"ok": True}  # owner unreachable; evict freely
            if not (reply or {}).get("ok", True):
                # Owner vetoed (range already degraded); try the next
                # candidate from the (E + E') sample.
                self.events.incr("evictions_vetoed")
                continue
            self.machine.release_slab(slab.slab_id)
            self.events.incr("slabs_evicted")
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # proactive allocation (Fig 7b)
    # ------------------------------------------------------------------
    def _proactive_allocate(self, free_fraction: float) -> None:
        """Pre-allocate FREE slabs while staying above the headroom."""
        config = self.config
        slab_fraction = config.slab_size_bytes / self.machine.total_memory_bytes
        # Count free slabs once and track the delta locally: every slab
        # allocated below is FREE by construction, so re-scanning the
        # hosted-slab dict each iteration would be O(slabs) for nothing.
        free_count = len(self.machine.free_slabs())
        while (
            free_count < config.free_slab_target
            and free_fraction - slab_fraction > config.headroom_fraction
        ):
            try:
                self.machine.allocate_slab(config.slab_size_bytes)
            except MemoryError:
                break
            free_count += 1
            self.events.incr("slabs_preallocated")
            free_fraction = self.machine.free_bytes / self.machine.total_memory_bytes
        if self.reclaim_sink is not None and free_fraction > config.headroom_fraction:
            # Local memory is plentiful: hint the co-located RM to bring
            # remote pages home (the sink performs the actual reclaim).
            self.reclaim_sink()

    # ------------------------------------------------------------------
    # control-plane handlers
    # ------------------------------------------------------------------
    def _on_query_load(self, src_id: int, body: dict) -> dict:
        return {
            "utilization": self.machine.memory_utilization,
            "free_bytes": self.machine.free_bytes,
            "has_free_slab": bool(self.machine.free_slabs()),
            "rack": self.machine.rack,
        }

    def _on_map_slab(self, src_id: int, body: dict) -> dict:
        """Map a slab for a remote RM: reuse a FREE slab or allocate one,
        refusing when that would break the local headroom."""
        config = self.config
        slab = self._take_free_slab()
        if slab is None:
            after = self.machine.free_bytes - config.slab_size_bytes
            if after / self.machine.total_memory_bytes < config.headroom_fraction:
                raise MemoryError(
                    f"machine {self.machine.id}: mapping would break headroom"
                )
            slab = self.machine.allocate_slab(config.slab_size_bytes)
        slab.map_to(src_id, body["range_id"], body["position"])
        self.events.incr("slabs_mapped")
        return {"slab_id": slab.slab_id}

    def _on_unmap_slab(self, src_id: int, body: dict) -> dict:
        slab = self.machine.hosted_slabs.get(body["slab_id"])
        if slab is not None and slab.owner_id == src_id:
            self.machine.release_slab(slab.slab_id)
            self.events.incr("slabs_unmapped")
            return {"ok": True}
        return {"ok": False}

    def _take_free_slab(self) -> Optional[Slab]:
        free = self.machine.free_slabs()
        return free[0] if free else None

    # ------------------------------------------------------------------
    # background slab regeneration (§4.4)
    # ------------------------------------------------------------------
    def _on_regenerate_slab(self, src_id: int, body: dict) -> dict:
        """Accept a regeneration hand-off: allocate the replacement slab
        synchronously (so refusal propagates as an RPC error), then rebuild
        in a background process."""
        slab = self._take_free_slab()
        if slab is None:
            slab = self.machine.allocate_slab(self.config.slab_size_bytes)
        slab.map_to(body["owner"], body["range_id"], body["position"])
        slab.begin_regeneration()
        self.sim.process(
            self._regenerate_process(slab, body),
            name=f"regen@{self.machine.id}:{body['range_id']}/{body['position']}",
        )
        return {"slab_id": slab.slab_id, "started": True}

    def _regenerate_process(self, slab: Slab, body: dict):
        """Bulk-read k source slabs in parallel, re-encode the lost split
        position, install the pages, and call the owner back."""
        sources = body["sources"]
        k = body["k"]
        span = self.tracer.start_span(
            "monitor.regen",
            machine_id=self.machine.id,
            tags={
                "range": body["range_id"],
                "position": body["position"],
                "owner": body["owner"],
            },
        )
        phases = self.tracer.phases(span)
        reads = []
        for source in sources:
            machine = self.machine.fabric.machine(source["machine_id"])
            qp = self.machine.fabric.qp(self.machine.id, source["machine_id"])

            def snapshot(machine=machine, slab_id=source["slab_id"]):
                remote = machine.hosted_slabs.get(slab_id)
                if remote is None or remote.state not in (
                    SlabState.MAPPED,
                    SlabState.REGENERATING,
                ):
                    raise RemoteAccessError(f"source slab {slab_id} unavailable")
                return dict(remote.pages)

            remote_slab = machine.hosted_slabs.get(source["slab_id"])
            used = remote_slab.touched_pages if remote_slab else 0
            size = max(1, used) * self.config.split_size
            reads.append(
                (source["position"], qp.post_read(size, fetch=snapshot, span=span))
            )

        snapshots: Dict[int, dict] = {}
        for position, event in reads:
            try:
                snapshots[position] = yield event
            except (RDMAError, RemoteAccessError):
                pass
        phases.mark("read_sources", sources=len(reads), usable=len(snapshots))
        if len(snapshots) < k:
            self.events.incr("regen_aborted")
            if span is not None:
                span.set_tag("outcome", "aborted")
                span.finish()
            slab.unmap()
            return

        # Pages recoverable at this position: any page with >= k source
        # splits (sources may themselves have gaps from earlier rebuilds).
        universe = set()
        for snapshot in snapshots.values():
            universe.update(snapshot)
        rebuilt_bytes = len(universe) * self.config.split_size * k
        yield self.sim.timeout(rebuilt_bytes * _DECODE_US_PER_BYTE)
        phases.mark("decode", pages=len(universe), bytes=rebuilt_bytes)

        if body["payload_mode"] == "real":
            self._rebuild_real(
                slab, body["position"], snapshots, universe, k, body["r"]
            )
        else:
            self._rebuild_phantom(slab, snapshots, universe, k)

        slab.finish_regeneration()
        self.events.incr("slabs_regenerated")
        try:
            yield self.endpoint.call(
                body["owner"],
                "slab_regenerated",
                {
                    "range_id": body["range_id"],
                    "position": body["position"],
                    "slab_id": slab.slab_id,
                },
            )
            phases.mark("ack")
            if span is not None:
                span.set_tag("outcome", "rebuilt")
        except RpcError:
            # Owner vanished; drop the orphan slab.
            if span is not None:
                span.set_tag("outcome", "owner_gone")
            slab.unmap()
        if span is not None:
            span.finish()

    def _rebuild_real(
        self,
        slab: Slab,
        target_position: int,
        snapshots: Dict[int, dict],
        universe: set,
        k: int,
        r: int,
    ) -> None:
        """Vectorized re-encode: target_split = G[t] @ inv(G[rows]) @ S.

        Pages are grouped by the k source positions that actually hold
        them, one GF matmul per group; pages with fewer than k sources are
        skipped (not recoverable at this position right now).
        """
        if not universe:
            return
        code = ReedSolomonCode(k, r)
        rebuilt = rebuild_position(
            code, snapshots, target_position, self.config.split_size
        )
        slab.pages.update(rebuilt)

    def _rebuild_phantom(
        self, slab: Slab, snapshots: Dict[int, dict], universe: set, k: int
    ) -> None:
        """A phantom page is recoverable at a version only when >= k clean
        splits of that version exist (what a real RS decode would need).
        Prefer the newest such version."""
        for page_id in universe:
            counts: Dict[int, int] = {}
            for snapshot in snapshots.values():
                payload = snapshot.get(page_id)
                if isinstance(payload, PhantomSplit) and not payload.corrupt:
                    counts[payload.version] = counts.get(payload.version, 0) + 1
            viable = [v for v, count in counts.items() if count >= k]
            if viable:
                slab.pages[page_id] = PhantomSplit(version=max(viable))
