"""Data-path latency composition (§4.2) — the Figure 11 ablation knobs.

These helpers translate the four optimization toggles of
:class:`~repro.core.config.DatapathConfig` into simulated software
overheads. Network time itself comes from the fabric; coding time from the
paper's measured ISA-L constants; everything here is the *host-side* cost
the optimizations remove:

* run-to-completion removes interrupt/context-switch wakeups;
* in-place coding removes staging-buffer allocation and per-split copies;
* late binding and asynchronous encoding change *what* is waited on rather
  than adding cost, so they live in the Resilience Manager's control flow.
"""

from __future__ import annotations

import math

from .config import DatapathConfig, HydraConfig

__all__ = [
    "issue_overhead_us",
    "completion_overhead_us",
    "encode_latency_us",
    "decode_latency_us",
]

# Completions are polled/woken in batches of roughly this many CQ entries
# when interrupts are taken; run-to-completion removes the wakeups entirely.
_COMPLETIONS_PER_WAKEUP = 4


def issue_overhead_us(dp: DatapathConfig, split_count: int) -> float:
    """Software cost of issuing one remote I/O over ``split_count`` splits.

    Always pays the request-setup cost plus one verb-posting cost per
    split issued on the critical path; without in-place coding it also
    pays a staging-buffer allocation plus one copy per split (§4.1 item 4).
    """
    if split_count < 1:
        raise ValueError(f"split_count must be >= 1, got {split_count}")
    overhead = dp.request_setup_us + dp.post_per_split_us * split_count
    if not dp.in_place_coding:
        overhead += dp.buffer_alloc_us + dp.copy_per_split_us * split_count
    return overhead


def completion_overhead_us(dp: DatapathConfig, completions_waited: int) -> float:
    """Host cost of waiting for ``completions_waited`` RDMA completions.

    With run-to-completion the request thread spins on the CQ: zero
    software cost (§4.2.3). Without it, each wakeup batch costs a context
    switch (§4.1 item 3).
    """
    if completions_waited <= 0:
        return 0.0
    if dp.run_to_completion:
        return 0.0
    wakeups = math.ceil(completions_waited / _COMPLETIONS_PER_WAKEUP)
    return dp.context_switch_us * wakeups


def encode_latency_us(config: HydraConfig) -> float:
    """RS encode time for one page, scaled from the (8+2)/4 KB baseline.

    Encoding cost is proportional to parity bytes produced:
    r x split_size. The paper's 0.7 µs is for r=2, 512 B splits.
    """
    dp = config.datapath
    baseline_parity_bytes = 2 * 512.0
    parity_bytes = config.r * config.split_size
    if config.r == 0:
        return 0.0
    return dp.encode_latency_us * (parity_bytes / baseline_parity_bytes)


def decode_latency_us(config: HydraConfig) -> float:
    """RS decode time for one page, scaled from the (8+2)/4 KB baseline.

    Decoding reconstructs k x split_size bytes; the paper's 1.5 µs is for
    k=8, 512 B splits (i.e. a 4 KB page).
    """
    dp = config.datapath
    baseline_bytes = 8 * 512.0
    page_bytes = config.k * config.split_size
    return dp.decode_latency_us * (page_bytes / baseline_bytes)
