"""Hydra configuration: coding parameters, data-path toggles, thresholds.

Defaults follow the paper's experimental setup (§7): k=8, r=2, Δ=1
(1.25x memory overhead), SlabSize = 1 GB, 25 % free-memory headroom,
ControlPeriod = 1 s, E' = 2 extra eviction choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional
__all__ = ["DatapathConfig", "HydraConfig"]


@dataclass
class DatapathConfig:
    """The four §4.2 latency optimizations plus their cost constants.

    Each toggle corresponds to one bar group in Figure 11; turning one off
    re-introduces the overhead the optimization removes:

    * ``run_to_completion`` off -> every completion wait costs a context
      switch (``context_switch_us``), serialized across the splits awaited.
    * ``in_place_coding`` off -> each split is staged through an extra
      buffer, costing ``copy_per_split_us`` per split plus one buffer
      allocation (``buffer_alloc_us``) per I/O.
    * ``late_binding`` off -> reads fetch exactly k splits and must wait
      for all of them (stragglers land on the critical path).
    * ``async_encoding`` off -> writes encode before sending anything and
      wait for all (k + r) acks.

    Coding costs come from §4.1: 0.7 µs encode / 1.5 µs decode for the
    (8+2) code on a 4 KB page; they scale linearly with the parity count
    (encode) and the page size.
    """

    run_to_completion: bool = True
    in_place_coding: bool = True
    late_binding: bool = True
    async_encoding: bool = True

    encode_latency_us: float = 0.7
    decode_latency_us: float = 1.5
    context_switch_us: float = 1.4
    copy_per_split_us: float = 0.30
    buffer_alloc_us: float = 0.8
    request_setup_us: float = 0.25
    # Posting one RDMA verb (WQE build + doorbell) — the §4.1 overhead
    # that makes very large k deteriorate (Fig 12a's U-shape).
    post_per_split_us: float = 0.10

    def all_off(self) -> "DatapathConfig":
        """The unoptimized RS-over-RDMA datapath (Fig 1's 20 µs point)."""
        return replace(
            self,
            run_to_completion=False,
            in_place_coding=False,
            late_binding=False,
            async_encoding=False,
        )


@dataclass
class HydraConfig:
    """Top-level Hydra parameters.

    Attributes
    ----------
    k, r:
        Data and parity split counts. Every page becomes k + r splits
        stored on k + r distinct failure domains.
    delta:
        Extra parallel reads for straggler mitigation (§4.2.2). Δ=1 is
        the paper default.
    page_size:
        Bytes per page (4 KB).
    slab_size_bytes:
        SlabSize (§3.2). 1 GB in the paper; tests shrink it.
    control_period_us:
        Resource Monitor period (1 s in the paper).
    headroom_fraction:
        Free-memory headroom the monitor defends (25 %).
    eviction_batch / eviction_extra:
        E and E' of decentralized batch eviction — evict the E
        least-frequently-accessed of (E + E') sampled slabs.
    placement_choice_factor:
        Batch placement contacts factor x (k + r) machines and keeps the
        least-loaded k + r (§4.4; factor 2 in the paper).
    error_correction_limit:
        Per-machine error count after which reads involving that machine
        start with (k + 2Δ + 1) splits (§4.3 ErrorCorrectionLimit).
    slab_regeneration_limit:
        Per-machine error count after which the slab is regenerated
        (§4.3 SlabRegenerationLimit).
    payload_mode:
        "real" pushes actual bytes through the RS codec; "phantom" tracks
        versions/corruption flags only (large cluster runs).
    verify_reads:
        Opportunistically verify split consistency with the Δ extra reads
        (corruption detection path). Leave on; off approximates a system
        that trusts remote memory.
    free_slab_target:
        FREE slabs each Resource Monitor tries to keep pre-allocated for
        instant mapping (Fig 7b 'proactive allocation').
    metadata_replicas:
        Peers replicating this RM's metadata log (``repro.core.rm_replica``).
        0 (the default) disables the survivable control plane entirely —
        no replica stores, no heartbeats, byte-identical behavior to the
        unreplicated RM.
    metadata_lease_timeout_us:
        Leader lease duration; a surviving metadata peer waits this long
        after losing the leader before taking over. ``None`` derives
        3 x ``control_period_us``.
    """

    k: int = 8
    r: int = 2
    delta: int = 1
    page_size: int = 4096
    slab_size_bytes: int = 1 << 30
    control_period_us: float = 1_000_000.0
    headroom_fraction: float = 0.25
    eviction_batch: int = 1
    eviction_extra: int = 2
    placement_choice_factor: int = 2
    error_correction_limit: int = 3
    slab_regeneration_limit: int = 8
    payload_mode: str = "real"
    verify_reads: bool = True
    free_slab_target: int = 1
    metadata_replicas: int = 0
    metadata_lease_timeout_us: Optional[float] = None
    datapath: DatapathConfig = field(default_factory=DatapathConfig)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.r < 0:
            raise ValueError(f"r must be >= 0, got {self.r}")
        if self.delta < 0:
            raise ValueError(f"delta must be >= 0, got {self.delta}")
        if self.delta > self.r:
            raise ValueError(
                f"delta (extra reads) cannot exceed parity count r: "
                f"delta={self.delta}, r={self.r}"
            )
        if self.payload_mode not in ("real", "phantom"):
            raise ValueError(f"unknown payload_mode {self.payload_mode!r}")
        if not 0 <= self.headroom_fraction < 1:
            raise ValueError(f"headroom must be in [0, 1), got {self.headroom_fraction}")
        if self.metadata_replicas < 0:
            raise ValueError(
                f"metadata_replicas must be >= 0, got {self.metadata_replicas}"
            )
        if (
            self.metadata_lease_timeout_us is not None
            and self.metadata_lease_timeout_us <= 0
        ):
            raise ValueError(
                f"metadata_lease_timeout_us must be positive, "
                f"got {self.metadata_lease_timeout_us}"
            )
        # split_size sits on the per-split RDMA hot path (two lookups per
        # posted verb); precompute it once — k/page_size never change after
        # construction (the codec and placement are built from them).
        self._split_size = -(-self.page_size // self.k)

    @property
    def n(self) -> int:
        """Total splits per page."""
        return self.k + self.r

    @property
    def split_size(self) -> int:
        """Bytes per split (ceil of page_size / k)."""
        return self._split_size

    @property
    def pages_per_range(self) -> int:
        """Pages one address range holds: slab capacity in splits."""
        return max(1, self.slab_size_bytes // self.split_size)

    @property
    def memory_overhead(self) -> float:
        """1 + r/k — the Table 1 failure-tolerance overhead."""
        return 1.0 + self.r / self.k

    def read_fanout(self) -> int:
        """Splits requested on a normal read: k + Δ (late binding)."""
        if self.datapath.late_binding:
            return min(self.k + self.delta, self.n)
        return self.k

    def correction_fanout(self) -> int:
        """Splits needed to locate and correct Δ errors: k + 2Δ + 1."""
        return min(self.k + 2 * self.delta + 1, self.n)
