"""Hydra core: Resilience Manager, Resource Monitor, placement, config."""

from .address_space import AddressRange, RemoteAddressSpace, SlabHandle
from .config import DatapathConfig, HydraConfig
from .datapath import (
    completion_overhead_us,
    decode_latency_us,
    encode_latency_us,
    issue_overhead_us,
)
from .deployment import HydraDeployment, HydraNode
from .placement import BatchPlacer, PlacementError
from .resilience_manager import (
    HydraError,
    RemoteMemoryUnavailable,
    ResilienceManager,
)
from .resource_monitor import ResourceMonitor
from .rm_replica import (
    ControlPlane,
    MetadataQuorumError,
    MetadataReplica,
    ReplicatedMetadataStore,
)
from .rpc import RpcEndpoint, RpcError

__all__ = [
    "AddressRange",
    "RemoteAddressSpace",
    "SlabHandle",
    "DatapathConfig",
    "HydraConfig",
    "completion_overhead_us",
    "decode_latency_us",
    "encode_latency_us",
    "issue_overhead_us",
    "HydraDeployment",
    "HydraNode",
    "BatchPlacer",
    "PlacementError",
    "HydraError",
    "RemoteMemoryUnavailable",
    "ResilienceManager",
    "ResourceMonitor",
    "ControlPlane",
    "MetadataQuorumError",
    "MetadataReplica",
    "ReplicatedMetadataStore",
    "RpcEndpoint",
    "RpcError",
]
