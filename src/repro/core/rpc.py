"""Control-plane RPC over two-sided RDMA SEND/RECV.

The Resource Monitor is a user-space program exchanging control messages
(§6): load queries, slab map/unmap, eviction notices, regeneration
hand-offs. This module provides a tiny request/reply layer on top of the
fabric's SEND verb: a request carries a correlation id; the target's
registered handler computes a reply, which is SENT back and completes the
caller's event.

Handlers run at message-delivery time and must be non-blocking; long
operations (e.g. slab regeneration) spawn their own simulation process and
reply immediately with an acknowledgement.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..net import RdmaFabric, RemoteAccessError
from ..sim import Event

__all__ = ["RpcError", "RpcEndpoint"]

_MESSAGE_BYTES = 256  # control messages are small; one MTU


class RpcError(Exception):
    """The remote handler raised, or the target is unreachable."""


class RpcEndpoint:
    """Request/reply messaging for one machine.

    One endpoint per machine; both the Resilience Manager and the Resource
    Monitor of that machine share it. Handlers are registered per message
    type::

        endpoint.register("query_load", lambda src, body: {"free": ...})
        reply = yield endpoint.call(peer_id, "query_load", {})
    """

    _ids = itertools.count(1)

    def __init__(self, fabric: RdmaFabric, machine_id: int):
        self.fabric = fabric
        self.sim = fabric.sim
        self.machine_id = machine_id
        self._handlers: Dict[str, Callable[[int, dict], Any]] = {}
        self._pending: Dict[int, Event] = {}
        fabric.machine(machine_id).add_message_handler(self._on_message)

    def register(self, message_type: str, handler: Callable[[int, dict], Any]) -> None:
        """Register the handler for ``message_type`` (one per type)."""
        if message_type in self._handlers:
            raise ValueError(f"handler for {message_type!r} already registered")
        self._handlers[message_type] = handler

    def call(self, target_id: int, message_type: str, body: Optional[dict] = None) -> Event:
        """Issue a request; the returned event yields the reply body.

        Fails with :class:`RpcError` when the target is unreachable or its
        handler raises.
        """
        request_id = next(self._ids)
        event = self.sim.event(name=f"rpc:{message_type}->{target_id}")
        self._pending[request_id] = event
        message = {
            "kind": "request",
            "type": message_type,
            "id": request_id,
            "body": body or {},
        }
        qp = self.fabric.qp(self.machine_id, target_id)
        send = qp.post_send(message, size_bytes=_MESSAGE_BYTES)

        def on_send(send_event: Event) -> None:
            if not send_event.ok and not event.triggered:
                self._pending.pop(request_id, None)
                event.fail(RpcError(f"rpc {message_type} to {target_id} failed: "
                                    f"{send_event.exception}"))

        send.callbacks.append(on_send)
        return event

    def notify(self, target_id: int, message_type: str, body: Optional[dict] = None) -> Event:
        """One-way, best-effort message: the handler runs on delivery but
        no reply is routed back. The returned event is the SEND completion
        — callers may ignore it (fire-and-forget to a possibly-dead peer)."""
        message = {
            "kind": "request",
            "type": message_type,
            "id": next(self._ids),
            "body": body or {},
            "oneway": True,
        }
        qp = self.fabric.qp(self.machine_id, target_id)
        return qp.post_send(message, size_bytes=_MESSAGE_BYTES)

    # -- delivery ------------------------------------------------------------
    def _on_message(self, src_id: int, message: Any) -> None:
        if not isinstance(message, dict) or "kind" not in message:
            return  # not an RPC frame; other subsystems may use raw sends
        if message["kind"] == "request":
            self._serve(src_id, message)
        elif message["kind"] == "reply":
            self._complete(message)

    def _serve(self, src_id: int, message: dict) -> None:
        handler = self._handlers.get(message["type"])
        reply: Dict[str, Any] = {"kind": "reply", "id": message["id"]}
        if handler is None:
            reply["error"] = f"no handler for {message['type']!r} on {self.machine_id}"
        else:
            try:
                reply["body"] = handler(src_id, message["body"])
            except Exception as exc:  # noqa: BLE001 - errors cross the wire
                reply["error"] = f"{type(exc).__name__}: {exc}"
        if message.get("oneway"):
            return  # notify(): nobody is waiting for the reply
        try:
            self.fabric.qp(self.machine_id, src_id).post_send(
                reply, size_bytes=_MESSAGE_BYTES
            )
        except RemoteAccessError:
            pass  # requester died; nothing to do

    def _complete(self, message: dict) -> None:
        event = self._pending.pop(message["id"], None)
        if event is None or event.triggered:
            return
        if "error" in message:
            event.fail(RpcError(message["error"]))
        else:
            event.succeed(message.get("body"))
