"""Wiring: one Hydra node per machine, a deployment per cluster.

Matches Figure 3: every machine can host both a Resilience Manager
(consuming remote memory) and a Resource Monitor (donating local memory);
they share one RPC endpoint and work without central coordination.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..cluster import Cluster, Machine
from ..sim import RandomSource
from .config import HydraConfig
from .placement import BatchPlacer
from .resilience_manager import ResilienceManager
from .resource_monitor import ResourceMonitor
from .rm_replica import ControlPlane
from .rpc import RpcEndpoint

__all__ = ["HydraNode", "HydraDeployment"]


class HydraNode:
    """The Hydra components of a single machine."""

    def __init__(
        self,
        machine: Machine,
        config: HydraConfig,
        peer_provider: Callable[[], List[int]],
        rng: RandomSource,
        reclaim_sink: Optional[Callable[[], object]] = None,
        start_monitor: bool = True,
    ):
        self.machine = machine
        self.config = config
        self.endpoint = RpcEndpoint(machine.fabric, machine.id)
        placer = BatchPlacer(
            self.endpoint, peer_provider, config, rng.child("placer")
        )
        self.manager = ResilienceManager(
            machine.sim,
            machine.fabric,
            machine.id,
            config,
            self.endpoint,
            placer,
            rng.child("rm"),
        )
        self.monitor = ResourceMonitor(
            machine, config, self.endpoint, rng.child("monitor"), reclaim_sink
        )
        if start_monitor:
            self.monitor.start()


class HydraDeployment:
    """Hydra on every machine of a cluster.

    >>> cluster = Cluster(machines=8, seed=1)
    >>> hydra = HydraDeployment(cluster, HydraConfig(k=4, r=2, delta=1))
    >>> rm = hydra.manager(0)  # machine 0's Resilience Manager
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[HydraConfig] = None,
        seed: int = 0,
        start_monitors: bool = True,
    ):
        self.cluster = cluster
        self.config = config or HydraConfig()
        rng = RandomSource(seed, "hydra")
        self.nodes: Dict[int, HydraNode] = {}
        for machine in cluster.machines:
            provider = self._peer_provider(machine.id)
            self.nodes[machine.id] = HydraNode(
                machine,
                self.config,
                provider,
                rng.child(f"node{machine.id}"),
                start_monitor=start_monitors,
            )
        # Survivable control plane (opt-in): replicate each RM's metadata
        # log across a peer set and arm deterministic failover.
        self.control_plane = None
        if self.config.metadata_replicas > 0 and len(cluster) > 1:
            self.control_plane = ControlPlane(self, cluster)

    def _peer_provider(self, machine_id: int) -> Callable[[], List[int]]:
        def peers() -> List[int]:
            return [m.id for m in self.cluster.machines if m.alive and m.id != machine_id]

        return peers

    def manager(self, machine_id: int) -> ResilienceManager:
        return self.nodes[machine_id].manager

    def monitor(self, machine_id: int) -> ResourceMonitor:
        return self.nodes[machine_id].monitor

    def node(self, machine_id: int) -> HydraNode:
        return self.nodes[machine_id]
